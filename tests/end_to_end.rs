//! Workspace-level integration tests: the paper's headline claims checked
//! end to end through the umbrella crate, across all subsystems at once.

use ceio::apps::{KvConfig, KvStore, LineFs, LineFsConfig};
use ceio::baselines::{HostCcConfig, HostCcPolicy, ShRingConfig, ShRingPolicy, UnmanagedPolicy};
use ceio::core::{CeioConfig, CeioPolicy};
use ceio::host::{run_to_report, AppFactory, HostConfig, IoPolicy, Machine, RunReport};
use ceio::net::{FlowClass, FlowSpec, Scenario};
use ceio::sim::{Bandwidth, Duration, Time};

fn host_cfg() -> HostConfig {
    HostConfig {
        ring_entries: 16384,
        ..HostConfig::default()
    }
}

fn kv_scenario(flows: u32, pkt: u64) -> Scenario {
    let mut s = Scenario::new();
    let per = Bandwidth::gbps(200).scale(1, flows as u64);
    for i in 0..flows {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, pkt, 1, per),
        );
    }
    s.build()
}

fn kv_factory() -> AppFactory {
    Box::new(|_| Box::new(KvStore::new(KvConfig::default())))
}

fn ceio_policy() -> CeioPolicy {
    CeioPolicy::new(CeioConfig {
        credit_total: host_cfg().credit_total(),
        ..CeioConfig::default()
    })
}

fn run<P: IoPolicy>(policy: P, scenario: Scenario) -> RunReport {
    let mut sim = Machine::build(host_cfg(), policy, scenario, kv_factory());
    run_to_report(&mut sim, Duration::millis(2), Duration::millis(5))
}

/// The abstract's headline: higher throughput AND lower P99.9 than every
/// competitor under the saturating RPC workload, with ~zero LLC misses.
#[test]
fn headline_ceio_dominates_under_saturation() {
    let base = run(UnmanagedPolicy, kv_scenario(8, 512));
    let hostcc = run(
        HostCcPolicy::new(HostCcConfig::default()),
        kv_scenario(8, 512),
    );
    let shring = run(
        ShRingPolicy::new(ShRingConfig::default()),
        kv_scenario(8, 512),
    );
    let ceio = run(ceio_policy(), kv_scenario(8, 512));

    // Throughput: CEIO beats baseline and HostCC clearly, matches ShRing.
    assert!(ceio.involved_mpps > base.involved_mpps * 1.15);
    assert!(ceio.involved_mpps > hostcc.involved_mpps * 0.99);
    assert!(ceio.involved_mpps > shring.involved_mpps * 0.95);

    // Tail latency: CEIO lowest of all four.
    for other in [&base, &hostcc, &shring] {
        assert!(
            ceio.involved_latency.p999() <= other.involved_latency.p999(),
            "CEIO p999 {} vs {} {}",
            ceio.involved_latency.p999(),
            other.policy,
            other.involved_latency.p999()
        );
    }

    // Cache: the 88% -> 1% miss transformation of §6.2.
    assert!(base.llc_miss_rate > 0.5);
    assert!(ceio.llc_miss_rate < 0.02);

    // Loss: only CEIO absorbs the overload without dropping.
    assert_eq!(ceio.dropped, 0);
    assert!(base.dropped + hostcc.dropped + shring.dropped > 0);
}

/// The Table 1 qualitative comparison, as executable assertions.
#[test]
fn table1_characterizations_hold() {
    // ShRing: fixed buffer -> CCA triggers (marks) even though its cache
    // behaviour is fine.
    let mut sim = Machine::build(
        host_cfg(),
        ShRingPolicy::new(ShRingConfig::default()),
        kv_scenario(8, 512),
        kv_factory(),
    );
    let r = run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));
    assert!(
        r.llc_miss_rate < 0.05,
        "ShRing cache fine: {}",
        r.llc_miss_rate
    );
    assert!(
        sim.model.policy.stats().marked > 0,
        "ShRing must trigger the CCA to protect its fixed budget"
    );

    // HostCC: reacts (events > 0) but only after misses happened.
    let mut sim = Machine::build(
        host_cfg(),
        HostCcPolicy::new(HostCcConfig::default()),
        kv_scenario(8, 512),
        kv_factory(),
    );
    let r = run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));
    assert!(sim.model.policy.stats().congestion_events > 0);
    assert!(
        r.llc_miss_rate > 0.01,
        "reactive control leaves residual misses"
    );
}

/// Mixed tenancy (§2.2 coexistence): CEIO protects the RPC flows from the
/// DFS tenant without touching the DFS goodput.
#[test]
fn coexistence_protection() {
    let scenario = || {
        let mut s = Scenario::new();
        for i in 0..4 {
            s.start_at(
                Time::ZERO,
                FlowSpec::new(i, FlowClass::CpuInvolved, 512, 1, Bandwidth::gbps(25)),
            );
        }
        for i in 4..8 {
            s.start_at(
                Time::ZERO,
                FlowSpec::new(i, FlowClass::CpuBypass, 2048, 512, Bandwidth::gbps(25)),
            );
        }
        s.build()
    };
    let factory = || -> AppFactory {
        Box::new(|spec| match spec.class {
            FlowClass::CpuInvolved => Box::new(KvStore::new(KvConfig::default())),
            FlowClass::CpuBypass => Box::new(LineFs::new(LineFsConfig::default())),
        })
    };
    let mut sim = Machine::build(host_cfg(), UnmanagedPolicy, scenario(), factory());
    let base = run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));
    let mut sim = Machine::build(host_cfg(), ceio_policy(), scenario(), factory());
    let ceio = run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));

    assert!(
        ceio.involved_mpps > base.involved_mpps * 1.1,
        "RPC protected: {} vs {}",
        ceio.involved_mpps,
        base.involved_mpps
    );
    assert!(
        ceio.bypass_gbps > base.bypass_gbps * 0.9,
        "DFS not sacrificed: {} vs {}",
        ceio.bypass_gbps,
        base.bypass_gbps
    );
    assert!(
        ceio.slow_path_pkts > 0,
        "DFS excess must ride the slow path"
    );
}

/// Whole-stack determinism: identical runs produce bit-identical reports
/// through every subsystem.
#[test]
fn whole_stack_determinism() {
    let fingerprint = || {
        let r = run(ceio_policy(), kv_scenario(8, 512));
        (
            r.involved_mpps.to_bits(),
            r.llc_miss_rate.to_bits(),
            r.slow_path_pkts,
            r.involved_latency.p999(),
            r.dropped,
        )
    };
    assert_eq!(fingerprint(), fingerprint());
}

/// LineFS consumes its stream in order end to end (the ordered-delivery
/// contract survives path transitions), and the ledger checksum is
/// reproducible.
#[test]
fn dfs_stream_integrity_under_ceio() {
    let run_once = || {
        let mut s = Scenario::new();
        s.start_at(
            Time::ZERO,
            FlowSpec::new(0, FlowClass::CpuBypass, 2048, 256, Bandwidth::gbps(50)),
        );
        let mut sim = Machine::build(
            HostConfig::default(),
            // Zero credits: every packet takes the slow path — the
            // hardest ordering case.
            CeioPolicy::new(CeioConfig {
                credit_total: 0,
                ..CeioConfig::default()
            }),
            s.build(),
            Box::new(|_| Box::new(LineFs::new(LineFsConfig::default()))),
        );
        run_to_report(&mut sim, Duration::millis(1), Duration::millis(4));
        let app = sim.model.st.apps.values().next().expect("one app");
        let _ = app.name();
        // Reach through to the flow's counters for ordering evidence.
        let f = sim.model.st.flows.values().next().expect("one flow");
        (f.counters.consumed_pkts, f.counters.msgs_completed)
    };
    let (pkts_a, msgs_a) = run_once();
    let (pkts_b, msgs_b) = run_once();
    assert_eq!((pkts_a, msgs_a), (pkts_b, msgs_b));
    assert!(pkts_a > 0);
    assert!(msgs_a > 0, "chunks must complete over the slow path");
}
