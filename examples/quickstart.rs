//! Quickstart: build a simulated 200 Gbps receive host, run the same
//! key-value workload under the unmanaged baseline and under CEIO, and
//! compare LLC behaviour and delivered throughput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ceio::apps::{KvConfig, KvStore};
use ceio::baselines::UnmanagedPolicy;
use ceio::core::{CeioConfig, CeioPolicy};
use ceio::host::{run_to_report, AppFactory, HostConfig, IoPolicy, Machine, RunReport};
use ceio::net::{FlowClass, FlowSpec, Scenario};
use ceio::sim::{Bandwidth, Duration, Time};

/// Eight saturating RPC flows splitting the 200 Gbps link — the paper's
/// §6.1 key-value setup.
fn kv_scenario() -> Scenario {
    let mut s = Scenario::new();
    for i in 0..8 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 512, 1, Bandwidth::gbps(25)),
        );
    }
    s.build()
}

/// eRPC-scale buffer pools: far larger than the 6 MB DDIO slice of the LLC,
/// which is what lets the unmanaged baseline thrash.
fn host_config() -> HostConfig {
    HostConfig {
        ring_entries: 16384,
        ..HostConfig::default()
    }
}

fn kv_factory() -> AppFactory {
    Box::new(|_| Box::new(KvStore::new(KvConfig::default())))
}

fn run<P: IoPolicy>(policy: P) -> RunReport {
    let mut sim = Machine::build(host_config(), policy, kv_scenario(), kv_factory());
    // 2 ms of warmup, 5 ms measured — a discrete-event simulation covers
    // millions of packets in a couple of wall-clock seconds.
    run_to_report(&mut sim, Duration::millis(2), Duration::millis(5))
}

fn show(r: &RunReport) {
    println!(
        "  {:<10} {:>7.2} Mpps  {:>6.1} Gbps  LLC miss {:>5.1}%  drops {:>6}  p99.9 {:>8.1} us",
        r.policy,
        r.involved_mpps,
        r.involved_gbps,
        r.llc_miss_rate * 100.0,
        r.dropped,
        r.involved_latency.p999() as f64 / 1000.0,
    );
}

fn main() {
    println!("CEIO quickstart — 8 saturating KV flows over a 200 Gbps link\n");
    let baseline = run(UnmanagedPolicy);
    let ceio = run(CeioPolicy::new(CeioConfig {
        credit_total: host_config().credit_total(),
        ..CeioConfig::default()
    }));
    show(&baseline);
    show(&ceio);
    println!(
        "\nCEIO: {:.2}x the throughput, {:.1}x lower P99.9, miss rate {:.0}% -> {:.0}%",
        ceio.involved_mpps / baseline.involved_mpps,
        baseline.involved_latency.p999() as f64 / ceio.involved_latency.p999().max(1) as f64,
        baseline.llc_miss_rate * 100.0,
        ceio.llc_miss_rate * 100.0,
    );
}
