//! Mixed tenancy: an RPC service and a distributed file system sharing one
//! server — the §2.2 "coexistence of CPU-involved/CPU-bypass flows" setup
//! (common on multi-tenant cloud hosts).
//!
//! Four eRPC-style KV flows run alongside four LineFS-style DFS write
//! streams. Without management, the DFS stream's DDIO traffic continuously
//! flushes the LLC, evicting the RPC flows' packets before their cores read
//! them. CEIO's lazy credit release automatically pushes the huge-message
//! DFS flows onto the elastic slow path, keeping the RPC flows cache-hot.
//!
//! ```sh
//! cargo run --release --example mixed_tenancy
//! ```

use ceio::apps::{KvConfig, KvStore, LineFs, LineFsConfig};
use ceio::baselines::UnmanagedPolicy;
use ceio::core::{CeioConfig, CeioPolicy};
use ceio::host::{run_to_report, AppFactory, HostConfig, IoPolicy, Machine, RunReport};
use ceio::net::{FlowClass, FlowSpec, Scenario};
use ceio::sim::{Bandwidth, Duration, Time};

fn scenario() -> Scenario {
    let mut s = Scenario::new();
    let share = Bandwidth::gbps(25);
    for i in 0..4 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 512, 1, share),
        );
    }
    // DFS write streams: 1 MB chunks of 2 KB packets.
    for i in 4..8 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuBypass, 2048, 512, share),
        );
    }
    s.build()
}

fn host_config() -> HostConfig {
    HostConfig {
        ring_entries: 16384,
        ..HostConfig::default()
    }
}

/// KV store for RPC flows, LineFS for DFS flows — picked per flow class.
fn factory() -> AppFactory {
    Box::new(|spec| match spec.class {
        FlowClass::CpuInvolved => Box::new(KvStore::new(KvConfig::default())),
        FlowClass::CpuBypass => Box::new(LineFs::new(LineFsConfig::default())),
    })
}

fn run<P: IoPolicy>(policy: P) -> RunReport {
    let mut sim = Machine::build(host_config(), policy, scenario(), factory());
    run_to_report(&mut sim, Duration::millis(2), Duration::millis(5))
}

fn main() {
    println!("Mixed tenancy: 4 KV RPC flows + 4 DFS write streams on one host\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "policy", "RPC Mpps", "DFS Gbps", "LLC miss%", "slow pkts"
    );
    for report in [
        run(UnmanagedPolicy),
        run(CeioPolicy::new(CeioConfig {
            credit_total: host_config().credit_total(),
            ..CeioConfig::default()
        })),
    ] {
        println!(
            "{:<10} {:>12.2} {:>12.1} {:>10.1} {:>10}",
            report.policy,
            report.involved_mpps,
            report.bypass_gbps,
            report.llc_miss_rate * 100.0,
            report.slow_path_pkts,
        );
    }
    println!(
        "\nCEIO steers the huge-message DFS streams through on-NIC memory\n\
         (slow pkts > 0) so the latency-sensitive RPC flows keep their LLC\n\
         residency — no drops, no manual priority tagging."
    );
}
