//! Software-ring walkthrough: the §4.2 / Figure 7 example, step by step,
//! on the standalone [`SwRing`] driver structure.
//!
//! Two messages arrive while only four credits remain: packets #1–#4 take
//! the fast path, #17–#20 (the figure's buffer ids) land in on-NIC memory.
//! The driver's non-blocking `async_recv()` returns what is already in
//! host memory and overlaps the DMA fetches of the rest; ordering is
//! preserved across the path transition without any per-packet sorting.
//!
//! ```sh
//! cargo run --release --example swring_walkthrough
//! ```

use ceio::core::SwRing;

fn main() {
    // Fast HW ring holds 4 descriptors (= the 4 remaining credits);
    // the driver fetches up to 32 slow-path packets per call.
    let mut ring: SwRing<u32> = SwRing::new(4, 32);

    println!("-- message 1 arrives: 4 credits left, 6 packets --");
    for buf in [1u32, 2, 3, 4] {
        ring.push_fast(buf).expect("fast ring has room");
        println!("  fast path  <- buffer #{buf}");
    }
    for buf in [17u32, 18] {
        let _ = ring.push_slow(buf);
        println!("  slow path  <- buffer #{buf} (parked in on-NIC memory)");
    }

    println!("\n-- app calls async_recv() --");
    let out = ring.async_recv(32);
    println!("  delivered now: {:?}", out.delivered);
    println!(
        "  DMA fetches issued for {} slow packets (non-blocking)",
        out.fetch_issued
    );
    assert_eq!(out.delivered, vec![1, 2, 3, 4]);

    println!("\n-- message 2 arrives while the fetch is in flight --");
    for buf in [19u32, 20] {
        let _ = ring.push_slow(buf);
        println!("  slow path  <- buffer #{buf}");
    }

    println!("\n-- another async_recv(): fetch not done, order is sacred --");
    let out = ring.async_recv(32);
    assert!(out.delivered.is_empty());
    println!(
        "  delivered now: {:?} (nothing can overtake #17)",
        out.delivered
    );

    println!("\n-- DMA completes; the drain continues --");
    ring.fetch_complete(2);
    let out = ring.async_recv(32);
    println!("  delivered now: {:?}", out.delivered);
    assert_eq!(out.delivered, vec![17, 18]);
    println!("  next fetch issued for {} packets", out.fetch_issued);

    println!("\n-- drain finished; fast path re-enabled for buffers #5-#8 --");
    ring.fetch_complete(2);
    for buf in [5u32, 6, 7, 8] {
        ring.push_fast(buf).expect("fast ring drained");
    }
    let out = ring.async_recv(32);
    println!("  delivered now: {:?}", out.delivered);
    assert_eq!(out.delivered, vec![19, 20, 5, 6, 7, 8]);

    println!(
        "\nEvery packet was delivered in arrival order — {} total, {} via\n\
         the slow path — with no reordering metadata (§4.2).",
        ring.delivered(),
        ring.slow_total()
    );
}
