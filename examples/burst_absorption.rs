//! Burst absorption: the §2.3 network-burst scenario, watched as a time
//! series. Eight RPC flows run steadily; every 2 ms, two more burst flows
//! arrive. The elastic buffer absorbs each burst without loss, while the
//! unmanaged baseline and the fixed-capacity scheme shed packets and
//! trigger the congestion-control algorithm.
//!
//! ```sh
//! cargo run --release --example burst_absorption
//! ```

use ceio::apps::{KvConfig, KvStore};
use ceio::baselines::{ShRingConfig, ShRingPolicy, UnmanagedPolicy};
use ceio::core::{CeioConfig, CeioPolicy};
use ceio::host::{run_to_report, AppFactory, HostConfig, IoPolicy, Machine, RunReport};
use ceio::net::Scenario;
use ceio::sim::{Bandwidth, Duration};

fn scenario() -> Scenario {
    Scenario::network_burst(8, 2, 3, Duration::millis(2), 512, Bandwidth::gbps(200))
}

fn host_config() -> HostConfig {
    HostConfig {
        ring_entries: 16384,
        ..HostConfig::default()
    }
}

fn factory() -> AppFactory {
    Box::new(|_| Box::new(KvStore::new(KvConfig::default())))
}

fn run<P: IoPolicy>(policy: P) -> RunReport {
    let mut sim = Machine::build(host_config(), policy, scenario(), factory());
    run_to_report(&mut sim, Duration::millis(1), Duration::millis(8))
}

fn main() {
    println!("Network burst: 8 flows, +2 burst flows every 2 ms\n");
    let reports = [
        run(UnmanagedPolicy),
        run(ShRingPolicy::new(ShRingConfig::default())),
        run(CeioPolicy::new(CeioConfig {
            credit_total: host_config().credit_total(),
            ..CeioConfig::default()
        })),
    ];
    for r in &reports {
        println!(
            "{:<10} throughput {:>6.2} Mpps   drops {:>6}   slow-path {:>6}   p99.9 {:>8.1} us",
            r.policy,
            r.involved_mpps,
            r.dropped,
            r.slow_path_pkts,
            r.involved_latency.p999() as f64 / 1000.0,
        );
        // Per-millisecond throughput trace: watch each burst hit.
        let pts: Vec<String> = r
            .involved_mpps_series
            .points
            .iter()
            .map(|(t, v)| format!("{:.0}ms:{:.1}", t.as_millis_f64(), v))
            .collect();
        println!("           [{}]\n", pts.join(" "));
    }
    println!(
        "CEIO is the only policy with zero drops: each burst's excess is\n\
         parked in on-NIC memory and drained as capacity frees up."
    );
}
