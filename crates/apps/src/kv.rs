//! The eRPC-style key-value server (§6.1).
//!
//! "The server handles 1:1 get/put requests with a 1:4 key-value ratio
//! (e.g. 16 B key, 64 B value, resulting in a 144 B packet). We populate
//! 1,000 key-value entries and generate requests randomly from 8 client
//! threads."
//!
//! The store is a real hash map over real bytes: requests are synthesized
//! deterministically from packet identity (the packet model carries no
//! payload), hashed, and served. eRPC's zero-copy optimization means RX
//! buffers are handed to the handler directly (`post_recv`, §5), so the
//! profile reports zero copied bytes — the property §6.4 credits for
//! eRPC's near-line-rate results.

use bytes::Bytes;
use ceio_cpu::{AppWork, Application};
use ceio_net::Packet;
use ceio_sim::Duration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// KV server parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvConfig {
    /// Pre-populated entries.
    pub entries: u64,
    /// Key size in bytes.
    pub key_bytes: usize,
    /// Value size in bytes (1:4 key:value ratio by default).
    pub value_bytes: usize,
    /// Per-request handler compute beyond the hash-map operation itself
    /// (request parse, response build, eRPC session/mempool bookkeeping).
    /// The 300 ns default puts one core's cache-hot capacity at ~3M req/s
    /// — the regime where LLC hit/miss state directly modulates
    /// throughput, as on the paper's testbed.
    pub handler_overhead: Duration,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            entries: 1_000,
            key_bytes: 16,
            value_bytes: 64,
            handler_overhead: Duration::nanos(300),
        }
    }
}

/// Operation statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct KvStats {
    /// GET requests served.
    pub gets: u64,
    /// GET requests that found the key.
    pub hits: u64,
    /// PUT requests served.
    pub puts: u64,
}

/// The key-value server application.
pub struct KvStore {
    cfg: KvConfig,
    table: HashMap<u64, Bytes>,
    stats: KvStats,
}

#[inline]
fn mix(x: u64) -> u64 {
    // SplitMix64 finalizer: cheap, deterministic request synthesis.
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl KvStore {
    /// A server pre-populated with `cfg.entries` entries.
    pub fn new(cfg: KvConfig) -> KvStore {
        let mut table = HashMap::with_capacity(cfg.entries as usize);
        let value = Bytes::from(vec![0xA5u8; cfg.value_bytes]);
        for k in 0..cfg.entries {
            table.insert(k, value.clone());
        }
        KvStore {
            cfg,
            table,
            stats: KvStats::default(),
        }
    }

    /// The request packet size implied by the configuration (key + value +
    /// 64 B of RPC header, e.g. 144 B for 16/64).
    pub fn request_bytes(cfg: &KvConfig) -> u64 {
        (cfg.key_bytes + cfg.value_bytes + 64) as u64
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// Current table size.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Application for KvStore {
    fn name(&self) -> &str {
        "erpc-kv"
    }

    fn process(&mut self, pkt: &Packet) -> AppWork {
        // Deterministic request synthesis: 1:1 get/put over a keyspace
        // slightly larger than the populated set (some gets miss).
        let h = mix(pkt.id.0);
        let key = h % (self.cfg.entries + self.cfg.entries / 8);
        let is_get = h & (1 << 40) == 0;
        let response_bytes = if is_get {
            self.stats.gets += 1;
            match self.table.get(&key) {
                Some(v) => {
                    self.stats.hits += 1;
                    v.len() as u64 + 64
                }
                None => 64, // not-found header
            }
        } else {
            self.stats.puts += 1;
            let value = Bytes::from(vec![(h & 0xFF) as u8; self.cfg.value_bytes]);
            self.table.insert(key, value);
            64 // ack
        };
        AppWork {
            cpu: self.cfg.handler_overhead,
            copy_bytes: 0, // zero-copy RX: buffers owned via post_recv (§5)
            response_bytes,
        }
    }

    fn zero_copy(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceio_net::{FlowId, PacketId};
    use ceio_sim::Time;

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            bytes: 144,
            msg_id: id,
            msg_seq: 0,
            msg_last: true,
            sent_at: Time::ZERO,
            arrived_nic: Time::ZERO,
            ecn: false,
        }
    }

    #[test]
    fn populated_at_construction() {
        let kv = KvStore::new(KvConfig::default());
        assert_eq!(kv.len(), 1_000);
    }

    #[test]
    fn request_size_matches_paper_example() {
        // 16 B key + 64 B value + header = 144 B.
        assert_eq!(KvStore::request_bytes(&KvConfig::default()), 144);
    }

    #[test]
    fn serves_roughly_balanced_get_put() {
        let mut kv = KvStore::new(KvConfig::default());
        for i in 0..10_000 {
            kv.process(&pkt(i));
        }
        let s = kv.stats();
        assert_eq!(s.gets + s.puts, 10_000);
        let ratio = s.gets as f64 / 10_000.0;
        assert!((0.45..0.55).contains(&ratio), "get ratio {ratio}");
        // Most gets hit the populated/put keyspace.
        assert!(s.hits as f64 / s.gets as f64 > 0.8);
    }

    #[test]
    fn zero_copy_profile() {
        let mut kv = KvStore::new(KvConfig::default());
        let w = kv.process(&pkt(1));
        assert_eq!(w.copy_bytes, 0);
        assert!(w.response_bytes >= 64);
        assert!(kv.zero_copy());
    }

    #[test]
    fn puts_grow_the_table_deterministically() {
        let run = || {
            let mut kv = KvStore::new(KvConfig::default());
            for i in 0..5_000 {
                kv.process(&pkt(i));
            }
            (kv.len(), kv.stats().hits)
        };
        assert_eq!(run(), run());
        assert!(run().0 >= 1_000);
    }
}
