//! The LineFS-style distributed-file-system server (§6.1).
//!
//! "The client writes a 16 GB file to the server in different chunk sizes,
//! while the server performs replication and logging."
//!
//! A chunk arrives as one multi-packet message on a CPU-bypass (RDMA-style)
//! flow. Per packet the server copies the payload from the I/O buffer into
//! its page store (LineFS is *not* zero-copy — §6.4 measures ~10% residual
//! misses from exactly these copies); per completed chunk it appends a
//! journal record and forwards a replication copy. The chunk ledger is
//! real state: offsets and checksums are tracked so tests can verify the
//! file is assembled completely and in order.

use ceio_cpu::{AppWork, Application};
use ceio_net::Packet;
use ceio_sim::Duration;
use serde::{Deserialize, Serialize};

/// DFS server parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LineFsConfig {
    /// Per-packet protocol handling compute (header parse, page lookup).
    pub per_packet: Duration,
    /// Per-chunk commit compute (journal append, replica post).
    pub per_chunk: Duration,
    /// Replication factor: each committed chunk is copied this many extra
    /// times (replication + logging both copy).
    pub replica_copies: u64,
}

impl Default for LineFsConfig {
    fn default() -> Self {
        LineFsConfig {
            per_packet: Duration::nanos(150),
            per_chunk: Duration::nanos(600),
            replica_copies: 2,
        }
    }
}

/// Server statistics / ledger.
#[derive(Debug, Default, Clone, Serialize)]
pub struct LineFsStats {
    /// Payload bytes written into the page store.
    pub bytes_written: u64,
    /// Chunks committed (journal records).
    pub chunks_committed: u64,
    /// Out-of-order packets observed within a chunk (must stay 0 under the
    /// ordered `recv()` contract).
    pub out_of_order: u64,
    /// Rolling checksum of the assembled stream (order-sensitive).
    pub checksum: u64,
}

/// The DFS server application.
pub struct LineFs {
    cfg: LineFsConfig,
    stats: LineFsStats,
    current_msg: Option<u64>,
    expected_seq: u32,
}

impl LineFs {
    /// A fresh server.
    pub fn new(cfg: LineFsConfig) -> LineFs {
        LineFs {
            cfg,
            stats: LineFsStats::default(),
            current_msg: None,
            expected_seq: 0,
        }
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &LineFsStats {
        &self.stats
    }
}

impl Application for LineFs {
    fn name(&self) -> &str {
        "linefs"
    }

    fn process(&mut self, pkt: &Packet) -> AppWork {
        // Order verification: within a chunk, sequence must be contiguous.
        match self.current_msg {
            Some(m) if m == pkt.msg_id => {
                if pkt.msg_seq != self.expected_seq {
                    self.stats.out_of_order += 1;
                }
            }
            _ => {
                if pkt.msg_seq != 0 {
                    self.stats.out_of_order += 1;
                }
                self.current_msg = Some(pkt.msg_id);
            }
        }
        self.expected_seq = pkt.msg_seq + 1;

        // Order-sensitive rolling checksum over (msg, seq, len).
        self.stats.checksum = self
            .stats
            .checksum
            .rotate_left(7)
            .wrapping_add(pkt.msg_id.wrapping_mul(31) ^ pkt.msg_seq as u64 ^ pkt.bytes);
        self.stats.bytes_written += pkt.bytes;

        // Copy into the page store; on the chunk tail, journal + replicate.
        let mut cpu = self.cfg.per_packet;
        let mut copy_bytes = pkt.bytes;
        let mut response_bytes = 0;
        if pkt.msg_last {
            self.stats.chunks_committed += 1;
            self.current_msg = None;
            self.expected_seq = 0;
            cpu += self.cfg.per_chunk;
            copy_bytes += pkt.bytes * self.cfg.replica_copies;
            response_bytes = 64; // commit ack
        }
        AppWork {
            cpu,
            copy_bytes,
            response_bytes,
        }
    }

    fn zero_copy(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceio_net::{FlowId, PacketId};
    use ceio_sim::Time;

    fn pkt(id: u64, msg_id: u64, msg_seq: u32, msg_last: bool) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            bytes: 2048,
            msg_id,
            msg_seq,
            msg_last,
            sent_at: Time::ZERO,
            arrived_nic: Time::ZERO,
            ecn: false,
        }
    }

    #[test]
    fn assembles_chunks_in_order() {
        let mut fs = LineFs::new(LineFsConfig::default());
        let mut id = 0;
        for msg in 0..10u64 {
            for seq in 0..4u32 {
                fs.process(&pkt(id, msg, seq, seq == 3));
                id += 1;
            }
        }
        let s = fs.stats();
        assert_eq!(s.chunks_committed, 10);
        assert_eq!(s.out_of_order, 0);
        assert_eq!(s.bytes_written, 40 * 2048);
    }

    #[test]
    fn detects_reordering() {
        let mut fs = LineFs::new(LineFsConfig::default());
        fs.process(&pkt(0, 0, 0, false));
        fs.process(&pkt(1, 0, 2, false)); // skipped seq 1
        assert_eq!(fs.stats().out_of_order, 1);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let sum = |order: &[(u32, bool)]| {
            let mut fs = LineFs::new(LineFsConfig::default());
            for (i, &(seq, last)) in order.iter().enumerate() {
                fs.process(&pkt(i as u64, 0, seq, last));
            }
            fs.stats().checksum
        };
        assert_ne!(sum(&[(0, false), (1, true)]), sum(&[(1, false), (0, true)]));
    }

    #[test]
    fn copy_profile_includes_replication_on_tail() {
        let mut fs = LineFs::new(LineFsConfig::default());
        let body = fs.process(&pkt(0, 0, 0, false));
        assert_eq!(body.copy_bytes, 2048);
        assert_eq!(body.response_bytes, 0);
        let tail = fs.process(&pkt(1, 0, 1, true));
        assert_eq!(
            tail.copy_bytes,
            2048 * 3,
            "payload + replication + log copies"
        );
        assert_eq!(tail.response_bytes, 64);
        assert!(tail.cpu > body.cpu);
        assert!(!fs.zero_copy());
    }
}
