//! # ceio-apps — the evaluation's benchmark applications (§6.1)
//!
//! Each application implements the `ceio_cpu::Application` consumer trait,
//! exposing the *cost profile* that matters to the I/O path — compute per
//! packet, copied bytes, response bytes — while also doing enough real work
//! (an actual hash-map KV store, an actual chunk/replica ledger) that the
//! profiles are grounded rather than hard-coded constants.
//!
//! * [`KvStore`] — the eRPC-based key-value server: 1:1 get/put with a 1:4
//!   key:value ratio (16 B keys, 64 B values ⇒ 144 B requests), zero-copy
//!   RX, replies on every request. CPU-involved.
//! * [`LineFs`] — the LineFS-style DFS server: clients stream large chunked
//!   file writes; the server copies payloads into its page store and
//!   performs replication + logging per chunk. CPU-bypass (RDMA-style),
//!   copy-heavy — the §6.4 copy-miss analysis lives here.
//! * [`EchoApp`] — the dperf-style echo server used for peak-datapath and
//!   tail-latency experiments (Table 2, Fig. 11/12).
//! * [`VxlanDecap`] — the §6.3 limited-benefit synthetic: 64 B packets with
//!   VxLAN decapsulation, tiny memory footprint.
//! * [`perftest`] — `ib_write_bw` / `ib_write_lat` workload constructors
//!   and the no-op consumer they use (Fig. 11, Table 3).

#![warn(missing_docs)]

pub mod echo;
pub mod kv;
pub mod linefs;
pub mod perftest;
pub mod vxlan;

pub use echo::EchoApp;
pub use kv::{KvConfig, KvStore};
pub use linefs::{LineFs, LineFsConfig};
pub use perftest::{write_bw_flow, write_lat_flow, SinkApp};
pub use vxlan::VxlanDecap;
