//! perftest equivalents: `ib_write_bw` and `ib_write_lat` (§6.1, §6.3).
//!
//! The Mellanox perftest tools measure the raw RDMA datapath: one flow,
//! RDMA writes of a configured size, no application processing. Fig. 11
//! compares CEIO's fast and slow paths against `ib_write_bw`; Table 3
//! compares latency against `ib_write_lat`. These constructors produce the
//! matching [`FlowSpec`]s; [`SinkApp`] is the no-op consumer both use.

use ceio_cpu::{AppWork, Application};
use ceio_net::{FlowClass, FlowSpec, Packet};
use ceio_sim::{Bandwidth, Duration};

/// A consumer that does nothing with the payload (perftest's data sink).
#[derive(Debug, Default)]
pub struct SinkApp {
    received: u64,
    bytes: u64,
}

impl SinkApp {
    /// A fresh sink.
    pub fn new() -> SinkApp {
        SinkApp::default()
    }

    /// Packets absorbed.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Bytes absorbed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Application for SinkApp {
    fn name(&self) -> &str {
        "perftest-sink"
    }

    fn process(&mut self, pkt: &Packet) -> AppWork {
        self.received += 1;
        self.bytes += pkt.bytes;
        AppWork::compute(Duration::nanos(5))
    }
}

/// `ib_write_bw`-style flow: one CPU-bypass flow of back-to-back RDMA
/// writes of `msg_bytes`, demanding `demand` (typically the link rate).
/// Messages above the MTU segment into MTU-sized packets.
pub fn write_bw_flow(id: u32, msg_bytes: u64, mtu: u64, demand: Bandwidth) -> FlowSpec {
    let pkt = msg_bytes.min(mtu).max(1);
    let packets = msg_bytes.div_ceil(pkt).max(1) as u32;
    FlowSpec::new(id, FlowClass::CpuBypass, pkt, packets, demand)
}

/// `ib_write_lat`-style flow: ping-pong single writes of `msg_bytes` at a
/// deliberately low rate so each write observes an unloaded path.
pub fn write_lat_flow(id: u32, msg_bytes: u64, mtu: u64) -> FlowSpec {
    let pkt = msg_bytes.min(mtu).max(1);
    let packets = msg_bytes.div_ceil(pkt).max(1) as u32;
    // ~100k writes/sec keeps successive measurements independent.
    let demand = Bandwidth::bytes_per_sec(msg_bytes.max(64) * 100_000);
    FlowSpec::new(id, FlowClass::CpuBypass, pkt, packets, demand)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_writes_are_single_packets() {
        let f = write_bw_flow(0, 512, 1500, Bandwidth::gbps(200));
        assert_eq!(f.packet_bytes, 512);
        assert_eq!(f.msg_packets, 1);
        assert_eq!(f.class, FlowClass::CpuBypass);
    }

    #[test]
    fn large_writes_segment_at_mtu() {
        let f = write_bw_flow(0, 65_536, 1500, Bandwidth::gbps(200));
        assert_eq!(f.packet_bytes, 1500);
        assert_eq!(f.msg_packets, 44); // ceil(65536/1500)
        assert!(f.msg_bytes() >= 65_536);
    }

    #[test]
    fn lat_flow_is_slow_paced() {
        let f = write_lat_flow(0, 4096, 1500);
        // 4 KB * 100k/s = ~3.3 Gbps << line rate.
        assert!(f.demand < Bandwidth::gbps(5));
    }

    #[test]
    fn sink_counts() {
        use ceio_net::{FlowId, PacketId};
        use ceio_sim::Time;
        let mut s = SinkApp::new();
        s.process(&Packet {
            id: PacketId(0),
            flow: FlowId(0),
            bytes: 1500,
            msg_id: 0,
            msg_seq: 0,
            msg_last: true,
            sent_at: Time::ZERO,
            arrived_nic: Time::ZERO,
            ecn: false,
        });
        assert_eq!(s.received(), 1);
        assert_eq!(s.bytes(), 1500);
    }
}
