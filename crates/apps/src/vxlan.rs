//! The §6.3 limited-benefit synthetic: 64 B packets with VxLAN
//! decapsulation.
//!
//! "When the memory footprint is small, almost all I/O data can be cached
//! in the LLC... both baselines and CEIO achieve 89 Mpps throughput with
//! <5% cache miss rate." The decap itself is a real header rewrite cost;
//! the tiny footprint is what makes LLC management moot.

use ceio_cpu::{AppWork, Application};
use ceio_net::Packet;
use ceio_sim::Duration;

/// VxLAN decapsulation NF.
#[derive(Debug, Default)]
pub struct VxlanDecap {
    decapped: u64,
}

impl VxlanDecap {
    /// A fresh decapsulator.
    pub fn new() -> VxlanDecap {
        VxlanDecap::default()
    }

    /// Packets decapsulated.
    pub fn decapped(&self) -> u64 {
        self.decapped
    }
}

impl Application for VxlanDecap {
    fn name(&self) -> &str {
        "vxlan-decap"
    }

    fn process(&mut self, _pkt: &Packet) -> AppWork {
        self.decapped += 1;
        AppWork {
            // Outer Ethernet/IP/UDP/VxLAN strip + inner header fixups.
            cpu: Duration::nanos(45),
            copy_bytes: 0,
            response_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceio_net::{FlowId, PacketId};
    use ceio_sim::Time;

    #[test]
    fn one_way_cheap_profile() {
        let mut v = VxlanDecap::new();
        let w = v.process(&Packet {
            id: PacketId(0),
            flow: FlowId(0),
            bytes: 64,
            msg_id: 0,
            msg_seq: 0,
            msg_last: true,
            sent_at: Time::ZERO,
            arrived_nic: Time::ZERO,
            ecn: false,
        });
        assert_eq!(w.response_bytes, 0);
        assert_eq!(w.copy_bytes, 0);
        assert!(w.cpu < Duration::nanos(100));
    }
}
