//! The dperf-style echo server (§6.1).
//!
//! "One client continuously sends messages to the server, which echoes
//! each message back with a 64 B acknowledgement. This workload is used to
//! demonstrate the highest performance of CEIO's I/O data path."

use ceio_cpu::{AppWork, Application};
use ceio_net::Packet;
use ceio_sim::Duration;

/// The echo application: near-zero compute, zero-copy, 64 B replies.
#[derive(Debug, Default)]
pub struct EchoApp {
    echoed: u64,
}

impl EchoApp {
    /// A fresh echo server.
    pub fn new() -> EchoApp {
        EchoApp::default()
    }

    /// Messages echoed so far.
    pub fn echoed(&self) -> u64 {
        self.echoed
    }
}

impl Application for EchoApp {
    fn name(&self) -> &str {
        "echo"
    }

    fn process(&mut self, _pkt: &Packet) -> AppWork {
        self.echoed += 1;
        AppWork {
            // Touch the header, build the 64 B ack.
            cpu: Duration::nanos(30),
            copy_bytes: 0,
            response_bytes: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceio_net::{FlowId, PacketId};
    use ceio_sim::Time;

    #[test]
    fn minimal_profile() {
        let mut e = EchoApp::new();
        let w = e.process(&Packet {
            id: PacketId(0),
            flow: FlowId(0),
            bytes: 512,
            msg_id: 0,
            msg_seq: 0,
            msg_last: true,
            sent_at: Time::ZERO,
            arrived_nic: Time::ZERO,
            ecn: false,
        });
        assert_eq!(w.copy_bytes, 0);
        assert_eq!(w.response_bytes, 64);
        assert_eq!(e.echoed(), 1);
    }
}
