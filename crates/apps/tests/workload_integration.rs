//! Integration tests of the benchmark applications running on the full
//! host machine: the workloads must behave like the systems they stand in
//! for, end to end.

use ceio_apps::{write_bw_flow, write_lat_flow, KvConfig, KvStore, LineFs, LineFsConfig, SinkApp};
use ceio_host::{run_to_report, AppFactory, HostConfig, Machine, UnmanagedPolicy};
use ceio_net::{FlowClass, FlowSpec, Scenario};
use ceio_sim::{Bandwidth, Duration, Time};

#[test]
fn kv_store_sustains_millions_of_requests_per_second() {
    let mut s = Scenario::new();
    s.start_at(
        Time::ZERO,
        FlowSpec::new(0, FlowClass::CpuInvolved, 144, 1, Bandwidth::gbps(5)),
    );
    let mut sim = Machine::build(
        HostConfig::default(),
        UnmanagedPolicy,
        s.build(),
        Box::new(|_| Box::new(KvStore::new(KvConfig::default()))),
    );
    let r = run_to_report(&mut sim, Duration::millis(1), Duration::millis(4));
    // 5 Gbps of 144 B requests ≈ 4.3M req/s offered; the core sustains
    // close to its ~3M hot capacity.
    assert!(r.involved_mpps > 2.5, "KV rate {}", r.involved_mpps);
}

#[test]
fn linefs_assembles_the_stream_in_order_end_to_end() {
    let mut s = Scenario::new();
    // 64-packet chunks at 2 KB = 128 KB chunks, 20 Gbps.
    s.start_at(
        Time::ZERO,
        FlowSpec::new(0, FlowClass::CpuBypass, 2048, 64, Bandwidth::gbps(20)),
    );
    let mut sim = Machine::build(
        HostConfig::default(),
        UnmanagedPolicy,
        s.build(),
        Box::new(|_| Box::new(LineFs::new(LineFsConfig::default()))),
    );
    run_to_report(&mut sim, Duration::millis(1), Duration::millis(4));
    let f = sim.model.st.flows.values().next().expect("one flow");
    assert!(f.counters.msgs_completed > 10, "chunks must commit");
    // The app's own sequencing check ran on every packet; the per-flow
    // consumed/message accounting must agree with 64-packet chunks.
    let implied = f.counters.consumed_pkts / 64;
    assert!(f.counters.msgs_completed.abs_diff(implied) <= 1);
}

#[test]
fn write_bw_flow_saturates_toward_line_rate_at_large_messages() {
    let host = HostConfig::default();
    let mut s = Scenario::new();
    s.start_at(
        Time::ZERO,
        write_bw_flow(0, 64 << 10, host.net.mtu, host.net.link_bandwidth),
    );
    let mut sim = Machine::build(
        host,
        UnmanagedPolicy,
        s.build(),
        Box::new(|_| Box::new(SinkApp::new())),
    );
    let r = run_to_report(&mut sim, Duration::millis(1), Duration::millis(4));
    assert!(
        r.bypass_gbps > 150.0,
        "64 KB writes should push near line rate, got {}",
        r.bypass_gbps
    );
}

#[test]
fn write_lat_flow_measures_unloaded_latency() {
    let mut host = HostConfig::default();
    host.net.base_delay = Duration::nanos(500);
    let mut s = Scenario::new();
    s.start_at(Time::ZERO, write_lat_flow(0, 64, host.net.mtu));
    let mut sim = Machine::build(
        host,
        UnmanagedPolicy,
        s.build(),
        Box::new(|_| Box::new(SinkApp::new())),
    );
    let r = run_to_report(&mut sim, Duration::millis(1), Duration::millis(4));
    // Low microseconds: 0.5 µs wire + PCIe + retire + poll.
    let p50 = r.bypass_latency.p50();
    assert!(
        (800..4_000).contains(&p50),
        "unloaded write latency {p50} ns out of range"
    );
    // Low load: P99.9 close to median (no queueing).
    assert!(r.bypass_latency.p999() < p50 * 4);
}

#[test]
fn zero_copy_vs_copy_apps_diverge_in_dram_traffic() {
    let run = |factory: AppFactory| {
        let mut s = Scenario::new();
        s.start_at(
            Time::ZERO,
            FlowSpec::new(0, FlowClass::CpuInvolved, 2048, 1, Bandwidth::gbps(10)),
        );
        let mut sim = Machine::build(HostConfig::default(), UnmanagedPolicy, s.build(), factory);
        run_to_report(&mut sim, Duration::millis(1), Duration::millis(3));
        sim.model.st.memctrl.dram.stats().bytes_served
    };
    let kv_dram = run(Box::new(|_| Box::new(KvStore::new(KvConfig::default())))); // zero-copy
    let fs_dram = run(Box::new(|_| Box::new(LineFs::new(LineFsConfig::default())))); // copies
                                                                                     // §6.4: copies are the DRAM traffic zero-copy avoids.
    assert!(
        fs_dram > kv_dram * 5,
        "copy app must dominate DRAM traffic: kv={kv_dram} fs={fs_dram}"
    );
}
