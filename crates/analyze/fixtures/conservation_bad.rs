// Known-bad fixture for the conservation rule.

pub struct CreditManager {
    total: u64,
    free_pool: u64,
    outstanding: u64,
}

impl CreditManager {
    // no finding: constructors build, they do not mutate.
    pub fn new(total: u64) -> CreditManager {
        CreditManager {
            total,
            free_pool: total,
            outstanding: 0,
        }
    }

    fn conserved(&self) -> bool {
        self.free_pool + self.outstanding == self.total
    }

    // finding: ledger mutation without a conservation assert.
    pub fn sneak_inject(&mut self, n: u64) {
        self.free_pool += n;
    }

    // no finding: mutation guarded by the Eq. 1 assert.
    pub fn try_consume(&mut self, n: u64) -> bool {
        if self.free_pool < n {
            return false;
        }
        self.free_pool -= n;
        self.outstanding += n;
        debug_assert!(self.conserved(), "consume broke Eq. 1 conservation");
        true
    }

    // no finding: delegates to a checked sibling.
    pub fn consume_one(&mut self) -> bool {
        self.try_consume(1)
    }

    // no finding: test-gated fault hooks exist to violate conservation.
    #[cfg(any(test, feature = "chaos"))]
    pub fn leak_credit_for_tests(&mut self) {
        self.outstanding += 1;
    }
}
