// Known-bad fixture for the telemetry-coverage rule.

/// Stats with one exported and one forgotten field.
pub struct WidgetStats {
    /// Exported below.
    pub spins: u64,
    /// finding: never read by any exporter.
    pub stalls: u64,
}

pub struct Builder;

impl Builder {
    pub fn counter(&mut self, _name: &str, _v: u64) {}
}

/// The exporter: reads `spins`, forgets `stalls`.
pub fn snapshot(w: &WidgetStats, b: &mut Builder) {
    b.counter("ceio_widget_spins_total", w.spins);
}

/// Chaos fault sites with good and bad observability tags.
pub enum FaultSite {
    /// Injected spin storm.
    /// recovery: ceio_widget_spins_total
    Tagged,
    /// finding: no recovery tag at all.
    Untagged,
    /// finding: tag names a metric nothing exports.
    /// recovery: ceio_phantom_total
    BadTag,
}
