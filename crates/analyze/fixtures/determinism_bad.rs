// Known-bad fixture for the determinism rule. Each construct below must
// produce exactly one finding; the `sorted_ok` items must produce none.
use std::collections::HashMap;
use std::time::Instant;

pub struct Tracker {
    flows: HashMap<u64, u64>,
}

impl Tracker {
    // finding: hash-order `.values()` iteration.
    pub fn sum(&self) -> u64 {
        self.flows.values().sum()
    }

    // finding: hash-order `for … in` sweep.
    pub fn sweep(&self) -> u64 {
        let mut acc = 0;
        for (k, v) in &self.flows {
            acc += k + v;
        }
        acc
    }

    // finding: ambient wall clock.
    pub fn stamp(&self) -> Instant {
        Instant::now()
    }

    // no finding: ordered collections iterate deterministically.
    pub fn ordered_ok(&self) -> u64 {
        let m: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        m.values().sum()
    }
}

// finding: `.keys()` on a local HashMap binding.
pub fn local_iter() -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    m.keys().count()
}

#[cfg(test)]
mod tests {
    // no finding: test code is exempt.
    #[test]
    fn exempt() {
        let m = std::collections::HashMap::<u32, u32>::new();
        for _ in m.iter() {}
    }
}
