// Known-bad fixture for the conservation caller scan: this file poses as
// a non-core crate reaching into the credit ledger directly.

pub struct Host;

impl Host {
    // finding: distinctive mutator called outside the policy layer.
    pub fn bypass_policy(&self, cm: &mut super::CreditManager) -> bool {
        cm.try_consume(1)
    }

    // no finding: `Vec::remove` is not a ledger mutator.
    pub fn unrelated_remove(&self, v: &mut Vec<u64>) {
        v.remove(0);
    }
}
