// Known-bad fixture for the telemetry rule's scope-coverage half:
// registered flight-recorder series that no `scope_sample` ever records.

pub struct Recorder;

impl Recorder {
    pub fn register(&mut self, _key: &str, _help: &str) {}
    pub fn register_queue(&mut self, _key: &str, _help: &str, _n: usize) {}
    pub fn record(&mut self, _key: &str, _v: f64) {}
    pub fn record_rate(&mut self, _key: &str, _total: f64) {}
    pub fn record_queue(&mut self, _key: &str, _q: usize, _v: f64) {}
}

/// Registers four series; only two are ever sampled.
pub fn scope_register(rec: &mut Recorder) {
    rec.register("sampled_gauge", "Recorded below: fine.");
    rec.register("forgotten_gauge", "finding: never recorded.");
    rec.register_queue("sampled_per_queue", "Recorded below: fine.", 2);
    rec.register_queue("forgotten_per_queue", "finding: never recorded.", 2);
}

/// The sampler: covers the two `sampled_*` keys, forgets the others.
pub fn scope_sample(rec: &mut Recorder) {
    rec.record_rate("sampled_gauge", 1.0);
    rec.record_queue("sampled_per_queue", 0, 2.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-gated registrations are out of scope: a fixture for the rule's
    // own test harness must not trip the rule.
    pub fn scope_register(rec: &mut Recorder) {
        rec.register("test_only_gauge", "never recorded, but test-gated");
    }
}
