// Known-bad fixture for the unit-safety rule (posed as crates/core).

/// finding ×2: raw nanoseconds and raw queue id on a pub fn.
pub fn schedule(deadline_ns: u64, dest_queue: usize) -> u64 {
    deadline_ns + dest_queue as u64
}

/// no finding: counts are not unit quantities.
pub fn resize(num_queues: usize) -> usize {
    num_queues
}

/// no finding: private functions may use raw integers internally.
fn internal(delay_ns: u64) -> u64 {
    delay_ns
}

/// no finding: no Bytes newtype exists in this fixture set.
pub fn record(rx_bytes: u64) -> u64 {
    rx_bytes
}
