//! Telemetry-coverage rule: if the model counts it, the snapshot must
//! export it; if chaos can break it, a counter must witness the recovery.
//!
//! Half 1 — every field of every public `*Stats` struct in the pipeline
//! crates must be read somewhere inside a snapshot exporter (a function
//! named `fill_metrics` or `snapshot`). A counter nobody exports is a
//! regression nobody notices.
//!
//! Half 2 — every variant of the chaos `FaultSite` enum must carry a
//! `/// recovery: <metric_name>` doc tag, and that metric name must
//! appear as a string literal inside an exporter. This pins each fault
//! injection point to the observable counter that proves the system
//! absorbed it.
//!
//! Half 3 — every flight-recorder series key registered in a
//! `scope_register` function (via `register("key", …)` /
//! `register_queue("key", …)`) must be recorded by some `record*` call
//! inside a `scope_sample` function. A registered-but-never-sampled key
//! is worse than a missing one: it renders as an empty CSV column and a
//! blank chart, which reads as "the quantity was zero" instead of "the
//! quantity was never measured".

use std::collections::BTreeSet;

use super::{body, ident_text, punct_at, Unit};
use crate::lexer::TokKind;
use crate::report::{Finding, Rule};

/// Crates whose `*Stats` structs must be exported.
pub const SCOPE: &[&str] = &["core", "host", "nic", "mem", "net", "pcie", "cpu"];

/// Exporter function names.
const EXPORTER_FNS: &[&str] = &["fill_metrics", "snapshot"];

/// Run the rule over all units.
pub fn check(units: &[Unit]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Collect exporter bodies: field reads (`.x` not followed by a call
    // paren) and metric-name string literals.
    let mut exported_fields: BTreeSet<String> = BTreeSet::new();
    let mut metric_strings: Vec<String> = Vec::new();
    let mut exporter_count = 0usize;
    for u in units {
        for f in &u.pf.fns {
            if f.is_test || !EXPORTER_FNS.contains(&f.name.as_str()) {
                continue;
            }
            let toks = body(&u.pf, f);
            if toks.is_empty() {
                continue;
            }
            exporter_count += 1;
            for i in 0..toks.len() {
                if punct_at(toks, i, '.') {
                    if let Some(field) = ident_text(toks, i + 1) {
                        if !punct_at(toks, i + 2, '(') {
                            exported_fields.insert(field.to_string());
                        }
                    }
                }
                if toks[i].kind == TokKind::Str {
                    metric_strings.push(toks[i].text.clone());
                }
            }
        }
    }

    // Half 1: every public *Stats field must be read by some exporter.
    for u in units {
        if !SCOPE.contains(&u.src.crate_name.as_str()) {
            continue;
        }
        for s in &u.pf.structs {
            if s.is_test || !s.is_pub || !s.name.ends_with("Stats") || s.name == "Stats" {
                continue;
            }
            for field in &s.fields {
                if exported_fields.contains(&field.name) {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::Telemetry,
                    file: u.src.rel.clone(),
                    line: field.line,
                    message: format!(
                        "stats field `{}.{}` is never read by any snapshot exporter \
                         ({} exporter bodies scanned)",
                        s.name, field.name, exporter_count
                    ),
                    hint: "export it in `Machine::snapshot` / a `fill_metrics` impl, or \
                           allowlist it with `rule=telemetry` if the component is not part \
                           of the assembled pipeline"
                        .to_string(),
                });
            }
        }
    }

    // Half 3: registered flight-recorder series must be sampled.
    // Collect every key literal recorded by a `record*` call inside a
    // `scope_sample` body (any crate — the policy hooks live in `core`,
    // the machine walk in `host`)…
    let mut recorded_keys: BTreeSet<String> = BTreeSet::new();
    let mut sampler_count = 0usize;
    for u in units {
        for f in &u.pf.fns {
            if f.is_test || f.name != "scope_sample" {
                continue;
            }
            let toks = body(&u.pf, f);
            if toks.is_empty() {
                continue;
            }
            sampler_count += 1;
            for i in 0..toks.len() {
                if ident_text(toks, i).is_some_and(|t| t.starts_with("record"))
                    && punct_at(toks, i + 1, '(')
                    && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Str)
                {
                    recorded_keys.insert(toks[i + 2].text.clone());
                }
            }
        }
    }
    // …then demand each key registered in a `scope_register` body in the
    // instrumented crates appears in that set.
    for u in units {
        if !SCOPE.contains(&u.src.crate_name.as_str()) {
            continue;
        }
        for f in &u.pf.fns {
            if f.is_test || f.name != "scope_register" {
                continue;
            }
            let toks = body(&u.pf, f);
            for i in 0..toks.len() {
                let is_reg =
                    ident_text(toks, i).is_some_and(|t| t == "register" || t == "register_queue");
                if !(is_reg
                    && punct_at(toks, i + 1, '(')
                    && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Str))
                {
                    continue;
                }
                let key = &toks[i + 2].text;
                if recorded_keys.contains(key) {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::Telemetry,
                    file: u.src.rel.clone(),
                    line: toks[i + 2].line,
                    message: format!(
                        "scope series `{key}` is registered but never recorded by any \
                         `scope_sample` body ({sampler_count} sampler bodies scanned)"
                    ),
                    hint: "record the series each sampling epoch in a `scope_sample` fn, \
                           or drop the registration — an empty column reads as zero, not \
                           as unmeasured"
                        .to_string(),
                });
            }
        }
    }

    // Half 2: chaos fault sites must name an exported recovery counter.
    for u in units {
        for e in &u.pf.enums {
            if e.is_test || e.name != "FaultSite" {
                continue;
            }
            for v in &e.variants {
                let tag = v.docs.iter().find_map(|d| {
                    d.split_once("recovery:")
                        .map(|(_, rest)| rest.trim().to_string())
                });
                match tag {
                    None => findings.push(Finding {
                        rule: Rule::Telemetry,
                        file: u.src.rel.clone(),
                        line: v.line,
                        message: format!(
                            "fault site `FaultSite::{}` has no `/// recovery: <metric>` doc tag",
                            v.name
                        ),
                        hint: "tag the variant with the exported counter that witnesses the \
                               system absorbing this fault"
                            .to_string(),
                    }),
                    Some(metric) if metric.is_empty() => findings.push(Finding {
                        rule: Rule::Telemetry,
                        file: u.src.rel.clone(),
                        line: v.line,
                        message: format!(
                            "fault site `FaultSite::{}` has an empty `recovery:` tag",
                            v.name
                        ),
                        hint: "name the exported counter that witnesses recovery".to_string(),
                    }),
                    Some(metric) => {
                        if !metric_strings.iter().any(|s| s.contains(&metric)) {
                            findings.push(Finding {
                                rule: Rule::Telemetry,
                                file: u.src.rel.clone(),
                                line: v.line,
                                message: format!(
                                    "recovery counter `{metric}` for `FaultSite::{}` is not \
                                     exported by any snapshot exporter",
                                    v.name
                                ),
                                hint: "export the counter or fix the `recovery:` tag to name \
                                       the real one"
                                    .to_string(),
                            });
                        }
                    }
                }
            }
        }
    }
    findings
}
