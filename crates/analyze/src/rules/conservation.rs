//! Conservation rule: every credit-ledger mutator must assert Eq. 1
//! (`assigned + pool + outstanding == total`) before returning, and
//! ledger mutations must stay inside the policy/controller layer.
//!
//! The ledger types are `CreditManager` and its RSS wrapper
//! `ShardedCredits` (crates/core). A *mutator* is any `&mut self` method
//! that writes a ledger field or restructures the per-flow/per-partition
//! maps. Each one must either contain a `debug_assert!(… conserved …)`
//! or delegate to a sibling method that does. Test-gated helpers (the
//! chaos fault hooks) are exempt — they exist to *violate* conservation.

use std::collections::BTreeSet;

use super::{body, ident_text, punct_at, Unit};
use crate::lexer::Tok;
use crate::parse::SelfKind;
use crate::report::{Finding, Rule};

/// The ledger-owning types.
const LEDGER_TYPES: &[&str] = &["CreditManager", "ShardedCredits"];

/// Scalar ledger fields of the Eq. 1 balance.
const LEDGER_FIELDS: &[&str] = &[
    "credits",
    "owed",
    "free_pool",
    "outstanding",
    "total",
    "configured_total",
    "global_free",
];

/// Map/vec fields whose membership *is* ledger structure.
const LEDGER_MAPS: &[&str] = &["flows", "parts", "owed"];

/// Mutator names too generic to flag at call sites without context; for
/// these the caller scan also requires a credit-ish receiver.
const GENERIC_NAMES: &[&str] = &["release", "grant", "reclaim", "insert", "remove", "new"];

/// Run the rule over all units.
pub fn check(units: &[Unit]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Pass 1: classify ledger methods.
    struct Mutator {
        name: String,
        checked: bool,
        is_pub: bool,
    }
    let mut mutators: Vec<Mutator> = Vec::new();
    let mut ledger_files: BTreeSet<String> = BTreeSet::new();
    for u in units {
        for f in &u.pf.fns {
            let Some(ty) = f.impl_of.as_deref() else {
                continue;
            };
            if !LEDGER_TYPES.contains(&ty) || f.is_test {
                continue;
            }
            ledger_files.insert(u.src.rel.clone());
            if f.self_kind != Some(SelfKind::RefMut) {
                continue;
            }
            let toks = body(&u.pf, f);
            if !is_ledger_mutation(toks) {
                continue;
            }
            mutators.push(Mutator {
                name: f.name.clone(),
                checked: has_conservation_assert(toks),
                is_pub: f.is_pub,
            });
        }
    }
    let checked_names: BTreeSet<&str> = mutators
        .iter()
        .filter(|m| m.checked)
        .map(|m| m.name.as_str())
        .collect();

    // Pass 2: unchecked mutators may delegate (one level) to a checked one.
    for u in units {
        for f in &u.pf.fns {
            let Some(ty) = f.impl_of.as_deref() else {
                continue;
            };
            if !LEDGER_TYPES.contains(&ty) || f.is_test || f.self_kind != Some(SelfKind::RefMut) {
                continue;
            }
            let toks = body(&u.pf, f);
            if !is_ledger_mutation(toks) || has_conservation_assert(toks) {
                continue;
            }
            if calls_any(toks, &checked_names) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::Conservation,
                file: u.src.rel.clone(),
                line: f.line,
                message: format!(
                    "ledger mutator `{ty}::{}` neither asserts Eq. 1 conservation nor \
                     delegates to a method that does",
                    f.name
                ),
                hint: "add `debug_assert!(self.conserved(), …)` before returning, or route \
                       the mutation through a checked sibling"
                    .to_string(),
            });
        }
    }

    // Pass 3: caller scan — public mutators must only be reached from the
    // policy/controller layer (crates/core). A distinctive mutator name
    // called anywhere else is a layering violation; generic names
    // (release/grant/…) additionally require a credit-ish receiver so an
    // unrelated `.remove()` cannot trip the rule.
    let pub_mutators: BTreeSet<&str> = mutators
        .iter()
        .filter(|m| m.is_pub)
        .map(|m| m.name.as_str())
        .collect();
    for u in units {
        if u.src.crate_name == "core" || ledger_files.contains(&u.src.rel) {
            continue;
        }
        for f in &u.pf.fns {
            if f.is_test {
                continue;
            }
            let toks = body(&u.pf, f);
            for i in 0..toks.len() {
                if !punct_at(toks, i, '.') {
                    continue;
                }
                let Some(m) = ident_text(toks, i + 1) else {
                    continue;
                };
                if !punct_at(toks, i + 2, '(') || !pub_mutators.contains(m) {
                    continue;
                }
                if GENERIC_NAMES.contains(&m) {
                    let recv = i.checked_sub(1).and_then(|j| ident_text(toks, j));
                    let creditish = recv.is_some_and(|r| {
                        let r = r.to_ascii_lowercase();
                        r.contains("credit") || r.contains("sharded") || r.contains("ledger")
                    });
                    if !creditish {
                        continue;
                    }
                }
                findings.push(Finding {
                    rule: Rule::Conservation,
                    file: u.src.rel.clone(),
                    line: toks[i + 1].line,
                    message: format!(
                        "credit-ledger mutator `.{m}(…)` called outside the policy/controller \
                         layer (crates/core)"
                    ),
                    hint: "route credit mutations through the policy layer so Eq. 1 \
                           accounting stays in one place"
                        .to_string(),
                });
            }
        }
    }
    findings
}

/// Whether a body writes a ledger field or restructures a ledger map.
fn is_ledger_mutation(toks: &[Tok]) -> bool {
    for i in 0..toks.len() {
        let Some(name) = ident_text(toks, i) else {
            continue;
        };
        // `let total = …` binds a new local, it does not write the field.
        let after_let = i
            .checked_sub(1)
            .and_then(|j| ident_text(toks, j))
            .is_some_and(|p| p == "let" || p == "mut");
        if LEDGER_FIELDS.contains(&name) && !after_let {
            // `name = …` (not `==`, not `=>`)
            if punct_at(toks, i + 1, '=')
                && !punct_at(toks, i + 2, '=')
                && !punct_at(toks, i + 2, '>')
            {
                return true;
            }
            // `name += …` / `name -= …`
            if (punct_at(toks, i + 1, '+') || punct_at(toks, i + 1, '-'))
                && punct_at(toks, i + 2, '=')
                && !punct_at(toks, i + 3, '=')
            {
                return true;
            }
        }
        if LEDGER_MAPS.contains(&name)
            && punct_at(toks, i + 1, '.')
            && ident_text(toks, i + 2)
                .is_some_and(|m| matches!(m, "insert" | "remove" | "push" | "pop" | "clear"))
            && punct_at(toks, i + 3, '(')
        {
            return true;
        }
    }
    false
}

/// Whether a body contains `debug_assert!(… conserved …)`.
fn has_conservation_assert(toks: &[Tok]) -> bool {
    toks.iter().any(|t| t.is_ident("debug_assert")) && toks.iter().any(|t| t.is_ident("conserved"))
}

/// Whether a body contains a `.name(` call for any name in `names`.
fn calls_any(toks: &[Tok], names: &BTreeSet<&str>) -> bool {
    for i in 0..toks.len() {
        if punct_at(toks, i, '.')
            && ident_text(toks, i + 1).is_some_and(|m| names.contains(m))
            && punct_at(toks, i + 2, '(')
        {
            return true;
        }
    }
    false
}
