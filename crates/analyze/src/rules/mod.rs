//! The four rule families.

pub mod conservation;
pub mod determinism;
pub mod telemetry;
pub mod units;

use crate::lexer::{Tok, TokKind};
use crate::parse::{FnDef, ParsedFile};
use crate::source::SourceFile;

/// One analyzed file: source text plus its parsed items.
#[derive(Debug)]
pub struct Unit {
    /// The discovered source file.
    pub src: SourceFile,
    /// Its parse.
    pub pf: ParsedFile,
}

/// The token slice of a function body (empty for bodyless declarations).
pub fn body<'a>(pf: &'a ParsedFile, f: &FnDef) -> &'a [Tok] {
    let (a, b) = f.body;
    if a >= b || b > pf.toks.len() {
        &[]
    } else {
        &pf.toks[a..b]
    }
}

/// Whether the token at `i` is an identifier equal to `s`.
pub fn ident_at(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(s))
}

/// Whether the token at `i` is the punctuation `c`.
pub fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// The identifier text at `i`, if it is one.
pub fn ident_text(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}
