//! Determinism rule: simulation-facing crates must not iterate hash-order
//! collections or read ambient time/randomness.
//!
//! The simulator's replay and golden-file guarantees (DESIGN §7) hold only
//! if every sweep over per-flow state visits flows in a deterministic
//! order. `std::collections::HashMap`/`HashSet` randomize iteration order
//! per process, so a sweep over one silently varies run-to-run even with a
//! fixed seed — the bug class this rule eliminates at lint time rather
//! than via golden-file flakes.

use std::collections::BTreeSet;

use super::{body, ident_text, punct_at, Unit};
use crate::lexer::TokKind;
use crate::report::{Finding, Rule};

/// Crates whose code feeds simulation state (the replay surface).
pub const SCOPE: &[&str] = &["core", "host", "nic", "mem", "net", "pcie", "sim", "chaos"];

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Identifiers that mean ambient (wall-clock / entropy) state.
const AMBIENT: &[&str] = &["SystemTime", "thread_rng", "RandomState", "DefaultHasher"];

/// Run the rule over all units.
pub fn check(units: &[Unit]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Field names with hash-based types, collected across the whole scope:
    // methods usually live beside the struct, but cross-file access via a
    // public field must be caught too.
    let mut hash_fields: BTreeSet<String> = BTreeSet::new();
    for u in units {
        if !SCOPE.contains(&u.src.crate_name.as_str()) {
            continue;
        }
        for s in &u.pf.structs {
            if s.is_test {
                continue;
            }
            for f in &s.fields {
                if f.ty.contains("HashMap") || f.ty.contains("HashSet") {
                    hash_fields.insert(f.name.clone());
                }
            }
        }
    }

    for u in units {
        if !SCOPE.contains(&u.src.crate_name.as_str()) {
            continue;
        }
        for f in &u.pf.fns {
            if f.is_test {
                continue;
            }
            let toks = body(&u.pf, f);
            let locals = hash_locals(toks);
            let in_scope = |name: &str| hash_fields.contains(name) || locals.contains(name);

            let mut i = 0usize;
            while i < toks.len() {
                // `recv.iter()` / `recv.drain()` / … where recv is hash-typed.
                if punct_at(toks, i, '.')
                    && ident_text(toks, i + 1).is_some_and(|m| ITER_METHODS.contains(&m))
                    && punct_at(toks, i + 2, '(')
                {
                    if let Some(recv) = i.checked_sub(1).and_then(|j| ident_text(toks, j)) {
                        if in_scope(recv) {
                            let line = toks[i + 1].line;
                            findings.push(Finding {
                                rule: Rule::Determinism,
                                file: u.src.rel.clone(),
                                line,
                                message: format!(
                                    "hash-order iteration: `{recv}.{}()` on a HashMap/HashSet \
                                     in simulation code",
                                    toks[i + 1].text
                                ),
                                hint: "use BTreeMap/BTreeSet, or collect keys and sort before \
                                       iterating, so replay order is deterministic"
                                    .to_string(),
                            });
                        }
                    }
                    i += 3;
                    continue;
                }
                // `for pat in <expr> {` where <expr> is a bare hash collection.
                if toks[i].is_ident("for") {
                    if let Some((expr_start, expr_end)) = for_loop_expr(toks, i) {
                        let expr = &toks[expr_start..expr_end];
                        let has_call = expr.iter().any(|t| t.is_punct('('));
                        let last_ident = expr
                            .iter()
                            .rev()
                            .find(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.as_str());
                        if !has_call {
                            if let Some(name) = last_ident {
                                if in_scope(name) {
                                    findings.push(Finding {
                                        rule: Rule::Determinism,
                                        file: u.src.rel.clone(),
                                        line: toks[i].line,
                                        message: format!(
                                            "hash-order iteration: `for … in {name}` over a \
                                             HashMap/HashSet in simulation code"
                                        ),
                                        hint: "use BTreeMap/BTreeSet, or collect keys and sort \
                                               before iterating, so replay order is deterministic"
                                            .to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
                i += 1;
            }
        }

        // Ambient time/randomness: scan all tokens except test-fn bodies.
        let test_spans: Vec<(usize, usize)> =
            u.pf.fns
                .iter()
                .filter(|f| f.is_test)
                .map(|f| f.body)
                .collect();
        let toks = &u.pf.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if test_spans.iter().any(|&(a, b)| i >= a && i < b) {
                continue;
            }
            let flagged = if AMBIENT.contains(&t.text.as_str()) {
                Some(t.text.clone())
            } else if t.text == "Instant" {
                // `Instant::now()` or a `std::time::Instant` path — but not
                // unrelated identifiers that happen to be named Instant.
                let now_follows = punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_text(toks, i + 3) == Some("now");
                let time_precedes = i >= 3
                    && ident_text(toks, i - 3) == Some("time")
                    && punct_at(toks, i - 2, ':')
                    && punct_at(toks, i - 1, ':');
                if now_follows || time_precedes {
                    Some("Instant".to_string())
                } else {
                    None
                }
            } else {
                None
            };
            if let Some(what) = flagged {
                findings.push(Finding {
                    rule: Rule::Determinism,
                    file: u.src.rel.clone(),
                    line: t.line,
                    message: format!(
                        "ambient nondeterminism: `{what}` in simulation code reads wall-clock \
                         time or process entropy"
                    ),
                    hint: "thread `ceio_sim::Time` (the simulated clock) or `ceio_sim::Rng` \
                           (the seeded generator) through the call path instead"
                        .to_string(),
                });
            }
        }
    }
    findings
}

/// Local `let` bindings with hash-based types in a body.
fn hash_locals(toks: &[super::Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if ident_text(toks, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident_text(toks, j) {
                // Scan the statement (to the top-level `;`) for hash types.
                let mut depth = 0i32;
                let mut k = j + 1;
                let mut is_hash = false;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if t.is_punct(';') && depth == 0 {
                        break;
                    } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                        is_hash = true;
                    }
                    k += 1;
                }
                if is_hash {
                    out.insert(name.to_string());
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// For a `for` keyword at `i`, the token range of the iterated expression
/// (between the top-level `in` and the loop `{`).
fn for_loop_expr(toks: &[super::Tok], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_pos = loop {
        let t = toks.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            // Malformed / not actually a loop header.
            return None;
        } else if t.is_ident("in") && depth == 0 {
            break j;
        }
        j += 1;
    };
    let mut k = in_pos + 1;
    let mut depth2 = 0i32;
    loop {
        let t = toks.get(k)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth2 += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth2 -= 1;
        } else if t.is_punct('{') && depth2 == 0 {
            break;
        }
        k += 1;
    }
    Some((in_pos + 1, k))
}
