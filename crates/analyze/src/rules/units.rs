//! Unit-safety rule: public `ceio-core` APIs must not take raw integers
//! for quantities that have a newtype.
//!
//! A `deadline_ns: u64` parameter compiles when handed microseconds; a
//! `deadline: Duration` does not. The rule flags raw `u64`/`u32`/`usize`
//! parameters of public functions in `crates/core` whose *names* declare
//! a unit (`…_ns`, `…_queue`, …) for which the workspace has a newtype
//! (`ceio_sim::Duration`/`Time`, `ceio_nic::QueueId`, …).
//!
//! Patterns for `bytes`/`packets` arm themselves only if a matching
//! newtype is discovered among the scanned sources, implementing the
//! "where a newtype exists" clause literally.

use std::collections::BTreeSet;

use super::Unit;
use crate::report::{Finding, Rule};

/// Raw integer types the rule cares about.
const RAW_INTS: &[&str] = &["u64", "u32", "usize"];

/// One unit pattern: (unit name, param-name matcher, suggested newtype,
/// armed?).
type UnitPattern = (&'static str, fn(&str) -> bool, String, bool);

/// Run the rule over all units.
pub fn check(units: &[Unit]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Discover single-field integer tuple structs (unit newtypes).
    let mut newtypes: BTreeSet<String> = BTreeSet::new();
    for u in units {
        for s in &u.pf.structs {
            if s.is_test || !s.is_pub || s.tuple_tys.len() != 1 {
                continue;
            }
            let inner = s.tuple_tys[0].replace("pub ", "");
            if RAW_INTS.contains(&inner.trim()) {
                newtypes.insert(s.name.clone());
            }
        }
    }

    // (matcher, suggested newtypes, armed?) — Duration/Time and QueueId are
    // workspace invariants; byte/packet counts arm on discovery.
    let patterns: Vec<UnitPattern> = vec![
        (
            "nanoseconds",
            name_is_nanos as fn(&str) -> bool,
            "ceio_sim::Duration (a span) or ceio_sim::Time (an instant)".to_string(),
            true,
        ),
        (
            "queue id",
            name_is_queue,
            "ceio_nic::QueueId".to_string(),
            true,
        ),
        (
            "byte count",
            name_is_bytes,
            "a Bytes newtype".to_string(),
            newtypes.contains("Bytes") || newtypes.contains("ByteCount"),
        ),
        (
            "packet count",
            name_is_packets,
            "a Packets newtype".to_string(),
            newtypes.contains("Packets") || newtypes.contains("PacketCount"),
        ),
    ];

    for u in units {
        if u.src.crate_name != "core" {
            continue;
        }
        for f in &u.pf.fns {
            if f.is_test || !f.is_pub {
                continue;
            }
            for (pname, pty) in &f.params {
                if !RAW_INTS.contains(&pty.as_str()) {
                    continue;
                }
                for (unit_name, matcher, suggestion, armed) in &patterns {
                    if !armed || !matcher(pname) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: Rule::Units,
                        file: u.src.rel.clone(),
                        line: f.line,
                        message: format!(
                            "raw `{pty}` parameter `{pname}` of pub fn `{}` carries a \
                             {unit_name} — a unit newtype exists",
                            f.name
                        ),
                        hint: format!("take {suggestion} instead of a bare integer"),
                    });
                }
            }
        }
    }
    findings
}

fn name_is_nanos(name: &str) -> bool {
    name == "ns" || name == "nanos" || name.ends_with("_ns") || name.ends_with("_nanos")
}

fn name_is_queue(name: &str) -> bool {
    name == "queue" || name == "queue_id" || name.ends_with("_queue")
}

fn name_is_bytes(name: &str) -> bool {
    name == "bytes" || name.ends_with("_bytes")
}

fn name_is_packets(name: &str) -> bool {
    name == "packets" || name == "pkts" || name.ends_with("_packets") || name.ends_with("_pkts")
}
