//! A self-contained Rust lexer.
//!
//! The build environment is offline (no `syn`), so the analyzer carries
//! its own tokenizer. It produces a flat token stream with line numbers —
//! enough structure for the item-level parser in [`crate::parse`] to
//! recover structs, enums, impls, and function bodies, while comments and
//! string contents can never confuse a rule (the failure mode of the old
//! line-oriented lint).
//!
//! Coverage: line/block comments (nested), doc comments (kept, as
//! [`TokKind::Doc`] — the telemetry rule reads `recovery:` tags from
//! them), string literals (plain, raw `r#"…"#`, byte), char literals
//! (with escapes), lifetimes, numbers, identifiers, and single-character
//! punctuation. Multi-character operators are left as adjacent punctuation
//! tokens; rules that care (`+=`, `==`, `->`) inspect neighbors.

/// The kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String literal (text is the *contents*, quotes stripped).
    Str,
    /// Char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), text without the quote.
    Lifetime,
    /// Doc comment (`///` or `//!`), text without the marker.
    Doc,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    #[inline]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    #[inline]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenize `src`. Unterminated constructs end the affected token at EOF
/// rather than erroring: the analyzer must keep going on odd input.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                ch if ch.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                ch if ch.is_ascii_digit() => self.number(line),
                ch if ch.is_alphabetic() || ch == '_' => self.ident(line),
                ch => {
                    self.bump();
                    self.push(TokKind::Punct, ch.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        // Consume `//`; check for doc markers.
        self.bump();
        self.bump();
        let is_doc = matches!(self.peek(0), Some('/') | Some('!'))
            // `////…` is a plain comment, not a doc comment.
            && !(self.peek(0) == Some('/') && self.peek(1) == Some('/'));
        if is_doc {
            self.bump();
        }
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\n' {
                break;
            }
            text.push(ch);
            self.bump();
        }
        if is_doc {
            self.push(TokKind::Doc, text.trim().to_string(), line);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(ch) = self.bump() {
            match ch {
                '"' => break,
                '\\' => {
                    // Keep the escape verbatim; contents are opaque to rules.
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(ch),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'` prefixes. Returns
    /// `true` if a token was consumed, `false` if this is a plain ident
    /// starting with `r`/`b` (caller falls through to `ident`).
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let c0 = match self.peek(0) {
            Some(c) => c,
            None => return false,
        };
        // b"…"  /  b'…'
        if c0 == 'b' {
            match self.peek(1) {
                Some('"') => {
                    self.bump();
                    self.string(line);
                    return true;
                }
                Some('\'') => {
                    self.bump();
                    self.char_or_lifetime(line);
                    return true;
                }
                Some('r') => {
                    // br#"…"# — shift view by one and fall into raw handling.
                    if self.raw_at(2, line) {
                        return true;
                    }
                    return false;
                }
                _ => return false,
            }
        }
        // r"…" / r#"…"#  (but `r` may start an ident like `rules`).
        if c0 == 'r' {
            return self.raw_at(1, line);
        }
        false
    }

    /// If a raw string opens at offset `at` (counting `#`s then `"`),
    /// consume the whole literal and return true.
    fn raw_at(&mut self, at: usize, line: u32) -> bool {
        let mut hashes = 0usize;
        while self.peek(at + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(at + hashes) != Some('"') {
            return false;
        }
        // Consume prefix, hashes, and opening quote.
        for _ in 0..(at + hashes + 1) {
            self.bump();
        }
        let mut text = String::new();
        'outer: while let Some(ch) = self.bump() {
            if ch == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push('"');
                        // Not the closing delimiter; keep scanning. Any
                        // `#`s seen belong to the contents.
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(ch);
        }
        self.push(TokKind::Str, text, line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
                     // Lifetime: 'ident not followed by a closing quote.
        if let Some(c1) = self.peek(0) {
            if (c1.is_alphabetic() || c1 == '_') && self.peek(1) != Some('\'') {
                let mut name = String::new();
                while let Some(ch) = self.peek(0) {
                    if ch.is_alphanumeric() || ch == '_' {
                        name.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, name, line);
                return;
            }
        }
        // Char literal: escape or single char, then closing quote.
        let mut text = String::new();
        match self.bump() {
            Some('\\') => {
                text.push('\\');
                if let Some(e) = self.bump() {
                    text.push(e);
                    // \x7f / \u{…} escapes: consume until the quote.
                    while self.peek(0).is_some() && self.peek(0) != Some('\'') {
                        if let Some(ch) = self.bump() {
                            text.push(ch);
                        }
                    }
                }
            }
            Some(ch) => text.push(ch),
            None => {}
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            // Greedy: digits, underscores, radix/exponent letters, and the
            // `.` of float literals (but not `..` ranges or method calls).
            let float_dot = ch == '.'
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
                && !text.contains('.');
            if ch.is_ascii_alphanumeric() || ch == '_' || float_dot {
                text.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch.is_alphanumeric() || ch == '_' {
                text.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_dropped_doc_comments_kept() {
        let toks = kinds("// plain\n/// doc line\nfn x() {} /* block /* nested */ */");
        assert_eq!(toks[0], (TokKind::Doc, "doc line".to_string()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".to_string()));
        assert!(toks.iter().all(|(_, t)| !t.contains("plain")));
        assert!(toks.iter().all(|(_, t)| !t.contains("nested")));
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let toks = kinds(r#"let s = "HashMap.iter()"; let c = '"'; let l = 'a;"#);
        // The string contents stay inside one Str token.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("HashMap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "HashMap"));
        // '"' is a char literal, not an unterminated string.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "\""));
        // 'a is a lifetime.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#; rules.iter();"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quote \" inside")));
        // `rules` after the raw string still lexes as an ident.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "rules"));
    }

    #[test]
    fn escaped_quote_in_string_then_code() {
        // The seed lint's stripper mis-handled nested/escaped quotes; the
        // lexer must resynchronize so following code tokens are visible.
        let toks = kinds(r#"let s = "a\"b"; x.drain();"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "drain"));
    }

    #[test]
    fn numbers_and_floats() {
        let toks = kinds("let a = 1_000u64; let b = 2.5e3; let r = 0..4;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "1_000u64"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "2.5e3"));
        // `0..4` stays three tokens: 0, ., ., 4 — not a float.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "4"));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("fn a() {}\nfn b() {}\n");
        let b = toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b, Some(2));
    }
}
