//! Finding representation and the text / JSON renderers.

/// The rule families the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-order iteration and ambient time/randomness in sim code.
    Determinism,
    /// Credit-ledger mutators must assert Eq. 1 and stay in the policy layer.
    Conservation,
    /// Every `*Stats` field and fault site must be observable.
    Telemetry,
    /// Raw integer parameters where a unit newtype exists.
    Units,
}

impl Rule {
    /// Stable identifier used in output and `rule=` allowlist scopes.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Conservation => "conservation",
            Rule::Telemetry => "telemetry",
            Rule::Units => "units",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule family fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to suppress it if intentional).
    pub hint: String,
}

/// Analysis outcome: surviving findings plus suppression bookkeeping.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings not covered by the allowlist, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by allowlist entries.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (stale suppressions),
    /// rendered as `line N: <path> <pattern>`.
    pub stale_allows: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether the workspace is clean (no findings, no stale suppressions).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    hint: {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.message,
                f.hint
            ));
        }
        for s in &self.stale_allows {
            out.push_str(&format!("allowlist: stale entry ({s})\n"));
        }
        out.push_str(&format!(
            "analyze: {} file(s), {} finding(s), {} suppressed, {} stale allow(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed,
            self.stale_allows.len()
        ));
        out
    }

    /// Machine-readable report (`--format json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"hint\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                json_str(&f.hint)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"stale_allows\": [");
        for (i, s) in self.stale_allows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(s));
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"count\": {}\n}}\n",
            self.files_scanned,
            self.suppressed,
            self.findings.len()
        ));
        out
    }
}

/// Minimal JSON string escaping (the only JSON we emit is this report).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one() -> Analysis {
        Analysis {
            findings: vec![Finding {
                rule: Rule::Determinism,
                file: "crates/x/src/a.rs".into(),
                line: 7,
                message: "iteration over `m`".into(),
                hint: "use BTreeMap".into(),
            }],
            suppressed: 2,
            stale_allows: vec![],
            files_scanned: 10,
        }
    }

    #[test]
    fn text_mentions_rule_and_hint() {
        let t = one().to_text();
        assert!(t.contains("[determinism]"));
        assert!(t.contains("hint: use BTreeMap"));
        assert!(t.contains("1 finding(s), 2 suppressed"));
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut a = one();
        a.findings[0].message = "quote \" and\nnewline".into();
        let j = a.to_json();
        assert!(j.contains("\"rule\": \"determinism\""));
        assert!(j.contains("\\\" and\\nnewline"));
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"files_scanned\": 10"));
    }

    #[test]
    fn clean_analysis() {
        let a = Analysis::default();
        assert!(a.is_clean());
        assert!(!one().is_clean());
    }
}
