//! Item-level parser over the token stream.
//!
//! Recovers the shapes the rules need — structs with typed fields, enums
//! with doc-tagged variants, functions with receivers/params/body spans,
//! and the impl type each method belongs to — without building a full
//! expression AST. Bodies stay as token ranges; rules scan them with
//! local pattern matches.
//!
//! Test code is excluded structurally: items inside a `#[cfg(test)] mod`,
//! or carrying an attribute that mentions `test`, are marked and skipped
//! by every rule.

use crate::lexer::{Tok, TokKind};

/// A named struct field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type, as whitespace-joined tokens (e.g. `HashMap < FlowId , u64 >`).
    pub ty: String,
    /// Whether the field is `pub`.
    pub is_pub: bool,
    /// 1-based line of the field name.
    pub line: u32,
}

/// A struct definition (named-field or tuple).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Whether the struct is `pub`.
    pub is_pub: bool,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<FieldDef>,
    /// Tuple-struct element types (empty for named/unit structs).
    pub tuple_tys: Vec<String>,
    /// Structurally test-only (inside `#[cfg(test)]` or test-attributed).
    pub is_test: bool,
}

/// One enum variant with its doc comment lines.
#[derive(Debug, Clone)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant name.
    pub line: u32,
    /// Doc comment lines attached to the variant (trimmed).
    pub docs: Vec<String>,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// The variants in declaration order.
    pub variants: Vec<VariantDef>,
    /// Structurally test-only.
    pub is_test: bool,
}

/// The receiver form of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfKind {
    /// `&self`
    Ref,
    /// `&mut self`
    RefMut,
    /// `self` / `mut self`
    Owned,
}

/// A function or method definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn is `pub` (any visibility restriction counts as pub).
    pub is_pub: bool,
    /// Receiver, if this is a method.
    pub self_kind: Option<SelfKind>,
    /// Non-self parameters as `(name, type)`; pattern params keep the raw
    /// pattern text as the name.
    pub params: Vec<(String, String)>,
    /// Half-open token range `[start, end)` of the body, including braces.
    /// Empty range for bodyless trait-method declarations.
    pub body: (usize, usize),
    /// The `impl` type this method lives in, if any (e.g. `CreditManager`).
    pub impl_of: Option<String>,
    /// Attribute strings attached to the fn (tokens joined by spaces).
    pub attrs: Vec<String>,
    /// Structurally test-only.
    pub is_test: bool,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// The full token stream (rules index into this via `FnDef::body`).
    pub toks: Vec<Tok>,
    /// Struct definitions, in order.
    pub structs: Vec<StructDef>,
    /// Enum definitions, in order.
    pub enums: Vec<EnumDef>,
    /// Function definitions, in order (methods carry `impl_of`).
    pub fns: Vec<FnDef>,
}

/// Parse a lexed token stream into items.
pub fn parse(toks: Vec<Tok>) -> ParsedFile {
    let mut p = Parser {
        toks,
        pos: 0,
        out: ParsedFile::default(),
    };
    p.items(None, false);
    let toks = std::mem::take(&mut p.toks);
    let mut out = p.out;
    out.toks = toks;
    out
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    out: ParsedFile,
}

/// Attributes and doc comments pending attachment to the next item.
#[derive(Default, Clone)]
struct Pending {
    attrs: Vec<String>,
    docs: Vec<String>,
    is_pub: bool,
}

impl Pending {
    fn is_test(&self) -> bool {
        self.attrs.iter().any(|a| {
            a.split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|w| w == "test")
        })
    }
}

impl Parser {
    fn at(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn cur(&self) -> Option<&Tok> {
        self.at(self.pos)
    }

    /// Skip a balanced bracket group starting at `self.pos` (which must be
    /// on the opener). Leaves `pos` one past the matching closer.
    fn skip_group(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Skip a generic `<...>` group; `<` and `>` also appear as comparison
    /// operators, but in item position (after a name) they are generics.
    fn skip_generics(&mut self) {
        if self.cur().is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while let Some(t) = self.cur() {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                self.pos += 1;
            }
        }
    }

    /// Parse items until `end_pos` (exclusive) or EOF.
    fn items(&mut self, impl_of: Option<&str>, in_test: bool) {
        let mut pending = Pending::default();
        while let Some(t) = self.cur().cloned() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Doc, _) => {
                    pending.docs.push(t.text.clone());
                    self.pos += 1;
                }
                (TokKind::Punct, "#") => {
                    self.pos += 1;
                    // `#[...]` or `#![...]`
                    if self.cur().is_some_and(|t| t.is_punct('!')) {
                        self.pos += 1;
                    }
                    if self.cur().is_some_and(|t| t.is_punct('[')) {
                        let start = self.pos;
                        self.skip_group('[', ']');
                        let text: Vec<String> = self.toks[start..self.pos]
                            .iter()
                            .map(|t| t.text.clone())
                            .collect();
                        pending.attrs.push(text.join(" "));
                    }
                }
                (TokKind::Ident, "pub") => {
                    pending.is_pub = true;
                    self.pos += 1;
                    // `pub(crate)` etc.
                    if self.cur().is_some_and(|t| t.is_punct('(')) {
                        self.skip_group('(', ')');
                    }
                }
                (TokKind::Ident, "mod") => {
                    let test_mod = pending.is_test()
                        || pending
                            .attrs
                            .iter()
                            .any(|a| a.contains("cfg") && a.contains("test"));
                    pending = Pending::default();
                    self.pos += 1; // `mod`
                    self.pos += 1; // name
                    if self.cur().is_some_and(|t| t.is_punct('{')) {
                        let body_end = self.match_brace_end(self.pos);
                        self.pos += 1;
                        let saved_end = body_end;
                        self.items_until(saved_end, None, in_test || test_mod);
                        self.pos = saved_end;
                    } else if self.cur().is_some_and(|t| t.is_punct(';')) {
                        self.pos += 1;
                    }
                }
                (TokKind::Ident, "impl") => {
                    pending = Pending::default();
                    self.pos += 1;
                    self.skip_generics();
                    // Collect tokens up to `{` to find the self type; for
                    // `impl Trait for Type`, the type follows `for`.
                    let head_start = self.pos;
                    while let Some(t) = self.cur() {
                        if t.is_punct('{') {
                            break;
                        }
                        // `where` clauses can contain no braces before the
                        // body `{` in this codebase's style.
                        self.pos += 1;
                    }
                    let head: Vec<&Tok> = self.toks[head_start..self.pos].iter().collect();
                    let ty = impl_self_type(&head);
                    if self.cur().is_some_and(|t| t.is_punct('{')) {
                        let body_end = self.match_brace_end(self.pos);
                        self.pos += 1;
                        let ty2 = ty.clone();
                        self.items_until(body_end, ty2.as_deref(), in_test);
                        self.pos = body_end;
                    }
                }
                (TokKind::Ident, "struct") => {
                    let p = std::mem::take(&mut pending);
                    self.parse_struct(&p, in_test, t.line);
                }
                (TokKind::Ident, "enum") => {
                    let p = std::mem::take(&mut pending);
                    self.parse_enum(&p, in_test, t.line);
                }
                (TokKind::Ident, "fn") => {
                    let p = std::mem::take(&mut pending);
                    self.parse_fn(&p, impl_of, in_test, t.line);
                }
                (TokKind::Ident, "unsafe" | "async" | "const" | "extern" | "default") => {
                    // Fn qualifiers: keep pending attrs, move on.
                    self.pos += 1;
                }
                (TokKind::Punct, "{") => {
                    // Unrecognized braced construct (e.g. trait body handled
                    // via items_until, macro_rules): skip it whole.
                    let end = self.match_brace_end(self.pos);
                    self.pos = end;
                    pending = Pending::default();
                }
                _ => {
                    // `use`, `type`, `static`, `trait` headers, semicolons…
                    // For `trait X { … }` we want the method declarations
                    // too; treat trait bodies like impl bodies with no type.
                    if t.is_ident("trait") {
                        pending = Pending::default();
                        while let Some(t2) = self.cur() {
                            if t2.is_punct('{') || t2.is_punct(';') {
                                break;
                            }
                            self.pos += 1;
                        }
                        if self.cur().is_some_and(|t2| t2.is_punct('{')) {
                            let body_end = self.match_brace_end(self.pos);
                            self.pos += 1;
                            self.items_until(body_end, None, in_test);
                            self.pos = body_end;
                        }
                        continue;
                    }
                    self.pos += 1;
                    if t.is_punct(';') {
                        pending = Pending::default();
                    }
                }
            }
        }
    }

    /// Like `items` but bounded: stops when `pos` reaches `end`.
    fn items_until(&mut self, end: usize, impl_of: Option<&str>, in_test: bool) {
        // Temporarily truncate by running a scoped loop.
        let mut pending = Pending::default();
        while self.pos < end {
            let t = match self.cur() {
                Some(t) => t.clone(),
                None => break,
            };
            match (t.kind, t.text.as_str()) {
                (TokKind::Doc, _) => {
                    pending.docs.push(t.text.clone());
                    self.pos += 1;
                }
                (TokKind::Punct, "#") => {
                    self.pos += 1;
                    if self.cur().is_some_and(|t| t.is_punct('!')) {
                        self.pos += 1;
                    }
                    if self.cur().is_some_and(|t| t.is_punct('[')) {
                        let start = self.pos;
                        self.skip_group('[', ']');
                        let text: Vec<String> = self.toks[start..self.pos]
                            .iter()
                            .map(|t| t.text.clone())
                            .collect();
                        pending.attrs.push(text.join(" "));
                    }
                }
                (TokKind::Ident, "pub") => {
                    pending.is_pub = true;
                    self.pos += 1;
                    if self.cur().is_some_and(|t| t.is_punct('(')) {
                        self.skip_group('(', ')');
                    }
                }
                (TokKind::Ident, "mod") => {
                    let test_mod = pending.is_test()
                        || pending
                            .attrs
                            .iter()
                            .any(|a| a.contains("cfg") && a.contains("test"));
                    pending = Pending::default();
                    self.pos += 1;
                    self.pos += 1;
                    if self.cur().is_some_and(|t| t.is_punct('{')) {
                        let body_end = self.match_brace_end(self.pos);
                        self.pos += 1;
                        self.items_until(body_end, None, in_test || test_mod);
                        self.pos = body_end;
                    } else if self.cur().is_some_and(|t| t.is_punct(';')) {
                        self.pos += 1;
                    }
                }
                (TokKind::Ident, "impl") => {
                    pending = Pending::default();
                    self.pos += 1;
                    self.skip_generics();
                    let head_start = self.pos;
                    while self.pos < end {
                        if self.cur().is_none_or(|t| t.is_punct('{')) {
                            break;
                        }
                        self.pos += 1;
                    }
                    let head: Vec<&Tok> = self.toks[head_start..self.pos].iter().collect();
                    let ty = impl_self_type(&head);
                    if self.cur().is_some_and(|t| t.is_punct('{')) {
                        let body_end = self.match_brace_end(self.pos);
                        self.pos += 1;
                        self.items_until(body_end, ty.as_deref(), in_test);
                        self.pos = body_end;
                    }
                }
                (TokKind::Ident, "struct") => {
                    let p = std::mem::take(&mut pending);
                    self.parse_struct(&p, in_test, t.line);
                }
                (TokKind::Ident, "enum") => {
                    let p = std::mem::take(&mut pending);
                    self.parse_enum(&p, in_test, t.line);
                }
                (TokKind::Ident, "fn") => {
                    let p = std::mem::take(&mut pending);
                    self.parse_fn(&p, impl_of, in_test, t.line);
                }
                (TokKind::Ident, "unsafe" | "async" | "const" | "extern" | "default") => {
                    self.pos += 1;
                }
                (TokKind::Ident, "trait") => {
                    pending = Pending::default();
                    while self.pos < end {
                        if self
                            .cur()
                            .is_none_or(|t2| t2.is_punct('{') || t2.is_punct(';'))
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.cur().is_some_and(|t2| t2.is_punct('{')) {
                        let body_end = self.match_brace_end(self.pos);
                        self.pos += 1;
                        self.items_until(body_end, None, in_test);
                        self.pos = body_end;
                    }
                }
                (TokKind::Punct, "{") => {
                    let e = self.match_brace_end(self.pos);
                    self.pos = e;
                    pending = Pending::default();
                }
                _ => {
                    self.pos += 1;
                    if t.is_punct(';') {
                        pending = Pending::default();
                    }
                }
            }
        }
    }

    /// Index one past the `}` matching the `{` at `open`.
    fn match_brace_end(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while let Some(t) = self.at(i) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.toks.len()
    }

    fn parse_struct(&mut self, pending: &Pending, in_test: bool, line: u32) {
        self.pos += 1; // `struct`
        let name = match self.cur() {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => return,
        };
        self.pos += 1;
        self.skip_generics();
        let mut def = StructDef {
            name,
            line,
            is_pub: pending.is_pub,
            fields: Vec::new(),
            tuple_tys: Vec::new(),
            is_test: in_test || pending.is_test(),
        };
        // `where` clause before the body.
        while self
            .cur()
            .is_some_and(|t| !(t.is_punct('{') || t.is_punct('(') || t.is_punct(';')))
        {
            self.pos += 1;
        }
        match self.cur() {
            Some(t) if t.is_punct('{') => {
                let end = self.match_brace_end(self.pos) - 1; // index of `}`
                self.pos += 1;
                self.parse_named_fields(end, &mut def);
                self.pos = end + 1;
            }
            Some(t) if t.is_punct('(') => {
                let start = self.pos;
                self.skip_group('(', ')');
                def.tuple_tys = split_top_level(&self.toks[start + 1..self.pos - 1], ',')
                    .into_iter()
                    .map(|chunk| join_toks(&chunk))
                    .collect();
                if self.cur().is_some_and(|t| t.is_punct(';')) {
                    self.pos += 1;
                }
            }
            Some(t) if t.is_punct(';') => {
                self.pos += 1;
            }
            _ => {}
        }
        self.out.structs.push(def);
    }

    fn parse_named_fields(&mut self, end: usize, def: &mut StructDef) {
        let chunks = split_top_level(&self.toks[self.pos..end], ',');
        for chunk in chunks {
            // Strip attributes/docs/visibility; the field is `name : ty`.
            let mut i = 0usize;
            let mut is_pub = false;
            while i < chunk.len() {
                let t = &chunk[i];
                if t.kind == TokKind::Doc {
                    i += 1;
                } else if t.is_punct('#') {
                    // Skip `#[...]`.
                    i += 1;
                    if chunk.get(i).is_some_and(|t| t.is_punct('[')) {
                        let mut depth = 0i32;
                        while i < chunk.len() {
                            if chunk[i].is_punct('[') {
                                depth += 1;
                            } else if chunk[i].is_punct(']') {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                } else if t.is_ident("pub") {
                    is_pub = true;
                    i += 1;
                    if chunk.get(i).is_some_and(|t| t.is_punct('(')) {
                        let mut depth = 0i32;
                        while i < chunk.len() {
                            if chunk[i].is_punct('(') {
                                depth += 1;
                            } else if chunk[i].is_punct(')') {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                } else {
                    break;
                }
            }
            let (name, line) = match chunk.get(i) {
                Some(t) if t.kind == TokKind::Ident => (t.text.clone(), t.line),
                _ => continue,
            };
            if !chunk.get(i + 1).is_some_and(|t| t.is_punct(':')) {
                continue;
            }
            let ty_toks: Vec<Tok> = chunk[i + 2..].to_vec();
            def.fields.push(FieldDef {
                name,
                ty: join_toks(&ty_toks),
                is_pub,
                line,
            });
        }
    }

    fn parse_enum(&mut self, pending: &Pending, in_test: bool, line: u32) {
        self.pos += 1; // `enum`
        let name = match self.cur() {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => return,
        };
        self.pos += 1;
        self.skip_generics();
        while self.cur().is_some_and(|t| !t.is_punct('{')) {
            self.pos += 1;
        }
        let mut def = EnumDef {
            name,
            line,
            variants: Vec::new(),
            is_test: in_test || pending.is_test(),
        };
        if self.cur().is_some_and(|t| t.is_punct('{')) {
            let end = self.match_brace_end(self.pos) - 1;
            self.pos += 1;
            for chunk in split_top_level(&self.toks[self.pos..end], ',') {
                let mut docs = Vec::new();
                let mut i = 0usize;
                while i < chunk.len() {
                    let t = &chunk[i];
                    if t.kind == TokKind::Doc {
                        docs.push(t.text.clone());
                        i += 1;
                    } else if t.is_punct('#') {
                        let mut depth = 0i32;
                        i += 1;
                        while i < chunk.len() {
                            if chunk[i].is_punct('[') {
                                depth += 1;
                            } else if chunk[i].is_punct(']') {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                if let Some(t) = chunk.get(i) {
                    if t.kind == TokKind::Ident {
                        def.variants.push(VariantDef {
                            name: t.text.clone(),
                            line: t.line,
                            docs,
                        });
                    }
                }
            }
            self.pos = end + 1;
        }
        self.out.enums.push(def);
    }

    fn parse_fn(&mut self, pending: &Pending, impl_of: Option<&str>, in_test: bool, line: u32) {
        self.pos += 1; // `fn`
        let name = match self.cur() {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => return,
        };
        self.pos += 1;
        self.skip_generics();
        if !self.cur().is_some_and(|t| t.is_punct('(')) {
            return;
        }
        let params_start = self.pos;
        self.skip_group('(', ')');
        let param_toks = self.toks[params_start + 1..self.pos - 1].to_vec();
        let (self_kind, params) = parse_params(&param_toks);

        // Skip return type / where clause up to `{` or `;`.
        while self
            .cur()
            .is_some_and(|t| !(t.is_punct('{') || t.is_punct(';')))
        {
            self.pos += 1;
        }
        let body = if self.cur().is_some_and(|t| t.is_punct('{')) {
            let end = self.match_brace_end(self.pos);
            let span = (self.pos, end);
            self.pos = end;
            span
        } else {
            self.pos += 1; // `;`
            (0, 0)
        };
        self.out.fns.push(FnDef {
            name,
            line,
            is_pub: pending.is_pub,
            self_kind,
            params,
            body,
            impl_of: impl_of.map(|s| s.to_string()),
            attrs: pending.attrs.clone(),
            is_test: in_test || pending.is_test(),
        });
    }
}

/// Extract the self type name from an `impl` header token list
/// (everything between `impl<…>` and `{`).
fn impl_self_type(head: &[&Tok]) -> Option<String> {
    // `impl Trait for Type<…>` → ident after `for`; else first ident.
    if let Some(for_pos) = head.iter().position(|t| t.is_ident("for")) {
        return head[for_pos + 1..]
            .iter()
            .find(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
    }
    // Take the *last* ident of the leading path before generics: for
    // `crate::credit::CreditManager` we want `CreditManager`.
    let mut last = None;
    for t in head {
        if t.kind == TokKind::Ident {
            last = Some(t.text.clone());
        } else if t.is_punct(':') {
            continue;
        } else {
            break;
        }
    }
    last
}

/// Split a token slice on a top-level punctuation separator (depth-aware
/// for all bracket kinds including generics).
fn split_top_level(toks: &[Tok], sep: char) -> Vec<Vec<Tok>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut round = 0i32;
    let mut square = 0i32;
    let mut curly = 0i32;
    let mut angle = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => round += 1,
                ")" => round -= 1,
                "[" => square += 1,
                "]" => square -= 1,
                "{" => curly += 1,
                "}" => curly -= 1,
                "<" => {
                    // Heuristic: `<` after ident/`>`/`:` opens generics.
                    let prev = if i == 0 { None } else { toks.get(i - 1) };
                    if prev.is_some_and(|p| {
                        p.kind == TokKind::Ident || p.is_punct('>') || p.is_punct(':')
                    }) {
                        angle += 1;
                    }
                }
                ">" if angle > 0 => {
                    // `->` is not a generic closer.
                    let prev = if i == 0 { None } else { toks.get(i - 1) };
                    if !prev.is_some_and(|p| p.is_punct('-')) {
                        angle -= 1;
                    }
                }
                _ => {}
            }
            if t.text.len() == 1
                && t.text.starts_with(sep)
                && round == 0
                && square == 0
                && curly == 0
                && angle == 0
            {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Join token texts with single spaces (type rendering).
fn join_toks(toks: &[Tok]) -> String {
    let texts: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind != TokKind::Doc)
        .map(|t| t.text.as_str())
        .collect();
    texts.join(" ")
}

/// Parse a fn parameter token list into (receiver, named params).
fn parse_params(toks: &[Tok]) -> (Option<SelfKind>, Vec<(String, String)>) {
    let mut self_kind = None;
    let mut params = Vec::new();
    for (idx, chunk) in split_top_level(toks, ',').into_iter().enumerate() {
        let idents: Vec<&str> = chunk
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        if idx == 0 && idents.first() == Some(&"self")
            || idx == 0 && idents.first() == Some(&"mut") && idents.get(1) == Some(&"self")
        {
            let has_ref = chunk.iter().any(|t| t.is_punct('&'));
            let has_mut = idents.contains(&"mut");
            self_kind = Some(match (has_ref, has_mut) {
                (true, true) => SelfKind::RefMut,
                (true, false) => SelfKind::Ref,
                (false, _) => SelfKind::Owned,
            });
            continue;
        }
        // `name : Type` (skip `mut` / `_` patterns gracefully).
        let colon = chunk.iter().position(|t| t.is_punct(':'));
        if let Some(c) = colon {
            let name = chunk[..c]
                .iter()
                .filter(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                .map(|t| t.text.clone())
                .collect::<Vec<_>>()
                .join(" ");
            let ty = join_toks(&chunk[c + 1..]);
            params.push((name, ty));
        }
    }
    (self_kind, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(lex(src))
    }

    #[test]
    fn struct_fields_with_types() {
        let pf = parse_src(
            "pub struct Foo { pub a: u64, b: HashMap<FlowId, u64>, #[serde(skip)] c: Vec<u8> }",
        );
        let s = &pf.structs[0];
        assert_eq!(s.name, "Foo");
        assert!(s.is_pub);
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].name, "a");
        assert!(s.fields[0].is_pub);
        assert!(s.fields[1].ty.contains("HashMap"));
        assert_eq!(s.fields[2].name, "c");
    }

    #[test]
    fn tuple_struct_newtype() {
        let pf = parse_src("pub struct QueueId(pub u32);");
        let s = &pf.structs[0];
        assert_eq!(s.name, "QueueId");
        assert!(s.fields.is_empty());
        assert_eq!(s.tuple_tys.len(), 1);
        assert!(s.tuple_tys[0].contains("u32"));
    }

    #[test]
    fn enum_variant_docs_survive() {
        let pf = parse_src(
            "pub enum FaultSite {\n  /// Drop it.\n  /// recovery: ceio_x_total\n  DropOne,\n  Other,\n}",
        );
        let e = &pf.enums[0];
        assert_eq!(e.variants.len(), 2);
        assert_eq!(e.variants[0].name, "DropOne");
        assert!(e.variants[0].docs.iter().any(|d| d.contains("recovery:")));
        assert!(e.variants[1].docs.is_empty());
    }

    #[test]
    fn methods_carry_impl_type_and_receiver() {
        let pf = parse_src(
            "impl CreditManager { pub fn grant(&mut self, f: FlowId, n: u64) -> bool { true } \
             fn peek(&self) {} }",
        );
        let grant = pf.fns.iter().find(|f| f.name == "grant").unwrap();
        assert_eq!(grant.impl_of.as_deref(), Some("CreditManager"));
        assert_eq!(grant.self_kind, Some(SelfKind::RefMut));
        assert!(grant.is_pub);
        assert_eq!(grant.params.len(), 2);
        assert_eq!(grant.params[1], ("n".to_string(), "u64".to_string()));
        let peek = pf.fns.iter().find(|f| f.name == "peek").unwrap();
        assert_eq!(peek.self_kind, Some(SelfKind::Ref));
        assert!(!peek.is_pub);
    }

    #[test]
    fn generic_impl_and_trait_impl_types() {
        let pf = parse_src(
            "impl<K: Ord + Clone> RmtEngine<K> { fn a(&self) {} }\n\
             impl Default for CreditManager { fn default() -> Self { x } }",
        );
        assert_eq!(pf.fns[0].impl_of.as_deref(), Some("RmtEngine"));
        assert_eq!(pf.fns[1].impl_of.as_deref(), Some("CreditManager"));
    }

    #[test]
    fn cfg_test_mod_marks_items() {
        let pf = parse_src(
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} struct Fake { a: u64 } }",
        );
        assert!(!pf.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(pf.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(pf.structs[0].is_test);
    }

    #[test]
    fn body_span_covers_braces() {
        let pf = parse_src("fn f() { let x = 1; if x > 0 { y(); } }");
        let f = &pf.fns[0];
        let (a, b) = f.body;
        assert!(pf.toks[a].is_punct('{'));
        assert!(pf.toks[b - 1].is_punct('}'));
        assert!(pf.toks[a..b].iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn trait_bodies_yield_method_decls() {
        let pf =
            parse_src("pub trait IoPolicy { fn fill_metrics(&self, b: &mut B) {} fn nop(&self); }");
        assert_eq!(pf.fns.len(), 2);
        assert_eq!(pf.fns[1].body, (0, 0));
    }
}
