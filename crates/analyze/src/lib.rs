//! `ceio-analyze` — an AST-level static analyzer for the CEIO workspace.
//!
//! The line-oriented `cargo xtask lint` catches token-ban violations; this
//! crate goes one level deeper. It lexes and item-parses every library
//! source (no external parser — the build is offline), then enforces four
//! semantic rule families that encode the simulator's correctness
//! contracts:
//!
//! 1. **determinism** — simulation-facing crates must not iterate
//!    hash-order collections or read ambient time/entropy
//!    ([`rules::determinism`]);
//! 2. **conservation** — credit-ledger mutators must assert Eq. 1 and
//!    stay inside the policy layer ([`rules::conservation`]);
//! 3. **telemetry** — every `*Stats` field must be exported and every
//!    chaos fault site must name its recovery counter
//!    ([`rules::telemetry`]);
//! 4. **units** — public `ceio-core` APIs must use unit newtypes instead
//!    of raw integers ([`rules::units`]).
//!
//! Findings can be suppressed via `crates/xtask/analyze-allow.txt` using
//! the shared allowlist grammar ([`allow`]); unused suppressions are
//! reported as stale. Run it as `cargo xtask analyze [--format json]`.

pub mod allow;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod source;

use std::io;
use std::path::Path;

pub use allow::AllowEntry;
pub use report::{Analysis, Finding, Rule};
pub use rules::Unit;
pub use source::SourceFile;

/// Relative path (from the workspace root) of the analyzer allow file.
pub const ALLOW_FILE: &str = "crates/xtask/analyze-allow.txt";

/// Crates never scanned: the tools that *describe* the checks would
/// otherwise trip over their own pattern tables.
pub const TOOL_CRATES: &[&str] = &["xtask", "analyze"];

/// Analyze an explicit set of sources against an allowlist. This is the
/// seam the self-test fixtures drive.
pub fn analyze_sources(files: Vec<SourceFile>, allow_entries: &[AllowEntry]) -> Analysis {
    let units: Vec<Unit> = files
        .into_iter()
        .map(|src| {
            let pf = parse::parse(lexer::lex(&src.text));
            Unit { src, pf }
        })
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rules::determinism::check(&units));
    raw.extend(rules::conservation::check(&units));
    raw.extend(rules::telemetry::check(&units));
    raw.extend(rules::units::check(&units));

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let line_text = units
            .iter()
            .find(|u| u.src.rel == f.file)
            .map(|u| u.src.line_text(f.line))
            .unwrap_or("");
        if allow::is_allowed(
            allow_entries,
            Some(f.rule.id()),
            &f.file,
            &[line_text, &f.message],
        ) {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });

    Analysis {
        files_scanned: units.len(),
        findings,
        suppressed,
        stale_allows: allow::stale_entries(allow_entries)
            .into_iter()
            .map(|e| {
                format!(
                    "line {}: {} {}{}",
                    e.file_line,
                    e.path,
                    e.pattern,
                    e.rule
                        .as_deref()
                        .map(|r| format!(" [rule={r}]"))
                        .unwrap_or_default()
                )
            })
            .collect(),
    }
}

/// Analyze the whole workspace rooted at `root`, using the checked-in
/// allow file.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let files = source::library_sources(root, TOOL_CRATES)?;
    let allow_entries = allow::load_allowlist(&root.join(ALLOW_FILE));
    Ok(analyze_sources(files, &allow_entries))
}
