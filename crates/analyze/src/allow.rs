//! Shared allowlist grammar for `xtask lint` and `ceio-analyze`.
//!
//! Each non-comment line of an allow file is one entry:
//!
//! ```text
//! [rule=<rule-id>] <path-suffix> <pattern…>
//! ```
//!
//! * `rule=<id>` (optional) scopes the entry to one analyzer rule family
//!   (`determinism`, `conservation`, `telemetry`, `units`). Without it the
//!   entry applies to any rule — which is how the legacy `lint-allow.txt`
//!   entries (plain `path pattern`) keep working unchanged.
//! * `<path-suffix>` matches a workspace-relative file path by suffix.
//! * `<pattern…>` (the rest of the line) must appear as a substring of
//!   either the flagged source line or the finding message.
//!
//! Entries record whether they matched anything; unused entries are
//! reported as stale so suppressions can't outlive the code they excuse.

use std::cell::Cell;
use std::fs;
use std::path::Path;

/// One allowlist entry.
#[derive(Debug)]
pub struct AllowEntry {
    /// Rule family this entry is scoped to (`None` = any rule).
    pub rule: Option<String>,
    /// Path suffix the entry applies to.
    pub path: String,
    /// Substring that must appear in the flagged line or message.
    pub pattern: String,
    /// Set when the entry suppresses at least one finding.
    pub used: Cell<bool>,
    /// 1-based line in the allow file (for stale-entry reporting).
    pub file_line: u32,
}

/// Load an allow file; a missing file is an empty list.
pub fn load_allowlist(path: &Path) -> Vec<AllowEntry> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    parse_allowlist(&text)
}

/// Parse allow-file text (exposed for tests).
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut rest = line;
        let mut rule = None;
        if let Some(spec) = rest.strip_prefix("rule=") {
            let Some((id, tail)) = spec.split_once(char::is_whitespace) else {
                continue;
            };
            rule = Some(id.to_string());
            rest = tail.trim_start();
        }
        let Some((path, pattern)) = rest.split_once(char::is_whitespace) else {
            continue;
        };
        out.push(AllowEntry {
            rule,
            path: path.to_string(),
            pattern: pattern.trim().to_string(),
            used: Cell::new(false),
            file_line: idx as u32 + 1,
        });
    }
    out
}

/// Whether a finding is suppressed. `haystacks` are the candidate texts a
/// pattern may match (typically the source line and the finding message).
pub fn is_allowed(
    entries: &[AllowEntry],
    rule: Option<&str>,
    rel_path: &str,
    haystacks: &[&str],
) -> bool {
    let mut hit = false;
    for e in entries {
        if let (Some(er), Some(fr)) = (e.rule.as_deref(), rule) {
            if er != fr {
                continue;
            }
        } else if e.rule.is_some() && rule.is_none() {
            continue;
        }
        if !rel_path.ends_with(e.path.as_str()) {
            continue;
        }
        if haystacks.iter().any(|h| h.contains(e.pattern.as_str())) {
            e.used.set(true);
            hit = true;
        }
    }
    hit
}

/// Entries that never matched anything (stale suppressions).
pub fn stale_entries(entries: &[AllowEntry]) -> Vec<&AllowEntry> {
    entries.iter().filter(|e| !e.used.get()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_two_field_entries_parse() {
        let list = parse_allowlist("# comment\ncrates/core/src/lib.rs .unwrap(\n");
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].rule, None);
        assert_eq!(list[0].path, "crates/core/src/lib.rs");
        assert_eq!(list[0].pattern, ".unwrap(");
    }

    #[test]
    fn rule_scoped_entries_parse_and_scope() {
        let list = parse_allowlist("rule=determinism crates/nic/src/ring.rs HashMap iteration\n");
        assert_eq!(list[0].rule.as_deref(), Some("determinism"));
        assert!(is_allowed(
            &list,
            Some("determinism"),
            "crates/nic/src/ring.rs",
            &["HashMap iteration over `rules`"],
        ));
        assert!(!is_allowed(
            &list,
            Some("telemetry"),
            "crates/nic/src/ring.rs",
            &["HashMap iteration over `rules`"],
        ));
    }

    #[test]
    fn unscoped_entry_matches_any_rule_and_marks_used() {
        let list = parse_allowlist("crates/x/src/a.rs some pattern text\n");
        assert!(is_allowed(
            &list,
            Some("units"),
            "crates/x/src/a.rs",
            &["... some pattern text ..."],
        ));
        assert!(list[0].used.get());
        assert!(stale_entries(&list).is_empty());
    }

    #[test]
    fn path_suffix_must_match() {
        let list = parse_allowlist("crates/x/src/a.rs pat\n");
        assert!(!is_allowed(&list, None, "crates/y/src/a2.rs", &["pat"]));
        assert_eq!(stale_entries(&list).len(), 1);
    }
}
