//! Workspace source discovery, shared by `cargo xtask lint` (the
//! line-oriented checks) and `cargo xtask analyze` (this crate's rules),
//! so the two tools can never disagree about what "the workspace" is.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, TokKind};

/// One discovered source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The crate directory name under `crates/` (e.g. `core`, `host`),
    /// or `"."` for a root `src/` tree.
    pub crate_name: String,
    /// File contents.
    pub text: String,
}

impl SourceFile {
    /// The raw text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
    }
}

/// Library source trees: the root `src/` (if any) plus every
/// `crates/*/src`, excluding the named tool crates (they describe the
/// checks, so their own pattern tables would self-trigger).
pub fn library_sources(root: &Path, exclude_crates: &[&str]) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_tree(root, &root_src, ".", &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            if exclude_crates.contains(&name.as_str()) {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_tree(root, &src, &name, &mut out)?;
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect_tree(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_tree(root, &path, crate_name, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path,
                rel,
                crate_name: crate_name.to_string(),
                text,
            });
        }
    }
    Ok(())
}

/// Rewrite `text` with comment and string/char-literal contents removed,
/// preserving line structure, for line-oriented pattern checks.
///
/// Built on the real lexer, so — unlike the seed's character scanner — it
/// handles escaped quotes (`"a\"b"`), char literals that *are* quotes
/// (`'"'`), lifetimes, and raw strings (`r#"…"#`) without ever leaking a
/// comment or string body into the "code" view, or (worse) swallowing the
/// code that follows one.
pub fn strip_comments_and_strings(text: &str) -> String {
    let toks = lexer::lex(text);
    let total_lines = text.lines().count().max(1);
    let mut lines: Vec<String> = vec![String::new(); total_lines];
    for t in &toks {
        let idx = (t.line.saturating_sub(1) as usize).min(total_lines - 1);
        let line = &mut lines[idx];
        // Separate adjacent word-like tokens so `pub fn` doesn't fuse into
        // `pubfn`, without breaking punctuation-adjacent patterns like
        // `.unwrap(`.
        let needs_gap = line
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        match t.kind {
            TokKind::Doc => {}
            // Keep the delimiters so ".expect(\"...\")" still shows a call
            // with *some* argument, but drop the contents.
            TokKind::Str => line.push_str("\"\""),
            TokKind::Char => line.push_str("' '"),
            TokKind::Lifetime => {
                if needs_gap {
                    line.push(' ');
                }
                line.push('\'');
                line.push_str(&t.text);
            }
            TokKind::Ident | TokKind::Num => {
                if needs_gap {
                    line.push(' ');
                }
                line.push_str(&t.text);
            }
            TokKind::Punct => line.push_str(&t.text),
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_strings_but_keeps_code() {
        let out = strip_comments_and_strings(r#"let x = map.get("unwrap()"); x.unwrap();"#);
        assert!(out.contains(".unwrap()"));
        // Only the real call survives, not the string contents.
        assert_eq!(out.matches("unwrap").count(), 1);
    }

    #[test]
    fn stripper_survives_escaped_and_char_quotes() {
        let out = strip_comments_and_strings(r#"let a = "x\"y"; let c = '"'; real_code();"#);
        assert!(out.contains("real_code"));
        assert!(!out.contains('x'));
    }

    #[test]
    fn stripper_preserves_line_numbers() {
        let out = strip_comments_and_strings("a();\n// comment\nb();\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("a()"));
        assert!(lines[1].trim().is_empty());
        assert!(lines[2].contains("b()"));
    }

    #[test]
    fn stripper_handles_raw_strings() {
        let out = strip_comments_and_strings(r##"let s = r#"panic!("inner")"#; ok();"##);
        assert!(out.contains("ok()"));
        assert!(!out.contains("panic"));
    }
}
