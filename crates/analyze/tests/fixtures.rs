//! Self-tests: each rule family must fire on its known-bad fixture and
//! stay quiet on the adjacent known-good constructs. These pin the
//! analyzer's behavior so a rule that silently stops firing fails CI.

use std::path::PathBuf;

use ceio_analyze::{allow, analyze_sources, Rule, SourceFile};

fn src(rel: &str, crate_name: &str, text: &str) -> SourceFile {
    SourceFile {
        path: PathBuf::from(rel),
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        text: text.to_string(),
    }
}

const DETERMINISM: &str = include_str!("../fixtures/determinism_bad.rs");
const CONSERVATION: &str = include_str!("../fixtures/conservation_bad.rs");
const CONSERVATION_CALLER: &str = include_str!("../fixtures/conservation_caller_bad.rs");
const TELEMETRY: &str = include_str!("../fixtures/telemetry_bad.rs");
const UNITS: &str = include_str!("../fixtures/units_bad.rs");
const SCOPE_BAD: &str = include_str!("../fixtures/scope_bad.rs");

#[test]
fn determinism_fires_on_known_bad() {
    let a = analyze_sources(
        vec![src(
            "crates/host/src/determinism_bad.rs",
            "host",
            DETERMINISM,
        )],
        &[],
    );
    let msgs: Vec<&str> = a.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        a.findings.iter().all(|f| f.rule == Rule::Determinism),
        "{msgs:?}"
    );
    // values() on field, for-loop on field, keys() on local, Instant import,
    // Instant::now() — and nothing else (the ok/test items stay quiet).
    assert_eq!(a.findings.len(), 5, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("flows.values()")));
    assert!(msgs.iter().any(|m| m.contains("for … in flows")));
    assert!(msgs.iter().any(|m| m.contains("m.keys()")));
    assert_eq!(
        msgs.iter().filter(|m| m.contains("`Instant`")).count(),
        2,
        "{msgs:?}"
    );
}

#[test]
fn determinism_scope_excludes_non_sim_crates() {
    // The same file in a non-simulation crate (bench) is out of scope.
    let a = analyze_sources(
        vec![src(
            "crates/bench/src/determinism_bad.rs",
            "bench",
            DETERMINISM,
        )],
        &[],
    );
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn conservation_fires_on_unchecked_mutator_and_layer_violation() {
    let a = analyze_sources(
        vec![
            src("crates/core/src/conservation_bad.rs", "core", CONSERVATION),
            src(
                "crates/host/src/conservation_caller_bad.rs",
                "host",
                CONSERVATION_CALLER,
            ),
        ],
        &[],
    );
    let msgs: Vec<&str> = a.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        a.findings.iter().all(|f| f.rule == Rule::Conservation),
        "{msgs:?}"
    );
    assert_eq!(a.findings.len(), 2, "{msgs:?}");
    // The unchecked mutator, in core…
    assert!(msgs
        .iter()
        .any(|m| m.contains("CreditManager::sneak_inject")));
    // …and the direct call from outside the policy layer.
    assert!(msgs
        .iter()
        .any(|m| m.contains(".try_consume(…)") && m.contains("outside the policy")));
    // The checked, delegating, constructor, and test-gated methods pass.
    assert!(!msgs.iter().any(|m| m.contains("consume_one")));
    assert!(!msgs.iter().any(|m| m.contains("leak_credit_for_tests")));
}

#[test]
fn telemetry_fires_on_unexported_field_and_untagged_fault_sites() {
    let a = analyze_sources(
        vec![src("crates/nic/src/telemetry_bad.rs", "nic", TELEMETRY)],
        &[],
    );
    let msgs: Vec<&str> = a.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        a.findings.iter().all(|f| f.rule == Rule::Telemetry),
        "{msgs:?}"
    );
    assert_eq!(a.findings.len(), 3, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("WidgetStats.stalls")));
    assert!(!msgs.iter().any(|m| m.contains("WidgetStats.spins")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("FaultSite::Untagged") && m.contains("no `/// recovery:")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("ceio_phantom_total") && m.contains("not exported")));
    assert!(!msgs.iter().any(|m| m.contains("FaultSite::Tagged ")));
}

#[test]
fn telemetry_fires_on_registered_but_unsampled_scope_series() {
    let a = analyze_sources(
        vec![src("crates/host/src/scope_bad.rs", "host", SCOPE_BAD)],
        &[],
    );
    let msgs: Vec<&str> = a.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        a.findings.iter().all(|f| f.rule == Rule::Telemetry),
        "{msgs:?}"
    );
    // Exactly the two forgotten keys — the sampled pair and the
    // test-gated registration stay quiet.
    assert_eq!(a.findings.len(), 2, "{msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("`forgotten_gauge`") && m.contains("never recorded")));
    assert!(msgs.iter().any(|m| m.contains("`forgotten_per_queue`")));
    assert!(!msgs.iter().any(|m| m.contains("sampled_gauge")));
    assert!(!msgs.iter().any(|m| m.contains("sampled_per_queue")));
    assert!(!msgs.iter().any(|m| m.contains("test_only_gauge")));

    // Out of scope: the same file in a non-instrumented crate.
    let a2 = analyze_sources(
        vec![src("crates/bench/src/scope_bad.rs", "bench", SCOPE_BAD)],
        &[],
    );
    assert!(a2.findings.is_empty(), "{:?}", a2.findings);
}

#[test]
fn units_fires_on_raw_integer_unit_params_in_core() {
    let a = analyze_sources(
        vec![src("crates/core/src/units_bad.rs", "core", UNITS)],
        &[],
    );
    let msgs: Vec<&str> = a.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(a.findings.iter().all(|f| f.rule == Rule::Units), "{msgs:?}");
    assert_eq!(a.findings.len(), 2, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`deadline_ns`")));
    assert!(msgs.iter().any(|m| m.contains("`dest_queue`")));
    // Counts, private fns, and unarmed byte patterns stay quiet.
    assert!(!msgs.iter().any(|m| m.contains("num_queues")));
    assert!(!msgs.iter().any(|m| m.contains("delay_ns")));
    assert!(!msgs.iter().any(|m| m.contains("rx_bytes")));

    // Out of scope: the same file outside crates/core.
    let a2 = analyze_sources(
        vec![src("crates/apps/src/units_bad.rs", "apps", UNITS)],
        &[],
    );
    assert!(a2.findings.is_empty(), "{:?}", a2.findings);
}

#[test]
fn allowlist_suppresses_and_reports_stale() {
    let entries = allow::parse_allowlist(
        "rule=determinism crates/host/src/determinism_bad.rs hash-order iteration\n\
         rule=determinism crates/host/src/determinism_bad.rs ambient nondeterminism\n\
         rule=units crates/host/src/determinism_bad.rs never matches anything\n",
    );
    let a = analyze_sources(
        vec![src(
            "crates/host/src/determinism_bad.rs",
            "host",
            DETERMINISM,
        )],
        &entries,
    );
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert_eq!(a.suppressed, 5);
    // The unmatched entry is reported stale.
    assert_eq!(a.stale_allows.len(), 1, "{:?}", a.stale_allows);
    assert!(a.stale_allows[0].contains("never matches anything"));
    assert!(!a.is_clean());
}

#[test]
fn json_report_carries_findings() {
    let a = analyze_sources(
        vec![src("crates/core/src/units_bad.rs", "core", UNITS)],
        &[],
    );
    let j = a.to_json();
    assert!(j.contains("\"rule\": \"units\""));
    assert!(j.contains("\"count\": 2"));
    assert!(j.contains("deadline_ns"));
}
