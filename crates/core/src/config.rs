//! CEIO configuration and ablation switches.

use ceio_sim::Duration;
use serde::{Deserialize, Serialize};

/// Configuration of the CEIO runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CeioConfig {
    /// Total credits, `C_total = Size_LLC / Size_buf` (Eq. 1), where
    /// `Size_LLC` is the *DDIO partition* of the selected LLC model: the
    /// raw byte slice for the pool, or `llc_total * ddio_ways/total_ways`
    /// for the way-partitioned model — so changing `ddio_ways` re-derives
    /// the credit pool (6 of 12 ways at 12 MiB and 2 KB buffers = 3072).
    /// Use `HostConfig::credit_total()` unless deliberately mis-sizing.
    pub credit_total: u64,
    /// Maximum slow-path packets fetched per driver poll (one DMA read).
    pub drain_batch: u32,
    /// `async_recv()` semantics for slow-path fetches (§4.2). `false`
    /// gives blocking `recv()` semantics — the Table 4 "w/o optimization"
    /// ablation.
    pub async_fetch: bool,
    /// Active-flow credit reallocation (§4.1 Q3). `false` disables
    /// recycling/reallocation — the other half of the Table 4 ablation.
    pub reallocate: bool,
    /// Controller polling period on the NIC ARM cores.
    pub controller_interval: Duration,
    /// A flow with no consumption or arrivals for this long is considered
    /// inactive and its credits are recycled (the paper's coarse 1 s timer
    /// backstops a faster drain-invoked detection; at simulation scale one
    /// knob covers both). Fast detection is what feeds the credit pool
    /// quickly enough to chase destination churn (Fig. 12).
    pub inactivity_timeout: Duration,
    /// Round-robin re-activation period for inactive flows (§4.1 Q3
    /// fairness backstop).
    pub rr_reactivate_interval: Duration,
    /// Phase exclusivity (§4.2): pause the fast path while slow-path
    /// packets exist so ordering is preserved by construction. Disabling
    /// this is an ablation that lets fast-path packets overtake parked
    /// slow-path ones; the machine counts the resulting ordering stalls.
    pub phase_exclusivity: bool,
    /// Remaining-credit level below which fast-path packets carry an ECN
    /// mark — the proactive "slow down before the cache fills" signal that
    /// distinguishes CEIO from reactive schemes (Table 1).
    pub credit_low_watermark: u64,
    /// Observed message size (packets per completed message) above which a
    /// flow is classified as CPU-bypass-like and deprioritized: its
    /// returning credits are reallocated to small-message flows (§4.1 Q3 —
    /// "higher priority based solely on network information, such as
    /// message size").
    pub bypass_msg_threshold: u64,
    /// Slow-path backlog (packets) above which CEIO judges production >
    /// consumption and echoes congestion to the sender's CCA — both as
    /// per-packet ECN marks on slow-path arrivals and as a controller-poll
    /// trigger (§4.1 Q2). Sized like a shallow DCTCP marking threshold.
    pub slow_overload_threshold: usize,
    /// On-NIC elastic-store occupancy fraction at which the controller
    /// enters *degraded mode*: the slow path is judged unusable (the store
    /// is about to reject writes) and CEIO falls back to the drop-based
    /// DDIO behaviour of the legacy datapath — fast path while credits
    /// last, drops otherwise — instead of parking into a full store.
    pub degraded_enter_fraction: f64,
    /// Occupancy fraction the store must fall back under before the
    /// controller *starts counting* calm polls toward leaving degraded
    /// mode (hysteresis: strictly below the enter threshold so the mode
    /// cannot flap at the boundary).
    pub degraded_exit_fraction: f64,
    /// Consecutive calm controller polls (occupancy under the exit
    /// fraction, no new store rejections) required to leave degraded mode.
    pub degraded_exit_polls: u32,
    /// Number of receive queues the flow-steering rules shard over (RSS).
    /// The credit ledger becomes hierarchical at `num_queues > 1`: one
    /// Eq. 1 partition per queue plus a global slack pool the controller
    /// rebalances each poll. `1` (the default) keeps the flat single-queue
    /// ledger and is bit-identical to the pre-sharding pipeline.
    #[serde(default = "default_num_queues")]
    pub num_queues: usize,
}

fn default_num_queues() -> usize {
    1
}

impl Default for CeioConfig {
    fn default() -> Self {
        CeioConfig {
            credit_total: (6 << 20) / 2048,
            drain_batch: 32,
            async_fetch: true,
            reallocate: true,
            controller_interval: Duration::micros(20),
            inactivity_timeout: Duration::micros(50),
            rr_reactivate_interval: Duration::micros(400),
            phase_exclusivity: true,
            credit_low_watermark: 64,
            bypass_msg_threshold: 64,
            slow_overload_threshold: 32,
            degraded_enter_fraction: 0.9,
            degraded_exit_fraction: 0.5,
            degraded_exit_polls: 3,
            num_queues: default_num_queues(),
        }
    }
}

impl CeioConfig {
    /// The Table 4 "CEIO w/o optimization" variant: synchronous slow-path
    /// access and no credit reallocation.
    pub fn without_optimizations(mut self) -> CeioConfig {
        self.async_fetch = false;
        self.reallocate = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_flips_both_switches() {
        let c = CeioConfig::default().without_optimizations();
        assert!(!c.async_fetch);
        assert!(!c.reallocate);
        // Everything else untouched.
        assert_eq!(c.drain_batch, CeioConfig::default().drain_batch);
    }
}
