//! The CEIO flow controller and elastic buffer manager, as an `IoPolicy`.
//!
//! Responsibilities, mapped to the paper:
//!
//! * **Steering** (§4.1, Fig. 6): on connection establishment a rule is
//!   offloaded to the RMT engine pointing at the fast path. Each arriving
//!   packet consumes a credit; when a flow's credits exhaust (or its host
//!   ring has no descriptors) the rule is rewritten to divert packets into
//!   on-NIC memory. Rule rewrites are charged to the ARM core.
//! * **Phase exclusivity** (§4.2): while any slow-path packet exists for a
//!   flow (parked or in fetch flight), *all* of its arrivals go to the slow
//!   path, so fast-path packets can never overtake earlier slow-path ones.
//!   The fast path resumes automatically once the drain finishes — the
//!   "pause, drain, re-enable" loop of §4.1 Q2.
//! * **Lazy credit release** (§4.1): credits return only in
//!   `on_batch_consumed` — the driver's head-pointer advance after a batch
//!   of messages. Polled RPC flows release continuously; huge-message
//!   bypass flows hold credits until their write-with-immediate analogue,
//!   which is precisely what degrades them to the slow path first.
//! * **Controller loop** (§4.1 Q2/Q3): the ARM cores poll steering
//!   counters, detect slow-path overload (production > consumption) and
//!   trigger the CCA, reclaim credits from inactive flows, re-grant them to
//!   active ones (Algorithm 1's pool), and round-robin re-activate inactive
//!   flows as the fairness backstop.

use crate::config::CeioConfig;
use crate::sharded::ShardedCredits;
#[cfg(feature = "chaos")]
use ceio_chaos::{FaultInjector, FaultSite};
use ceio_host::{DrainRequest, HostState, IoPolicy, SteerDecision};
use ceio_net::{FlowId, Packet};
use ceio_nic::{QueueId, SteerAction};
use ceio_sim::Time;
use ceio_telemetry::SnapshotBuilder;
#[cfg(feature = "trace")]
use ceio_telemetry::{merge_events, TraceEvent, TraceKind, TraceRing};
use std::collections::BTreeMap;

/// Per-flow controller bookkeeping.
#[derive(Debug, Clone)]
struct FlowCtl {
    /// Consumption count at the previous controller poll.
    consumed_at_last_poll: u64,
    /// Arrival count (NIC sequence) at the previous controller poll.
    arrivals_at_last_poll: u64,
    /// Slow-queue length at the previous controller poll.
    slow_len_at_last_poll: usize,
    /// Last instant the flow showed activity (arrival or consumption).
    last_activity: Time,
    /// Last instant a packet of this flow arrived at the NIC. Grants and
    /// reclaims key on arrivals: a flow draining residual backlog after
    /// its sender went quiet must not keep attracting credits.
    last_arrival: Time,
    /// Whether the controller has reclaimed this flow's credits.
    inactive: bool,
    /// Whether the controller classifies this flow as CPU-bypass-like
    /// (huge observed messages): its returning credits are reallocated to
    /// small-message flows instead (§4.1 Q3, the Table 4 mechanism).
    deprioritized: bool,
    /// Fast-path credits consumed but not yet driver-visible: the driver
    /// only observes completions at message boundaries (the RDMA
    /// write-with-immediate), so releases accumulate here until one passes
    /// (§4.1 lazy credit release).
    pending_release: u64,
}

/// CEIO statistics beyond the credit manager's.
#[derive(Debug, Default, Clone)]
pub struct CeioStats {
    /// Steering-rule rewrites (fast↔slow transitions).
    pub rule_rewrites: u64,
    /// CCA triggers due to slow-path overload.
    pub cca_triggers: u64,
    /// Inactive-flow reclaim events.
    pub reclaims: u64,
    /// Flows classified as bypass-like (credit reallocation events).
    pub deprioritized_marks: u64,
    /// Round-robin re-activations.
    pub rr_reactivations: u64,
    /// Entries into degraded (drop-fallback) mode.
    pub degraded_entries: u64,
    /// Exits from degraded mode (hysteretic recovery).
    pub degraded_exits: u64,
    /// Credits quiet queue partitions returned to the global pool.
    pub rebalance_returned: u64,
    /// Credits pressured queue partitions borrowed from the global pool.
    pub rebalance_borrowed: u64,
    /// Credits swept from failed queues' partitions into the global pool.
    pub quarantined_credits: u64,
    /// Credits refilled into recovered queues' partitions from the pool.
    pub restored_credits: u64,
}

/// Controller operating mode (graceful degradation, ROADMAP item: the
/// elastic store can become unusable — injected exhaustion or a genuinely
/// full device — and CEIO must fail *back to* legacy DDIO drop behaviour
/// rather than parking packets into a full store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Normal operation: elastic buffering absorbs credit exhaustion.
    Normal,
    /// Drop-fallback: slow path unusable, behave like the legacy datapath.
    Degraded,
}

/// A lazy release parked in flight by an injected delay fault.
#[cfg(feature = "chaos")]
#[derive(Debug, Clone)]
struct DelayedRelease {
    at: Time,
    flow: FlowId,
    credits: u64,
    to_pool: bool,
}

/// Policy-side chaos state: the injector stream plus releases currently
/// delayed on the (simulated) NIC-host control path.
#[cfg(feature = "chaos")]
#[derive(Debug)]
struct PolicyChaos {
    injector: FaultInjector,
    delayed: Vec<DelayedRelease>,
}

/// The CEIO policy.
pub struct CeioPolicy {
    cfg: CeioConfig,
    /// The hierarchical credit ledger: one Eq. 1 partition per receive
    /// queue plus a global slack pool (public for experiment
    /// introspection). At `num_queues == 1` it degenerates to the flat
    /// single-queue manager.
    pub credits: ShardedCredits,
    /// Per-flow controller state, ordered by flow id so every sweep of
    /// the control loop visits flows in the same (deterministic) order.
    ctl: BTreeMap<FlowId, FlowCtl>,
    rr_order: Vec<FlowId>,
    rr_cursor: usize,
    next_rr: Time,
    stats: CeioStats,
    mode: Mode,
    calm_polls: u32,
    rejections_at_last_poll: u64,
    #[cfg(feature = "chaos")]
    chaos: Option<Box<PolicyChaos>>,
    /// Controller-level trace recorder (rule rewrites, phase
    /// transitions, lazy releases); `None` until armed.
    #[cfg(feature = "trace")]
    tracer: Option<TraceRing>,
}

impl CeioPolicy {
    /// A CEIO controller with the given configuration.
    ///
    /// Slow-path drain completions retire *uncached* (host machine policy:
    /// cold-path data goes straight to DRAM), so the full Eq. 1 credit
    /// total is available to the fast path and draining can never flush
    /// fast-path LLC residents (§4.1 Q2).
    pub fn new(cfg: CeioConfig) -> CeioPolicy {
        CeioPolicy {
            credits: ShardedCredits::new(cfg.credit_total, cfg.num_queues.max(1)),
            ctl: BTreeMap::new(),
            rr_order: Vec::new(),
            rr_cursor: 0,
            next_rr: Time::ZERO + cfg.rr_reactivate_interval,
            cfg,
            stats: CeioStats::default(),
            mode: Mode::Normal,
            calm_polls: 0,
            rejections_at_last_poll: 0,
            #[cfg(feature = "chaos")]
            chaos: None,
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Whether the controller is in degraded (drop-fallback) mode.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.mode == Mode::Degraded
    }

    /// Per-site injection counters of the policy's chaos stream (`None`
    /// until [`IoPolicy::arm_chaos`] arms it).
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn chaos_stats(&self) -> Option<&ceio_chaos::ChaosStats> {
        self.chaos.as_ref().map(|ch| ch.injector.stats())
    }

    /// Controller statistics.
    pub fn stats(&self) -> &CeioStats {
        &self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &CeioConfig {
        &self.cfg
    }

    /// Rewrite a flow's steering rule if it differs, charging the ARM core.
    /// An armed chaos plan may inject an RMT install delay: the table
    /// update takes extra ARM time (modelling a slow firmware path), which
    /// delays this and every later control-plane operation.
    fn sync_rule(&mut self, st: &mut HostState, now: Time, flow: FlowId, want: SteerAction) {
        let prev = st.rmt.action(&flow);
        if prev != Some(want) && st.rmt.set_action(&flow, want) {
            st.nic_arm.execute(now, st.cfg.nic.arm_table_update);
            #[cfg(feature = "chaos")]
            if let Some(ch) = self.chaos.as_mut() {
                if ch.injector.fire(FaultSite::RmtInstallDelay) {
                    let extra = ch.injector.plan().rmt_delay;
                    st.nic_arm.execute(now, extra);
                    #[cfg(feature = "trace")]
                    if let Some(r) = self.tracer.as_mut() {
                        r.push(TraceEvent {
                            at: now,
                            flow: Some(flow.0),
                            kind: TraceKind::RmtDelay,
                            value: extra.as_nanos(),
                        });
                    }
                }
            }
            self.stats.rule_rewrites += 1;
            #[cfg(feature = "trace")]
            self.trace_rewrite(now, flow, prev, want);
        }
    }

    /// Enter degraded mode (idempotent).
    fn enter_degraded(&mut self, now: Time) {
        if self.mode == Mode::Degraded {
            return;
        }
        self.mode = Mode::Degraded;
        self.calm_polls = 0;
        self.stats.degraded_entries += 1;
        #[cfg(feature = "trace")]
        if let Some(r) = self.tracer.as_mut() {
            r.push(TraceEvent {
                at: now,
                flow: None,
                kind: TraceKind::DegradedEnter,
                value: 0,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = now;
    }

    /// Leave degraded mode (idempotent).
    fn exit_degraded(&mut self, now: Time) {
        if self.mode == Mode::Normal {
            return;
        }
        self.mode = Mode::Normal;
        self.calm_polls = 0;
        self.stats.degraded_exits += 1;
        #[cfg(feature = "trace")]
        if let Some(r) = self.tracer.as_mut() {
            r.push(TraceEvent {
                at: now,
                flow: None,
                kind: TraceKind::DegradedExit,
                value: 0,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = now;
    }

    /// Degraded-mode entry check: the elastic store is (nearly) full, or it
    /// rejected a write since the last check. `rejections_at_last_poll` is
    /// advanced only by the controller poll, so per-packet checks between
    /// polls all see the same baseline — cheap and deterministic.
    fn check_store_pressure(&mut self, st: &HostState, now: Time) {
        if self.mode == Mode::Degraded {
            return;
        }
        let cap = st.onboard.capacity().max(1);
        let frac = st.onboard.occupancy() as f64 / cap as f64;
        let rejected = st.onboard.stats().capacity_rejections > self.rejections_at_last_poll;
        if frac >= self.cfg.degraded_enter_fraction || rejected {
            self.enter_degraded(now);
        }
    }

    /// Deliver one lazy credit release, subject to chaos: the release may
    /// be lost on the NIC-host control path (the manager never hears of it;
    /// the lease watchdog reclaims the grants at TTL expiry) or delayed
    /// (parked until a later controller poll re-delivers it — by which time
    /// the leases may already have been reclaimed, in which case the stale
    /// release is dropped rather than double-credited).
    fn deliver_release(&mut self, now: Time, flow: FlowId, credits: u64, to_pool: bool) {
        #[cfg(feature = "chaos")]
        if let Some(ch) = self.chaos.as_mut() {
            if ch.injector.fire(FaultSite::CreditReleaseLoss) {
                #[cfg(feature = "trace")]
                if let Some(r) = self.tracer.as_mut() {
                    r.push(TraceEvent {
                        at: now,
                        flow: Some(flow.0),
                        kind: TraceKind::CreditReleaseLost,
                        value: credits,
                    });
                }
                return;
            }
            if ch.injector.fire(FaultSite::CreditReleaseDelay) {
                let at = now + ch.injector.plan().release_delay;
                ch.delayed.push(DelayedRelease {
                    at,
                    flow,
                    credits,
                    to_pool,
                });
                #[cfg(feature = "trace")]
                if let Some(r) = self.tracer.as_mut() {
                    r.push(TraceEvent {
                        at: now,
                        flow: Some(flow.0),
                        kind: TraceKind::CreditReleaseDelayed,
                        value: credits,
                    });
                }
                return;
            }
        }
        #[cfg(not(feature = "chaos"))]
        let _ = now;
        if to_pool {
            self.credits.release_to_pool(flow, credits);
        } else {
            self.credits.release(flow, credits);
        }
    }

    /// Re-deliver delayed releases whose injected delay has elapsed.
    #[cfg(feature = "chaos")]
    fn deliver_matured_releases(&mut self, now: Time) {
        let Some(ch) = self.chaos.as_mut() else {
            return;
        };
        if ch.delayed.is_empty() {
            return;
        }
        let mut due: Vec<DelayedRelease> = Vec::new();
        let mut i = 0;
        while i < ch.delayed.len() {
            if ch.delayed[i].at <= now {
                due.push(ch.delayed.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for d in due {
            if d.to_pool {
                self.credits.release_to_pool(d.flow, d.credits);
            } else {
                self.credits.release(d.flow, d.credits);
            }
        }
    }

    /// Rewrite every fast-path steering rule whose queue no longer matches
    /// the machine's failover remap. Sweeps `ctl` in flow-id order (the
    /// `BTreeMap` iteration order), so the re-steer sequence — and with it
    /// the ARM-core charge timeline and RMT rewrite accounting — is fully
    /// deterministic for a given failure. Slow-path rules are untouched:
    /// their queue binding re-resolves when the fast path resumes.
    fn resteer_to_remap(&mut self, st: &mut HostState, now: Time) {
        let flows: Vec<FlowId> = self.ctl.keys().copied().collect();
        for flow in flows {
            let desired = QueueId(st.queue_of(flow));
            if let Some(SteerAction::FastPath { queue }) = st.rmt.action(&flow) {
                if queue != desired {
                    self.sync_rule(st, now, flow, SteerAction::FastPath { queue: desired });
                    st.failover.flows_resteered += 1;
                    #[cfg(feature = "trace")]
                    if let Some(r) = self.tracer.as_mut() {
                        r.push(TraceEvent {
                            at: now,
                            flow: Some(flow.0),
                            kind: TraceKind::FlowResteer,
                            value: desired.index() as u64,
                        });
                    }
                }
            }
        }
    }

    /// Record a rule rewrite — and, because the RMT rule *is* the phase
    /// under phase exclusivity, the matching slow-phase span edge.
    #[cfg(feature = "trace")]
    fn trace_rewrite(
        &mut self,
        now: Time,
        flow: FlowId,
        prev: Option<SteerAction>,
        want: SteerAction,
    ) {
        let Some(r) = self.tracer.as_mut() else {
            return;
        };
        let ev = |kind: TraceKind, value: u64| TraceEvent {
            at: now,
            flow: Some(flow.0),
            kind,
            value,
        };
        match want {
            SteerAction::SlowPath => {
                r.push(ev(TraceKind::RuleRewriteSlow, 0));
                if matches!(prev, Some(SteerAction::FastPath { .. })) {
                    r.push(ev(TraceKind::PhaseSlowEnter, 0));
                }
            }
            SteerAction::FastPath { queue } => {
                r.push(ev(TraceKind::RuleRewriteFast, queue.index() as u64));
                if matches!(prev, Some(SteerAction::SlowPath)) {
                    r.push(ev(TraceKind::PhaseSlowExit, 0));
                }
            }
            SteerAction::Drop => {}
        }
    }
}

impl IoPolicy for CeioPolicy {
    fn name(&self) -> &'static str {
        "CEIO"
    }

    fn on_flow_start(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        // Connection establishment: offload the steering rule (fast path,
        // RSS-sharded onto a receive queue, through the failover remap)
        // and run Algorithm 1's assignment in that queue's credit
        // partition (the flow's RSS *home*, stable across failovers).
        let queue = QueueId(st.queue_of(flow));
        st.rmt.install(flow, SteerAction::FastPath { queue });
        st.nic_arm.execute(now, st.cfg.nic.arm_table_update);
        self.credits.add_flows(&[flow]);
        self.ctl.insert(
            flow,
            FlowCtl {
                consumed_at_last_poll: 0,
                arrivals_at_last_poll: 0,
                slow_len_at_last_poll: 0,
                last_activity: now,
                last_arrival: now,
                inactive: false,
                deprioritized: false,
                pending_release: 0,
            },
        );
        self.rr_order.push(flow);
    }

    fn on_flow_stop(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        #[cfg(feature = "trace")]
        self.credits.set_trace_now(now);
        st.rmt.remove(&flow);
        st.nic_arm.execute(now, st.cfg.nic.arm_table_update);
        // Assigned credits return to the pool; credits held by still
        // in-flight packets come back through `release` as they drain, and
        // any accumulated-but-unreleased completions flush now.
        if let Some(c) = self.ctl.get(&flow) {
            if c.pending_release > 0 {
                self.credits.release_to_pool(flow, c.pending_release);
            }
        }
        self.credits.remove_flow(flow);
        self.ctl.remove(&flow);
        self.rr_order.retain(|f| *f != flow);
        if self.rr_cursor >= self.rr_order.len() {
            self.rr_cursor = 0;
        }
    }

    fn steer(&mut self, st: &mut HostState, now: Time, pkt: &Packet) -> SteerDecision {
        #[cfg(feature = "trace")]
        self.credits.set_trace_now(now);
        self.credits.set_now(now);
        let flow = pkt.flow;
        // Count the hit on the RMT rule (the hardware datapath).
        st.rmt.steer(&flow);
        if let Some(c) = self.ctl.get_mut(&flow) {
            c.last_activity = now;
            c.last_arrival = now;
        }
        let (parked, slow_len, ring_free) = match st.flows.get(&flow) {
            Some(f) => (
                f.slow_queue.len() + f.slow_fetch_inflight as usize,
                f.slow_queue.len(),
                f.ring_free(),
            ),
            None => return SteerDecision::Drop { loss: false },
        };
        // The RSS shard this flow's fast path lands on, through the
        // failover remap. Identity (and thus stable per flow) while every
        // queue is usable, so fault-free rule-rewrite counts are unchanged.
        let queue = QueueId(st.queue_of(flow));
        // Production outrunning slow-path consumption: echo congestion to
        // the sender's CCA, per packet, like a shallow-queue ECN marker
        // (§4.1 Q2). Without this the elastic buffer would just absorb an
        // unbounded standing queue.
        let mark = slow_len > self.cfg.slow_overload_threshold;
        // Graceful degradation: when the elastic store is (about to be)
        // unusable, parking would either fail outright or stand up an
        // undrainable queue. Fall back to the legacy drop-based DDIO
        // datapath — fast path while credits and descriptors last, loss
        // otherwise — until the controller's hysteresis re-enables the
        // slow path. Flows with parked slow-path packets keep their fast
        // path paused (phase exclusivity still holds), so their arrivals
        // drop rather than overtake the parked backlog.
        self.check_store_pressure(st, now);
        if self.mode == Mode::Degraded {
            if parked > 0 && self.cfg.phase_exclusivity {
                return SteerDecision::Drop { loss: true };
            }
            if ring_free > 0 && self.credits.try_consume(flow) {
                self.sync_rule(st, now, flow, SteerAction::FastPath { queue });
                return SteerDecision::FastPath { mark };
            }
            self.sync_rule(st, now, flow, SteerAction::Drop);
            return SteerDecision::Drop { loss: true };
        }
        // Phase exclusivity: the fast path stays paused while slow-path
        // packets exist, preserving order across the transition (§4.2).
        // The re-enable fires once the parked backlog is nearly drained
        // (under half a drain batch): a strict reach-zero exit is
        // unreachable under continuous arrivals (a new packet always lands
        // within the last fetch's round trip), and the sequence-ordered
        // delivery buffer bridges the few-packet overlap at no reordering
        // cost — that is precisely the SW ring's job.
        let exit_threshold = (self.cfg.drain_batch as usize / 2).max(1);
        if parked > exit_threshold && self.cfg.phase_exclusivity {
            self.sync_rule(st, now, flow, SteerAction::SlowPath);
            return SteerDecision::SlowPath { mark };
        }
        if ring_free > 0 && self.credits.try_consume(flow) {
            self.sync_rule(st, now, flow, SteerAction::FastPath { queue });
            // Proactive rate control (Table 1): echo congestion while the
            // flow's credits run low, so the sender converges to the
            // consumption rate *before* exhaustion degrades it. The
            // watermark adapts to the fair share so regulation engages
            // early enough at any flow count.
            let share = self.credits.total() / (self.ctl.len() as u64).max(1);
            let watermark = self.cfg.credit_low_watermark.max(share / 16);
            let low = self.credits.credits(flow) < watermark;
            SteerDecision::FastPath { mark: low }
        } else {
            // Credits exhausted (or no RX descriptor): elastic buffering
            // instead of a drop — no spurious CCA trigger (Table 1).
            self.sync_rule(st, now, flow, SteerAction::SlowPath);
            SteerDecision::SlowPath { mark }
        }
    }

    fn on_fast_drop(&mut self, _st: &mut HostState, _now: Time, flow: FlowId) {
        #[cfg(feature = "trace")]
        self.credits.set_trace_now(_now);
        // The dropped packet's credit must not leak.
        self.credits.release(flow, 1);
    }

    fn on_batch_consumed(
        &mut self,
        st: &mut HostState,
        now: Time,
        flow: FlowId,
        fast_pkts: u32,
        slow_pkts: u32,
        msgs: u32,
    ) {
        let _ = slow_pkts;
        #[cfg(feature = "trace")]
        self.credits.set_trace_now(now);
        // Lazy release (§4.1): credits return only when the driver sees a
        // completion — and for RDMA-style flows that is the
        // write-with-immediate at a *message* boundary. Consumed credits
        // accumulate until a message tail passes through the batch, which
        // is continuous for single-packet RPC messages and rare-and-bulky
        // for huge transfers — exactly the asymmetry that degrades
        // CPU-bypass flows to the slow path first. Credits of
        // deprioritized flows are diverted to the pool (§4.1 Q3).
        let pending = {
            let Some(c) = self.ctl.get_mut(&flow) else {
                // Torn-down flow: return credits straight to the pool.
                self.credits.release_to_pool(flow, fast_pkts as u64);
                return;
            };
            c.pending_release += fast_pkts as u64;
            if msgs == 0 {
                return;
            }
            std::mem::take(&mut c.pending_release)
        };
        if pending > 0 {
            let divert = self.cfg.reallocate
                && self
                    .ctl
                    .get(&flow)
                    .map(|c| c.deprioritized)
                    .unwrap_or(false);
            self.deliver_release(now, flow, pending, divert);
            st.nic_arm.execute(now, st.cfg.nic.arm_credit_op);
            #[cfg(feature = "trace")]
            if let Some(r) = self.tracer.as_mut() {
                r.push(TraceEvent {
                    at: now,
                    flow: Some(flow.0),
                    kind: TraceKind::CreditLazyRelease,
                    value: pending,
                });
            }
        }
        if let Some(c) = self.ctl.get_mut(&flow) {
            c.last_activity = now;
        }
    }

    fn on_driver_poll(&mut self, st: &mut HostState, now: Time, flow: FlowId) -> DrainRequest {
        let Some(f) = st.flows.get(&flow) else {
            return DrainRequest::NONE;
        };
        // Blocking recv() keeps a single DMA read outstanding; async_recv
        // pipelines up to one drain batch so drained-but-unconsumed data
        // stays within the credit reserve.
        if !self.cfg.async_fetch && f.slow_fetch_inflight > 0 {
            return DrainRequest::NONE;
        }
        // Bound the fetch pipeline at two drain batches in flight per flow
        // (enough to cover the PCIe read round trip at line rate).
        if f.slow_fetch_inflight >= 2 * self.cfg.drain_batch {
            return DrainRequest::NONE;
        }
        let drainable = f
            .slow_queue
            .front()
            .map(|sp| sp.ready_at_nic <= now)
            .unwrap_or(false);
        if drainable {
            DrainRequest {
                fetch: self.cfg.drain_batch,
                sync: !self.cfg.async_fetch,
            }
        } else {
            DrainRequest::NONE
        }
    }

    fn on_slow_arrived(&mut self, _st: &mut HostState, now: Time, flow: FlowId, _pkts: u32) {
        if let Some(c) = self.ctl.get_mut(&flow) {
            c.last_activity = now;
        }
    }

    fn on_controller_poll(&mut self, st: &mut HostState, now: Time) {
        #[cfg(feature = "trace")]
        self.credits.set_trace_now(now);
        self.credits.set_now(now);
        // Recovery bookkeeping before the control loop proper: releases
        // whose injected delay elapsed arrive now, then the lease watchdog
        // reclaims any grant whose release never arrived at all.
        #[cfg(feature = "chaos")]
        self.deliver_matured_releases(now);
        // Reclaim count is already folded into `CreditStats::lease_reclaims`.
        let _ = self.credits.expire_leases();
        let ids: Vec<FlowId> = self.ctl.keys().copied().collect();
        let mut active: Vec<FlowId> = Vec::new();
        let mut to_mark: Vec<FlowId> = Vec::new();
        let mut to_reclaim: Vec<FlowId> = Vec::new();
        for flow in ids {
            // Poll the steering counter (the hardware credit-consumption
            // signal the controller tracks, Fig. 6).
            let _hits = st.rmt.poll_hits(&flow);
            st.nic_arm.execute(now, st.cfg.nic.arm_credit_op);
            let Some(f) = st.flows.get(&flow) else {
                continue;
            };
            let c = self
                .ctl
                .get_mut(&flow)
                .expect("invariant: `ctl` has an entry for every flow in `st.flows`");
            let consumed = f.counters.consumed_pkts;
            let arrivals = f.nic_seq_next;
            if consumed > c.consumed_at_last_poll || arrivals > c.arrivals_at_last_poll {
                c.last_activity = now;
            }
            // Slow-path overload: production has outrun consumption — the
            // CCA trigger of §4.1 Q2.
            let slow_len = f.slow_queue.len();
            if slow_len > self.cfg.slow_overload_threshold && slow_len >= c.slow_len_at_last_poll {
                to_mark.push(flow);
            }
            // Message-size classification (§4.1 Q3, "network information
            // such as message size"): flows with huge observed messages
            // replenish credits rarely and in bulk — the CPU-bypass
            // signature. Their credits fund small-message flows instead.
            let est_msg_pkts = if let Some(per_msg) = f
                .counters
                .consumed_pkts
                .checked_div(f.counters.msgs_completed)
            {
                per_msg
            } else if f.counters.consumed_pkts > 2 * st.cfg.cpu.batch_size as u64 {
                // Many packets consumed, no message boundary yet: the
                // message is at least that large.
                f.counters.consumed_pkts
            } else {
                0 // not enough evidence
            };
            let bypass_like = est_msg_pkts > self.cfg.bypass_msg_threshold;
            if self.cfg.reallocate && bypass_like && !c.deprioritized {
                c.deprioritized = true;
                self.stats.deprioritized_marks += 1;
                to_reclaim.push(flow);
            } else if !bypass_like && c.deprioritized {
                c.deprioritized = false;
            }
            // Level-triggered inactivity on *arrivals*: as long as the
            // sender is quiet, every poll sweeps whatever credits have
            // accumulated (including late lazy releases) back to the pool.
            let arrival_idle = now.since(c.last_arrival);
            if self.cfg.reallocate {
                let quiet = arrival_idle > self.cfg.inactivity_timeout;
                if quiet && !c.inactive {
                    self.stats.reclaims += 1;
                }
                c.inactive = quiet;
                if quiet {
                    to_reclaim.push(flow);
                }
            }
            if !c.inactive && !c.deprioritized {
                active.push(flow);
            }
            c.consumed_at_last_poll = consumed;
            c.arrivals_at_last_poll = arrivals;
            c.slow_len_at_last_poll = slow_len;
        }
        for flow in to_mark {
            st.mark_flow(now, flow);
            self.stats.cca_triggers += 1;
        }
        if self.cfg.reallocate {
            for flow in to_reclaim {
                if self.credits.reclaim(flow) > 0 {
                    st.nic_arm.execute(now, st.cfg.nic.arm_credit_op);
                }
            }
            // Re-grant pooled credits to active flows (Algorithm 1's
            // reallocation of recycled credits). Priority is relative:
            // when every flow is deprioritized (e.g. a pure-DFS tenant),
            // the pool goes back to all of them evenly.
            if self.credits.free_pool() > 0 {
                if active.is_empty() {
                    active = self.ctl.keys().copied().collect();
                }
                active.sort_unstable();
                self.credits.grant_evenly(&active);
            }
            // Round-robin re-activation backstop (§4.1 Q3 fairness).
            while now >= self.next_rr {
                self.next_rr += self.cfg.rr_reactivate_interval;
                if self.rr_order.is_empty() {
                    continue;
                }
                self.rr_cursor %= self.rr_order.len();
                let flow = self.rr_order[self.rr_cursor];
                self.rr_cursor = (self.rr_cursor + 1) % self.rr_order.len();
                if let Some(c) = self.ctl.get_mut(&flow) {
                    // Re-activate flows parked off the fast path — whether
                    // idle (credits reclaimed) or deprioritized — so every
                    // flow periodically regains fast-path access (§4.1 Q3
                    // fairness). Deprioritized flows keep their probe grant
                    // but stay classified (huge messages re-exhaust it).
                    if c.inactive || c.deprioritized {
                        c.inactive = false;
                        c.last_activity = now;
                        // A probe-sized grant: a genuinely fast-path flow
                        // keeps recycling it (lazy release), while a
                        // CPU-bypass flow exhausts it within one message
                        // and returns to the slow path.
                        let share = self.credits.total() / (self.ctl.len() as u64).max(1) / 4;
                        let _granted = self.credits.grant(flow, share.max(1));
                        self.stats.rr_reactivations += 1;
                        st.nic_arm.execute(now, st.cfg.nic.arm_credit_op);
                    }
                }
            }
        }
        // Hierarchical ledger rebalance (multi-queue only): quiet queue
        // partitions yield free slack above their base share to the global
        // pool; partitions that denied admissions since the last poll
        // borrow it back, bounded by demand and a 2x-base cap. Guarded so
        // the single-queue pipeline stays bit-identical to the flat ledger.
        if self.cfg.num_queues > 1 {
            let (returned, borrowed) = self.credits.rebalance();
            if returned + borrowed > 0 {
                self.stats.rebalance_returned += returned;
                self.stats.rebalance_borrowed += borrowed;
                st.nic_arm.execute(now, st.cfg.nic.arm_credit_op);
            }
        }
        // Degraded-mode hysteresis: entry is immediate (per-packet pressure
        // checks and the poll below), exit requires several consecutive
        // calm polls — store drained below the exit fraction and no new
        // rejections — so the mode cannot flap at the boundary.
        let rejections = st.onboard.stats().capacity_rejections;
        if self.mode == Mode::Degraded {
            let cap = st.onboard.capacity().max(1);
            let frac = st.onboard.occupancy() as f64 / cap as f64;
            let calm = frac <= self.cfg.degraded_exit_fraction
                && rejections == self.rejections_at_last_poll;
            if calm {
                self.calm_polls += 1;
                if self.calm_polls >= self.cfg.degraded_exit_polls {
                    self.exit_degraded(now);
                }
            } else {
                self.calm_polls = 0;
            }
        } else {
            self.check_store_pressure(st, now);
        }
        self.rejections_at_last_poll = rejections;
        debug_assert!(self.credits.conserved(), "credit conservation violated");
    }

    fn controller_interval(&self) -> Option<ceio_sim::Duration> {
        Some(self.cfg.controller_interval)
    }

    /// Queue failover (DESIGN.md §13): sweep the dead queue's free credits
    /// into the global pool — nothing new can be granted against a
    /// partition that cannot drain — and rewrite every displaced flow's
    /// RMT rule onto its takeover queue. Credits already outstanding on
    /// in-flight packets return through the normal lazy-release path.
    fn on_queue_failed(&mut self, st: &mut HostState, now: Time, queue: QueueId) {
        #[cfg(feature = "trace")]
        self.credits.set_trace_now(now);
        let moved = self.credits.quarantine_partition(queue.index());
        self.stats.quarantined_credits += moved;
        if moved > 0 {
            st.nic_arm.execute(now, st.cfg.nic.arm_credit_op);
        }
        self.resteer_to_remap(st, now);
        debug_assert!(self.credits.conserved(), "credit conservation violated");
    }

    /// Queue recovery: refill the partition back toward its base share
    /// from the global pool and steer its flows home.
    fn on_queue_recovered(&mut self, st: &mut HostState, now: Time, queue: QueueId) {
        #[cfg(feature = "trace")]
        self.credits.set_trace_now(now);
        let returned = self.credits.restore_partition(queue.index());
        self.stats.restored_credits += returned;
        if returned > 0 {
            st.nic_arm.execute(now, st.cfg.nic.arm_credit_op);
        }
        self.resteer_to_remap(st, now);
        debug_assert!(self.credits.conserved(), "credit conservation violated");
    }

    /// Arm the policy's chaos stream and — when the plan carries a lease
    /// TTL — the credit-lease watchdog that recovers lost releases.
    #[cfg(feature = "chaos")]
    fn arm_chaos(&mut self, st: &mut HostState, plan: &ceio_chaos::FaultPlan) {
        let _ = st;
        if let Some(ttl) = plan.lease_ttl {
            self.credits.enable_leases(ttl);
        }
        self.chaos = Some(Box::new(PolicyChaos {
            injector: plan.injector("policy"),
            delayed: Vec::new(),
        }));
    }

    fn fill_metrics(&self, out: &mut SnapshotBuilder) {
        out.counter(
            "ceio_ctl_rule_rewrites_total",
            "Steering-rule rewrites performed by the controller.",
            self.stats.rule_rewrites,
        );
        out.counter(
            "ceio_ctl_cca_triggers_total",
            "CCA triggers due to slow-path overload.",
            self.stats.cca_triggers,
        );
        out.counter(
            "ceio_ctl_reclaims_total",
            "Inactive-flow credit reclaim events.",
            self.stats.reclaims,
        );
        out.counter(
            "ceio_ctl_deprioritized_marks_total",
            "Flows classified as bypass-like by the controller.",
            self.stats.deprioritized_marks,
        );
        out.counter(
            "ceio_ctl_rr_reactivations_total",
            "Round-robin fairness re-activations.",
            self.stats.rr_reactivations,
        );
        let cm = &self.credits;
        let cs = cm.stats();
        out.counter(
            "ceio_credit_consumed_total",
            "Successful credit consumptions (fast-path admissions).",
            cs.consumed,
        );
        out.counter(
            "ceio_credit_denied_total",
            "Denied credit consumptions (slow-path degradations).",
            cs.denied,
        );
        out.counter(
            "ceio_credit_debts_repaid_total",
            "Credits repaid through the owed ledger.",
            cs.debts_repaid,
        );
        out.counter(
            "ceio_credit_reclaims_total",
            "Credit reclaim operations.",
            cs.reclaims,
        );
        out.gauge(
            "ceio_credit_total",
            "Configured credit total (Eq. 1 budget).",
            cm.total() as f64,
        );
        out.gauge(
            "ceio_credit_free_pool",
            "Credits currently in the free pool.",
            cm.free_pool() as f64,
        );
        out.gauge(
            "ceio_credit_outstanding",
            "Credits held by in-flight packets.",
            cm.outstanding() as f64,
        );
        out.gauge(
            "ceio_credit_assigned",
            "Credits currently assigned to flows.",
            cm.assigned_total() as f64,
        );
        out.counter(
            "ceio_credit_lease_reclaims_total",
            "Credits reclaimed by the lease watchdog (lost releases).",
            cs.lease_reclaims,
        );
        out.counter(
            "ceio_credit_stale_releases_total",
            "Late releases dropped because their leases were reclaimed.",
            cs.stale_releases,
        );
        out.gauge(
            "ceio_credit_live_leases",
            "Grants currently covered by a live lease (0 when disarmed).",
            cm.live_leases() as f64,
        );
        out.gauge(
            "ceio_credit_conserved",
            "1 when Eq. 1 holds (assigned + pool + outstanding == total).",
            if cm.conserved() { 1.0 } else { 0.0 },
        );
        out.counter(
            "ceio_ctl_degraded_entries_total",
            "Entries into degraded (drop-fallback) mode.",
            self.stats.degraded_entries,
        );
        out.counter(
            "ceio_ctl_degraded_exits_total",
            "Hysteretic exits from degraded mode.",
            self.stats.degraded_exits,
        );
        out.counter(
            "ceio_ctl_rebalance_returned_total",
            "Credits quiet queue partitions returned to the global pool.",
            self.stats.rebalance_returned,
        );
        out.counter(
            "ceio_ctl_rebalance_borrowed_total",
            "Credits pressured queue partitions borrowed from the global pool.",
            self.stats.rebalance_borrowed,
        );
        out.counter(
            "ceio_credit_quarantined_total",
            "Credits swept from failed queues' partitions into the global pool.",
            self.stats.quarantined_credits,
        );
        out.counter(
            "ceio_credit_restored_total",
            "Credits refilled into recovered queues' partitions from the pool.",
            self.stats.restored_credits,
        );
        out.gauge(
            "ceio_credit_queues",
            "Receive-queue count the credit ledger is sharded over.",
            cm.num_queues() as f64,
        );
        out.gauge(
            "ceio_credit_global_free",
            "Slack credits parked in the hierarchical global pool.",
            cm.global_free() as f64,
        );
        for q in 0..cm.num_queues() {
            let Some(p) = cm.partition(q) else {
                continue;
            };
            let labels = [("queue", q.to_string())];
            out.gauge_with(
                "ceio_credit_partition_total",
                "Current Eq. 1 total of one queue's credit partition.",
                &labels,
                p.total() as f64,
            );
            out.gauge_with(
                "ceio_credit_partition_free",
                "Free pool of one queue's credit partition.",
                &labels,
                p.free_pool() as f64,
            );
            out.gauge_with(
                "ceio_credit_partition_outstanding",
                "In-flight credits of one queue's credit partition.",
                &labels,
                p.outstanding() as f64,
            );
            out.counter_with(
                "ceio_credit_partition_denied_total",
                "Denied admissions in one queue's credit partition.",
                &labels,
                p.stats().denied,
            );
        }
        out.gauge(
            "ceio_degraded_mode",
            "1 while the controller is in degraded (drop-fallback) mode.",
            if self.mode == Mode::Degraded {
                1.0
            } else {
                0.0
            },
        );
        #[cfg(feature = "chaos")]
        if let Some(ch) = self.chaos.as_ref() {
            out.counter(
                "ceio_chaos_policy_injected_total",
                "Faults injected from the policy's chaos stream.",
                ch.injector.stats().total(),
            );
            out.gauge(
                "ceio_chaos_delayed_releases",
                "Credit releases currently parked by an injected delay.",
                ch.delayed.len() as f64,
            );
        }
    }

    /// Declare the credit-ledger gauges CEIO contributes to an armed
    /// flight recorder: outstanding/free credits per queue partition plus
    /// the global slack pool and live-lease count.
    fn scope_register(&self, rec: &mut ceio_telemetry::FlightRecorder) {
        rec.register(
            "credit_pool_free",
            "Slack credits parked in the hierarchical global pool.",
        );
        rec.register(
            "credit_leases",
            "Grants currently covered by a live lease (0 when disarmed).",
        );
        rec.register_queue(
            "credit_outstanding",
            "In-flight credits of this queue's partition.",
            self.credits.num_queues(),
        );
        rec.register_queue(
            "credit_free",
            "Free credits of this queue's partition (pool slack).",
            self.credits.num_queues(),
        );
    }

    fn scope_sample(&self, rec: &mut ceio_telemetry::FlightRecorder, now: ceio_sim::Time) {
        rec.record("credit_pool_free", now, self.credits.global_free() as f64);
        rec.record("credit_leases", now, self.credits.live_leases() as f64);
        for q in 0..self.credits.num_queues() {
            let Some(p) = self.credits.partition(q) else {
                continue;
            };
            rec.record_queue("credit_outstanding", q, now, p.outstanding() as f64);
            rec.record_queue("credit_free", q, now, p.free_pool() as f64);
        }
    }

    #[cfg(feature = "trace")]
    fn arm_trace(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(cap));
        self.credits.arm_trace(cap);
    }

    #[cfg(feature = "trace")]
    fn take_trace(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut parts: Vec<Vec<TraceEvent>> = Vec::new();
        let mut dropped = 0u64;
        if let Some(r) = self.tracer.as_mut() {
            parts.push(r.events());
            dropped += r.dropped();
            r.clear();
        }
        let (evs, d) = self.credits.trace_take();
        parts.push(evs);
        dropped += d;
        (merge_events(parts), dropped)
    }

    /// Audit the CEIO-internal ledgers (the state only this policy can
    /// see): Eq. 1 conservation, no-overdraft, and consistency of the
    /// insufficient set `I` with the owed-credit ledger.
    #[cfg(feature = "audit")]
    fn audit_check(
        &self,
        _st: &HostState,
        ctx: &ceio_audit::AuditCtx<'_>,
        sink: &mut ceio_audit::AuditSink,
    ) {
        let cm = &self.credits;
        if !cm.conserved() {
            sink.report(
                ctx,
                "credit-conservation",
                "Eq. 1 violated: assigned + pool + outstanding != total".to_string(),
                vec![
                    ("total", cm.total().to_string()),
                    ("assigned", cm.assigned_total().to_string()),
                    ("free_pool", cm.free_pool().to_string()),
                    ("outstanding", cm.outstanding().to_string()),
                ],
            );
        }
        if cm.outstanding() > cm.total() {
            sink.report(
                ctx,
                "no-overdraft",
                "credits held by in-flight packets exceed the configured total".to_string(),
                vec![
                    ("total", cm.total().to_string()),
                    ("outstanding", cm.outstanding().to_string()),
                ],
            );
        }
        for flow in self.ctl.keys() {
            let in_i = cm.in_insufficient(*flow);
            let debt = cm.debt_of(*flow);
            if in_i != (debt > 0) {
                sink.report(
                    ctx,
                    "insufficient-set-consistency",
                    format!(
                        "flow {}: insufficient-set membership disagrees with the owed ledger",
                        flow.0
                    ),
                    vec![
                        ("flow", flow.0.to_string()),
                        ("in_insufficient", in_i.to_string()),
                        ("debt", debt.to_string()),
                    ],
                );
            }
        }
    }
}
