//! # ceio-core — the CEIO architecture (the paper's contribution)
//!
//! CEIO is an I/O manager at the entrance of the I/O data path — the NIC —
//! built from two mechanisms:
//!
//! 1. **Proactive, credit-based flow control** (§4.1, [`credit`],
//!    [`policy`]): every packet consumes a credit before it may be DMAed
//!    toward the LLC; the credit total equals the DDIO-reachable LLC
//!    capacity divided by the I/O buffer size (Eq. 1), so the in-flight I/O
//!    volume can never overflow the cache. Credits are released *lazily*,
//!    only when the driver advances a ring head pointer after a batch of
//!    messages — which CPU-involved (polled, small-message) flows do
//!    continuously and CPU-bypass (completion-signalled, huge-message)
//!    flows do rarely, so bypass flows drain their credits and degrade to
//!    the slow path without any explicit priority tagging. Algorithm 1
//!    ([`credit::CreditManager`]) governs reallocation when flows arrive,
//!    with an owed-credit ledger for flows that could not contribute their
//!    fair share immediately.
//! 2. **Elastic buffering** (§4.2, [`swring`], [`policy`]): packets that
//!    cannot obtain a credit are steered — by rewriting the flow's RMT
//!    rule — into on-NIC memory instead of being dropped, avoiding the
//!    spurious congestion-control triggers that plague fixed-capacity
//!    schemes. A software ring unifies the fast-path and slow-path hardware
//!    rings behind ordered `recv()` / non-blocking `async_recv()` APIs;
//!    **phase exclusivity** (the fast path stays paused while slow-path
//!    packets exist) preserves per-flow ordering with no per-packet
//!    metadata, and asynchronous DMA reads overlap slow-path fetches with
//!    fast-path processing.
//!
//! [`CeioPolicy`] plugs both mechanisms into the `ceio-host` machine as an
//! `IoPolicy`; [`CeioConfig`] exposes the ablation switches the evaluation
//! sweeps (sync vs async fetch, credit reallocation on/off — Table 4).
//! [`MpqPolicy`] is the §4.1 design alternative (PIAS-style multiple
//! priority queues) the paper rejects, kept executable so the rejection is
//! measurable (ablation D).

#![warn(missing_docs)]

pub mod config;
pub mod credit;
pub mod driver;
pub mod mpq;
pub mod policy;
pub mod sharded;
pub mod swring;

pub use config::CeioConfig;
pub use credit::CreditManager;
pub use driver::{BufHandle, BufOrigin, CeioDriver, Delivery, DriverRecv};
pub use mpq::{MpqConfig, MpqPolicy};
pub use policy::CeioPolicy;
pub use sharded::ShardedCredits;
pub use swring::{RecvOutcome, SwRing};
