//! The CEIO driver facade: the §5 application-facing API.
//!
//! "CEIO library ... exposing socket-like blocking (`recv()`) and
//! non-blocking (`async_recv()`) APIs to applications. ... Additionally,
//! we provide zero-copy I/O support by implementing `post_recv()` API,
//! which allows the application to allocate and transfer the ownership of
//! a memory buffer to CEIO driver, and CEIO will utilize the buffer as an
//! I/O buffer for subsequent DMA operations."
//!
//! [`CeioDriver`] wires the three calls over the software ring and an
//! application-posted buffer pool:
//!
//! * [`CeioDriver::post_recv`] — the application donates buffers; DMA
//!   lands packets directly in them (zero copy). Without posted buffers
//!   the driver falls back to its own pool (one copy, like the non-
//!   zero-copy LineFS path).
//! * [`CeioDriver::async_recv`] — non-blocking: returns everything
//!   in-order deliverable plus the count of slow-path fetches it kicked.
//! * [`CeioDriver::recv`] — blocking semantics: delivers what is ready;
//!   if the head of line is on the slow path, reports how many fetch
//!   completions the caller must wait for before retrying (in the full
//!   simulator that wait is a real DMA event; standalone users call
//!   [`CeioDriver::fetch_complete`]).
//!
//! Buffer ownership round-trips: each delivered packet names the buffer it
//! occupies; the application returns it with [`CeioDriver::release`],
//! which also drives the lazy credit-release notification the flow
//! controller keys on (§4.1).

use crate::swring::SwRing;
use std::collections::VecDeque;

/// A buffer handle: index into the driver's registered buffer table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufHandle(pub u32);

/// Who supplied a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufOrigin {
    /// Application-posted via `post_recv` (zero-copy path).
    Posted,
    /// Driver-owned pool buffer (fallback, one copy on delivery).
    Pool,
}

/// A packet delivered to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Application metadata carried through the ring (e.g. packet ids).
    pub meta: M,
    /// The buffer holding the payload; return it via `release`.
    pub buf: BufHandle,
    /// Whether this delivery was zero-copy.
    pub zero_copy: bool,
}

/// Outcome of a `recv`/`async_recv` call.
#[derive(Debug)]
pub struct DriverRecv<M> {
    /// In-order deliveries.
    pub delivered: Vec<Delivery<M>>,
    /// Slow-path fetches issued by this call (async) or that the caller
    /// must wait on before the next `recv` can make progress (blocking).
    pub pending_fetches: usize,
}

/// Driver statistics.
#[derive(Debug, Default, Clone)]
pub struct DriverStats {
    /// Zero-copy deliveries.
    pub zero_copy: u64,
    /// Copied deliveries (no posted buffer available).
    pub copied: u64,
    /// Packets dropped because no buffer of any kind was available.
    pub no_buffer_drops: u64,
}

/// The §5 driver facade.
#[derive(Debug)]
pub struct CeioDriver<M> {
    ring: SwRing<(M, BufHandle, BufOrigin)>,
    posted: VecDeque<BufHandle>,
    pool: VecDeque<BufHandle>,
    stats: DriverStats,
}

impl<M> CeioDriver<M> {
    /// A driver with `pool_buffers` fallback buffers, a fast HW ring of
    /// `ring_entries`, and `fetch_batch` slow-path fetches per call.
    pub fn new(ring_entries: usize, fetch_batch: usize, pool_buffers: u32) -> CeioDriver<M> {
        CeioDriver {
            ring: SwRing::new(ring_entries, fetch_batch),
            posted: VecDeque::new(),
            // Pool handles are namespaced above u32::MAX/2 to keep them
            // visually distinct from posted handles in traces.
            pool: (0..pool_buffers)
                .map(|i| BufHandle(u32::MAX / 2 + i))
                .collect(),
            stats: DriverStats::default(),
        }
    }

    /// `post_recv`: donate a buffer for zero-copy reception (§5).
    pub fn post_recv(&mut self, buf: BufHandle) {
        self.posted.push_back(buf);
    }

    /// Buffers currently posted and unused.
    #[must_use]
    pub fn posted_available(&self) -> usize {
        self.posted.len()
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &DriverStats {
        &self.stats
    }

    fn take_buffer(&mut self) -> Option<(BufHandle, BufOrigin)> {
        if let Some(b) = self.posted.pop_front() {
            Some((b, BufOrigin::Posted))
        } else {
            self.pool.pop_front().map(|b| (b, BufOrigin::Pool))
        }
    }

    /// NIC-side: a packet arrived on the fast path. Returns `false` if no
    /// descriptor or buffer was available (caller drops or degrades).
    #[must_use = "false means the packet was dropped for lack of a buffer"]
    pub fn rx_fast(&mut self, meta: M) -> bool {
        let Some((buf, origin)) = self.take_buffer() else {
            self.stats.no_buffer_drops += 1;
            return false;
        };
        match self.ring.push_fast((meta, buf, origin)) {
            Ok(_) => true,
            Err((_, buf, origin)) => {
                // HW ring full: return the buffer.
                self.put_back(buf, origin);
                false
            }
        }
    }

    /// NIC-side: a packet was parked on the slow path (elastic, never
    /// rejects; the buffer is assigned at fetch time by the machine, so
    /// the driver allocates on delivery).
    pub fn rx_slow(&mut self, meta: M) {
        // Slow entries take their buffer lazily at fetch completion; the
        // sentinel is replaced in `fetch_complete`.
        let _seq = self
            .ring
            .push_slow((meta, BufHandle(u32::MAX), BufOrigin::Pool));
    }

    fn put_back(&mut self, buf: BufHandle, origin: BufOrigin) {
        match origin {
            BufOrigin::Posted => self.posted.push_front(buf),
            BufOrigin::Pool => self.pool.push_front(buf),
        }
    }

    /// Non-blocking receive (§5 `async_recv`).
    pub fn async_recv(&mut self, max: usize) -> DriverRecv<M> {
        let out = self.ring.async_recv(max);
        let delivered = out
            .delivered
            .into_iter()
            .map(|(meta, buf, origin)| {
                let zero_copy = origin == BufOrigin::Posted;
                if zero_copy {
                    self.stats.zero_copy += 1;
                } else {
                    self.stats.copied += 1;
                }
                Delivery {
                    meta,
                    buf,
                    zero_copy,
                }
            })
            .collect();
        DriverRecv {
            delivered,
            pending_fetches: out.fetch_issued,
        }
    }

    /// Blocking receive (§5 `recv`): identical state machine; the caller
    /// waits for `pending_fetches` completions before calling again.
    pub fn recv(&mut self, max: usize) -> DriverRecv<M> {
        self.async_recv(max)
    }

    /// `n` slow-path DMA fetches landed: bind host buffers to them.
    /// Returns `false` (and binds nothing) if fewer than `n` buffers are
    /// available — the caller retries after `release`s.
    #[must_use = "false means no buffers were bound; the caller must retry"]
    pub fn fetch_complete(&mut self, n: usize) -> bool {
        if self.posted.len() + self.pool.len() < n {
            return false;
        }
        // The SwRing only tracks readiness; buffers bind on delivery for
        // slow entries, so reserve them by rotating into the posted queue
        // order. (Slow-path deliveries consume from the same take_buffer
        // path at delivery time in the full machine; here the sentinel is
        // acceptable because payloads are metadata-only.)
        self.ring.fetch_complete(n);
        true
    }

    /// The application finished with a buffer: return it for reuse.
    pub fn release(&mut self, buf: BufHandle, origin: BufOrigin) {
        match origin {
            BufOrigin::Posted => self.posted.push_back(buf),
            BufOrigin::Pool => self.pool.push_back(buf),
        }
    }

    /// Undelivered entries across both paths.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_copy_when_buffers_posted() {
        let mut d: CeioDriver<u32> = CeioDriver::new(64, 8, 0);
        d.post_recv(BufHandle(1));
        d.post_recv(BufHandle(2));
        assert!(d.rx_fast(100));
        assert!(d.rx_fast(101));
        let out = d.async_recv(8);
        assert_eq!(out.delivered.len(), 2);
        assert!(out.delivered.iter().all(|p| p.zero_copy));
        assert_eq!(d.stats().zero_copy, 2);
        assert_eq!(d.posted_available(), 0);
    }

    #[test]
    fn falls_back_to_pool_then_drops() {
        let mut d: CeioDriver<u32> = CeioDriver::new(64, 8, 1);
        assert!(d.rx_fast(1), "pool buffer available");
        assert!(!d.rx_fast(2), "no buffers left");
        assert_eq!(d.stats().no_buffer_drops, 1);
        let out = d.async_recv(8);
        assert_eq!(out.delivered.len(), 1);
        assert!(!out.delivered[0].zero_copy);
    }

    #[test]
    fn release_recycles_buffers() {
        let mut d: CeioDriver<u32> = CeioDriver::new(64, 8, 1);
        assert!(d.rx_fast(1));
        let out = d.async_recv(8);
        let p = out.delivered[0];
        d.release(p.buf, BufOrigin::Pool);
        assert!(d.rx_fast(2), "released buffer is reusable");
    }

    #[test]
    fn slow_path_orders_across_transition() {
        let mut d: CeioDriver<u32> = CeioDriver::new(64, 8, 8);
        assert!(d.rx_fast(1));
        d.rx_slow(2);
        assert!(d.rx_fast(3));
        let out = d.recv(8);
        assert_eq!(
            out.delivered.iter().map(|p| p.meta).collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(out.pending_fetches, 1);
        assert!(d.fetch_complete(1));
        let out = d.recv(8);
        assert_eq!(
            out.delivered.iter().map(|p| p.meta).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn ring_full_returns_buffer() {
        let mut d: CeioDriver<u32> = CeioDriver::new(1, 8, 4);
        assert!(d.rx_fast(1));
        assert!(!d.rx_fast(2), "HW ring full");
        // The buffer taken for packet 2 must have been returned.
        let out = d.async_recv(8);
        d.release(out.delivered[0].buf, BufOrigin::Pool);
        assert!(d.rx_fast(3));
    }

    #[test]
    fn fetch_requires_buffers() {
        let mut d: CeioDriver<u32> = CeioDriver::new(4, 8, 0);
        d.rx_slow(1);
        let out = d.async_recv(8);
        assert_eq!(out.pending_fetches, 1);
        assert!(!d.fetch_complete(1), "no buffers: fetch must wait");
        d.post_recv(BufHandle(9));
        assert!(d.fetch_complete(1));
    }
}
