//! Hierarchical credit ledger for the multi-queue receive path.
//!
//! The single-queue pipeline runs one [`CreditManager`] sized by Eq. 1.
//! With N receive queues the DDIO budget is *partitioned*: each queue owns
//! a [`CreditManager`] seeded with its fair share of `C_total`, and a
//! **global free pool** holds slack in transit between partitions. Flows
//! are routed to partitions by the same RSS hash that shards them onto
//! receive queues ([`rss_queue`]), so a queue's admission decisions touch
//! only its own partition — the contention-free property that makes the
//! sharding worthwhile.
//!
//! Conservation becomes a two-level invariant:
//!
//! ```text
//! per partition q:  assigned_q + pool_q + outstanding_q == total_q   (Eq. 1)
//! globally:         Σ_q total_q + global_free == C_total
//! ```
//!
//! Slack migrates only through the conservation-preserving primitives
//! [`CreditManager::withdraw_pool`] (partition → global, free credits
//! only) and [`CreditManager::inject_pool`] (global → partition), so both
//! levels hold after every operation; [`ShardedCredits::conserved`] checks
//! them together and the audit layer asserts it after every event.
//!
//! With `num_queues == 1` the wrapper degenerates to a single partition
//! that owns the whole budget and a permanently empty global pool: every
//! operation forwards verbatim to the inner manager, keeping the
//! single-queue pipeline bit-identical to the pre-sharding model.

use crate::credit::{CreditManager, CreditStats};
use ceio_net::FlowId;
use ceio_nic::rss_queue;
use ceio_sim::{Duration, Time};
#[cfg(feature = "trace")]
use ceio_telemetry::{merge_events, TraceEvent};

/// The hierarchical (global pool + per-queue partitions) credit ledger.
#[derive(Debug, Clone)]
pub struct ShardedCredits {
    /// One Algorithm 1 ledger per receive queue.
    parts: Vec<CreditManager>,
    /// Slack in transit between partitions (always 0 when `parts.len() == 1`).
    global_free: u64,
    /// The grand total, `C_total` (Eq. 1 across the whole hierarchy).
    configured_total: u64,
    /// Each partition's fair share of `C_total` — the set point
    /// `rebalance` steers totals back toward.
    base: Vec<u64>,
    /// Per-partition denial count observed at the previous rebalance, so
    /// pressure detection is a delta, not an absolute.
    denied_at_last: Vec<u64>,
    /// Partitions whose receive queue failed over: their free credits
    /// drain to the global pool and they neither borrow nor receive
    /// granted slack until restored.
    quarantined: Vec<bool>,
}

impl ShardedCredits {
    /// A hierarchy of `num_queues` partitions splitting `total` credits.
    ///
    /// The integer remainder of the split goes to partition 0 so the grand
    /// total is exact from the start (`global_free` begins at 0).
    pub fn new(total: u64, num_queues: usize) -> ShardedCredits {
        let n = num_queues.max(1);
        let per = total / n as u64;
        let rem = total % n as u64;
        let mut parts = Vec::with_capacity(n);
        let mut base = Vec::with_capacity(n);
        for q in 0..n {
            let share = per + if q == 0 { rem } else { 0 };
            parts.push(CreditManager::new(share));
            base.push(share);
        }
        ShardedCredits {
            parts,
            global_free: 0,
            configured_total: total,
            base,
            denied_at_last: vec![0; n],
            quarantined: vec![false; n],
        }
    }

    /// Partition index for a flow — the same RSS shard that routes its
    /// packets to a receive queue.
    #[inline]
    #[must_use]
    pub fn partition_of(&self, f: FlowId) -> usize {
        rss_queue(f.0, self.parts.len()).index()
    }

    /// Number of partitions (== receive queues).
    #[inline]
    #[must_use]
    pub fn num_queues(&self) -> usize {
        self.parts.len()
    }

    /// Read-only view of one partition's ledger (for telemetry and tests).
    #[must_use]
    pub fn partition(&self, q: usize) -> Option<&CreditManager> {
        self.parts.get(q)
    }

    /// Credits currently parked in the global pool.
    #[inline]
    #[must_use]
    pub fn global_free(&self) -> u64 {
        self.global_free
    }

    /// The configured grand total, `C_total`.
    #[inline]
    #[must_use]
    pub fn total(&self) -> u64 {
        self.configured_total
    }

    /// Credits held by in-flight packets, across all partitions.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.parts.iter().map(|p| p.outstanding()).sum()
    }

    /// Free credits across all partition pools plus the global pool.
    #[must_use]
    pub fn free_pool(&self) -> u64 {
        self.parts.iter().map(|p| p.free_pool()).sum::<u64>() + self.global_free
    }

    /// Credits currently assigned to flows, across all partitions.
    #[must_use]
    pub fn assigned_total(&self) -> u64 {
        self.parts.iter().map(|p| p.assigned_total()).sum()
    }

    /// Managed flows across all partitions.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.parts.iter().map(|p| p.flow_count()).sum()
    }

    /// Current credits of a flow (0 if unknown).
    #[must_use]
    pub fn credits(&self, f: FlowId) -> u64 {
        self.parts[self.partition_of(f)].credits(f)
    }

    /// Whether a flow is in its partition's insufficient set `I`.
    #[must_use]
    pub fn in_insufficient(&self, f: FlowId) -> bool {
        self.parts[self.partition_of(f)].in_insufficient(f)
    }

    /// Total debt a flow owes within its partition.
    #[must_use]
    pub fn debt_of(&self, f: FlowId) -> u64 {
        self.parts[self.partition_of(f)].debt_of(f)
    }

    /// Two-level conservation: Eq. 1 inside every partition, and the
    /// partition totals plus the global pool summing to `C_total`.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.parts.iter().all(|p| p.conserved())
            && self.parts.iter().map(|p| p.total()).sum::<u64>() + self.global_free
                == self.configured_total
    }

    /// Aggregated statistics across all partitions (owned: the per-field
    /// sums are computed on demand).
    #[must_use]
    pub fn stats(&self) -> CreditStats {
        let mut out = CreditStats::default();
        for p in self.parts.iter() {
            let s = p.stats();
            out.consumed += s.consumed;
            out.denied += s.denied;
            out.debts_repaid += s.debts_repaid;
            out.reclaims += s.reclaims;
            out.lease_reclaims += s.lease_reclaims;
            out.stale_releases += s.stale_releases;
        }
        out
    }

    /// Arm per-grant leases on every partition.
    pub fn enable_leases(&mut self, ttl: Duration) {
        for p in self.parts.iter_mut() {
            p.enable_leases(ttl);
        }
    }

    /// Whether leases are armed (uniform across partitions).
    #[must_use]
    pub fn leases_enabled(&self) -> bool {
        self.parts.iter().any(|p| p.leases_enabled())
    }

    /// Live leases across all partitions.
    #[must_use]
    pub fn live_leases(&self) -> u64 {
        self.parts.iter().map(|p| p.live_leases()).sum()
    }

    /// Stamp the lease clock on every partition.
    #[inline]
    pub fn set_now(&mut self, now: Time) {
        for p in self.parts.iter_mut() {
            p.set_now(now);
        }
    }

    /// Run the lease watchdog on every partition; returns total reclaimed.
    #[must_use]
    pub fn expire_leases(&mut self) -> u64 {
        self.parts.iter_mut().map(|p| p.expire_leases()).sum()
    }

    /// Arm event recording on every partition.
    #[cfg(feature = "trace")]
    pub fn arm_trace(&mut self, cap: usize) {
        for p in self.parts.iter_mut() {
            p.arm_trace(cap);
        }
    }

    /// Stamp the trace clock on every partition.
    #[cfg(feature = "trace")]
    #[inline]
    pub fn set_trace_now(&mut self, now: Time) {
        for p in self.parts.iter_mut() {
            p.set_trace_now(now);
        }
    }

    /// Drain recorded events from every partition, merged in time order.
    #[cfg(feature = "trace")]
    pub fn trace_take(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut parts_evs: Vec<Vec<TraceEvent>> = Vec::new();
        let mut dropped = 0u64;
        for p in self.parts.iter_mut() {
            let (evs, d) = p.trace_take();
            parts_evs.push(evs);
            dropped += d;
        }
        (merge_events(parts_evs), dropped)
    }

    /// Algorithm 1 assignment, routed: each new flow joins its RSS
    /// partition's ledger (grouped so one batch per partition runs).
    pub fn add_flows(&mut self, new: &[FlowId]) {
        if self.parts.len() == 1 {
            self.parts[0].add_flows(new);
            return;
        }
        let mut per_part: Vec<Vec<FlowId>> = vec![Vec::new(); self.parts.len()];
        for f in new {
            per_part[self.partition_of(*f)].push(*f);
        }
        for (q, flows) in per_part.into_iter().enumerate() {
            if !flows.is_empty() {
                self.parts[q].add_flows(&flows);
            }
        }
        debug_assert!(
            self.conserved(),
            "add_flows broke hierarchical conservation"
        );
    }

    /// Remove a flow from its partition.
    pub fn remove_flow(&mut self, f: FlowId) {
        let q = self.partition_of(f);
        self.parts[q].remove_flow(f);
    }

    /// Consume one credit from the flow's partition.
    #[must_use = "admission result decides fast vs slow path"]
    pub fn try_consume(&mut self, f: FlowId) -> bool {
        let q = self.partition_of(f);
        self.parts[q].try_consume(f)
    }

    /// Lazy release into the flow's partition.
    pub fn release(&mut self, f: FlowId, gamma: u64) {
        let q = self.partition_of(f);
        self.parts[q].release(f, gamma);
    }

    /// Release into the flow's partition pool (deprioritized flows).
    pub fn release_to_pool(&mut self, f: FlowId, gamma: u64) {
        let q = self.partition_of(f);
        self.parts[q].release_to_pool(f, gamma);
    }

    /// Reclaim an inactive flow's credits into its partition pool.
    #[must_use = "returns the number of credits actually reclaimed"]
    pub fn reclaim(&mut self, f: FlowId) -> u64 {
        let q = self.partition_of(f);
        self.parts[q].reclaim(f)
    }

    /// Grant up to `amount` from the flow's partition pool.
    #[must_use = "returns the number of credits actually granted"]
    pub fn grant(&mut self, f: FlowId, amount: u64) -> u64 {
        let q = self.partition_of(f);
        self.parts[q].grant(f, amount)
    }

    /// Grant pooled credits evenly to `targets`, respecting partition
    /// boundaries: any global slack is first pushed down evenly to the
    /// partitions that have live targets, then each partition grants its
    /// own pool to its own flows.
    pub fn grant_evenly(&mut self, targets: &[FlowId]) {
        if self.parts.len() == 1 {
            self.parts[0].grant_evenly(targets);
            return;
        }
        let mut per_part: Vec<Vec<FlowId>> = vec![Vec::new(); self.parts.len()];
        for f in targets {
            per_part[self.partition_of(*f)].push(*f);
        }
        if self.global_free > 0 {
            let live: Vec<usize> = (0..self.parts.len())
                .filter(|&q| !per_part[q].is_empty() && !self.quarantined[q])
                .collect();
            if !live.is_empty() {
                let per = self.global_free / live.len() as u64;
                if per > 0 {
                    for &q in &live {
                        self.parts[q].inject_pool(per);
                        self.global_free -= per;
                    }
                }
            }
        }
        for (q, flows) in per_part.into_iter().enumerate() {
            if !flows.is_empty() {
                self.parts[q].grant_evenly(&flows);
            }
        }
        debug_assert!(
            self.conserved(),
            "grant_evenly broke hierarchical conservation"
        );
    }

    /// One borrow/return cycle of the hierarchical ledger, run from the
    /// controller poll. Deterministic, ascending queue order:
    ///
    /// 1. **Return**: a partition that denied nothing since the previous
    ///    rebalance yields its free pool to the global pool
    ///    (`withdraw_pool` — credits assigned to its flows and credits
    ///    riding in-flight packets never move, so a quiet-but-working
    ///    partition keeps everything its flows are actually using).
    /// 2. **Borrow**: a partition that denied admissions takes slack from
    ///    the global pool, bounded by both its unmet demand (the denial
    ///    delta) and a 2× base-share cap on its total, so one hot queue
    ///    cannot starve the rest forever.
    ///
    /// Returns `(returned, borrowed)` credit counts for telemetry. A
    /// single-partition hierarchy is a no-op by construction.
    pub fn rebalance(&mut self) -> (u64, u64) {
        if self.parts.len() <= 1 {
            return (0, 0);
        }
        let mut returned = 0u64;
        let mut borrowed = 0u64;
        // Phase 1: quiet partitions yield their (unassigned) free pool.
        // Quarantined partitions always yield, pressured or not: credits
        // trickling back through lazy releases after the failover must
        // keep draining to the global pool, not re-fund a dead queue.
        for q in 0..self.parts.len() {
            let denied_delta = self.parts[q].stats().denied - self.denied_at_last[q];
            let spare = self.parts[q].free_pool();
            if (denied_delta == 0 || self.quarantined[q]) && spare > 0 {
                let got = self.parts[q].withdraw_pool(spare);
                self.global_free += got;
                returned += got;
            }
        }
        // Phase 2: pressured partitions borrow, bounded. Quarantined
        // partitions never borrow.
        for q in 0..self.parts.len() {
            if self.global_free == 0 {
                break;
            }
            if self.quarantined[q] {
                continue;
            }
            let denied_delta = self.parts[q].stats().denied - self.denied_at_last[q];
            if denied_delta == 0 {
                continue;
            }
            let headroom = (2 * self.base[q]).saturating_sub(self.parts[q].total());
            let take = denied_delta.min(headroom).min(self.global_free);
            if take > 0 {
                self.parts[q].inject_pool(take);
                self.global_free -= take;
                borrowed += take;
            }
        }
        for q in 0..self.parts.len() {
            self.denied_at_last[q] = self.parts[q].stats().denied;
        }
        debug_assert!(
            self.conserved(),
            "rebalance broke hierarchical conservation"
        );
        (returned, borrowed)
    }

    /// Whether partition `q` is quarantined (its receive queue failed
    /// over and has not yet recovered).
    #[must_use]
    pub fn is_quarantined(&self, q: usize) -> bool {
        self.quarantined.get(q).copied().unwrap_or(false)
    }

    /// Quarantine partition `q` after its receive queue failed over: its
    /// entire free pool moves to the global pool (conservation-preserving
    /// — only *free* credits migrate; assigned and outstanding balances
    /// stay in the partition and drain back through the normal release
    /// paths, from where [`ShardedCredits::rebalance`] keeps sweeping
    /// them global until the partition is restored). While quarantined
    /// the partition neither borrows at rebalance nor receives
    /// granted-down global slack. Idempotent; returns the credits moved.
    #[must_use = "the swept credit count feeds the failover accounting"]
    pub fn quarantine_partition(&mut self, q: usize) -> u64 {
        if q >= self.parts.len() || self.quarantined[q] {
            return 0;
        }
        self.quarantined[q] = true;
        let spare = self.parts[q].free_pool();
        let got = self.parts[q].withdraw_pool(spare);
        self.global_free += got;
        debug_assert!(
            self.conserved(),
            "quarantine_partition broke hierarchical conservation"
        );
        got
    }

    /// Restore partition `q` after its receive queue recovered: lift the
    /// quarantine and refill the partition back toward its base share
    /// from the global pool (bounded by both the base-share deficit and
    /// the slack actually available — never minting, never raiding other
    /// partitions). Idempotent; returns the credits returned.
    #[must_use = "the refilled credit count feeds the recovery accounting"]
    pub fn restore_partition(&mut self, q: usize) -> u64 {
        if q >= self.parts.len() || !self.quarantined[q] {
            return 0;
        }
        self.quarantined[q] = false;
        let deficit = self.base[q].saturating_sub(self.parts[q].total());
        let give = deficit.min(self.global_free);
        if give > 0 {
            self.parts[q].inject_pool(give);
            self.global_free -= give;
        }
        debug_assert!(
            self.conserved(),
            "restore_partition broke hierarchical conservation"
        );
        give
    }

    /// Deliberately leak one credit from partition `q`'s free pool without
    /// a balancing entry — a per-partition Eq. 1 violation (see
    /// [`CreditManager::leak_credit_for_tests`]). Only compiled in test
    /// builds or under the `chaos` feature; the bounded model checker in
    /// `crates/audit` uses it to prove the hierarchical conservation check
    /// catches real bugs.
    #[cfg(any(test, feature = "chaos"))]
    pub fn leak_partition_credit_for_tests(&mut self, q: usize) {
        self.parts[q].leak_credit_for_tests();
    }

    /// Deliberately mint one credit into the global pool out of thin air —
    /// a hierarchy-level conservation violation (`Σ total_q + global_free`
    /// exceeds `C_total`). Only compiled in test builds or under the
    /// `chaos` feature.
    #[cfg(any(test, feature = "chaos"))]
    pub fn mint_global_credit_for_tests(&mut self) {
        self.global_free += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<FlowId> {
        v.iter().map(|&i| FlowId(i)).collect()
    }

    /// A flow landing in partition `q` of an `n`-way hierarchy (search by
    /// hash, so tests stay valid if the RSS finalizer ever changes).
    fn flow_in(sc: &ShardedCredits, q: usize) -> FlowId {
        for i in 0..10_000u32 {
            if sc.partition_of(FlowId(i)) == q {
                return FlowId(i);
            }
        }
        unreachable!("no flow hashes to partition {q}");
    }

    #[test]
    fn single_partition_matches_flat_manager() {
        let mut sc = ShardedCredits::new(3000, 1);
        let mut cm = CreditManager::new(3000);
        sc.add_flows(&ids(&[1, 2, 3]));
        cm.add_flows(&ids(&[1, 2, 3]));
        for f in 1..=3u32 {
            assert_eq!(sc.credits(FlowId(f)), cm.credits(FlowId(f)));
            assert!(sc.try_consume(FlowId(f)));
            assert!(cm.try_consume(FlowId(f)));
        }
        sc.release(FlowId(1), 1);
        cm.release(FlowId(1), 1);
        assert_eq!(sc.outstanding(), cm.outstanding());
        assert_eq!(sc.free_pool(), cm.free_pool());
        assert_eq!(sc.total(), cm.total());
        assert_eq!(sc.rebalance(), (0, 0));
        assert!(sc.conserved());
    }

    #[test]
    fn split_seeds_partitions_exactly() {
        let sc = ShardedCredits::new(3001, 4);
        let totals: Vec<u64> = (0..4)
            .map(|q| sc.partition(q).map(|p| p.total()).unwrap_or(0))
            .collect();
        assert_eq!(totals.iter().sum::<u64>(), 3001);
        // Remainder lands on partition 0.
        assert_eq!(totals[0], 750 + 1);
        assert_eq!(sc.global_free(), 0);
        assert!(sc.conserved());
    }

    #[test]
    fn flows_route_to_their_rss_partition() {
        let mut sc = ShardedCredits::new(4000, 4);
        let flows = ids(&[0, 1, 2, 3, 4, 5, 6, 7]);
        sc.add_flows(&flows);
        for f in &flows {
            let q = sc.partition_of(*f);
            assert!(
                sc.partition(q).map(|p| p.credits(*f) > 0).unwrap_or(false),
                "flow {} not funded by its partition {q}",
                f.0
            );
            // And is unknown everywhere else.
            for other in 0..4 {
                if other != q {
                    assert_eq!(sc.partition(other).map(|p| p.credits(*f)), Some(0));
                }
            }
        }
        assert!(sc.conserved());
    }

    #[test]
    fn rebalance_moves_slack_to_pressured_partition() {
        let mut sc = ShardedCredits::new(4000, 4);
        let hot = flow_in(&sc, 2);
        sc.add_flows(&[hot]);
        // Exhaust the hot partition so it registers denials.
        while sc.try_consume(hot) {}
        assert!(!sc.try_consume(hot));
        let hot_total_before = sc.partition(2).map(|p| p.total()).unwrap_or(0);
        let (returned, borrowed) = sc.rebalance();
        // Quiet partitions (0,1,3) hold only free credits: all of it moves.
        assert!(returned > 0, "quiet partitions must yield slack");
        assert!(borrowed > 0, "pressured partition must borrow");
        assert!(sc.partition(2).map(|p| p.total()).unwrap_or(0) > hot_total_before);
        // Borrow is bounded by unmet demand and the 2x-base cap.
        assert!(
            sc.partition(2).map(|p| p.total()).unwrap_or(0) <= 2 * 1000,
            "borrow must respect the 2x base cap"
        );
        assert!(sc.conserved());
        // The borrowed slack is free in the hot partition: admission resumes.
        let _ = sc.grant(hot, 1);
        assert!(sc.try_consume(hot));
        assert!(sc.conserved());
    }

    #[test]
    fn quiet_partition_reclaims_only_free_credits() {
        let mut sc = ShardedCredits::new(4000, 4);
        let f0 = flow_in(&sc, 0);
        sc.add_flows(&[f0]);
        // Partition 0 consumes some credits (outstanding) but denies none.
        for _ in 0..10 {
            assert!(sc.try_consume(f0));
        }
        let before = sc.outstanding();
        let (_returned, borrowed) = sc.rebalance();
        assert_eq!(borrowed, 0, "nobody under pressure, nothing borrowed");
        // Outstanding credits never migrate.
        assert_eq!(sc.outstanding(), before);
        assert!(sc.conserved());
    }

    #[test]
    fn grant_evenly_respects_partitions_and_flushes_global_slack() {
        let mut sc = ShardedCredits::new(4000, 4);
        let a = flow_in(&sc, 0);
        let b = flow_in(&sc, 1);
        sc.add_flows(&[a, b]);
        // Manufacture global slack: partitions 2 and 3 are quiet and yield
        // their full (free) base share.
        let (returned, _) = sc.rebalance();
        assert!(returned >= 2000 - 2, "empty partitions yield their share");
        assert!(sc.global_free() > 0);
        let ca = sc.credits(a);
        let cb = sc.credits(b);
        sc.grant_evenly(&[a, b]);
        assert!(sc.credits(a) > ca);
        assert!(sc.credits(b) > cb);
        assert_eq!(sc.global_free(), 0, "slack flushed down to live partitions");
        assert!(sc.conserved());
    }

    #[test]
    fn leases_and_stats_aggregate_across_partitions() {
        let mut sc = ShardedCredits::new(4000, 4);
        sc.enable_leases(Duration::nanos(50));
        let a = flow_in(&sc, 0);
        let b = flow_in(&sc, 1);
        sc.add_flows(&[a, b]);
        sc.set_now(Time(0));
        assert!(sc.try_consume(a));
        assert!(sc.try_consume(b));
        assert_eq!(sc.live_leases(), 2);
        assert_eq!(sc.stats().consumed, 2);
        sc.set_now(Time(100));
        assert_eq!(sc.expire_leases(), 2);
        assert_eq!(sc.stats().lease_reclaims, 2);
        assert_eq!(sc.outstanding(), 0);
        assert!(sc.conserved());
    }

    #[test]
    fn quarantine_moves_free_credits_and_restore_refills() {
        let mut sc = ShardedCredits::new(4000, 4);
        let f = flow_in(&sc, 1);
        sc.add_flows(&[f]);
        for _ in 0..5 {
            assert!(sc.try_consume(f));
        }
        // Park the flow's unconsumed credits in the partition pool so the
        // quarantine has free credits to migrate.
        let _ = sc.reclaim(f);
        let free_before = sc.partition(1).map(|p| p.free_pool()).unwrap_or(0);
        assert!(free_before > 0);
        let out_before = sc.outstanding();
        let moved = sc.quarantine_partition(1);
        assert_eq!(moved, free_before, "exactly the free pool migrates");
        assert!(sc.is_quarantined(1));
        assert_eq!(sc.partition(1).map(|p| p.free_pool()), Some(0));
        assert_eq!(sc.global_free(), moved);
        // Outstanding and assigned balances never migrate.
        assert_eq!(sc.outstanding(), out_before);
        assert!(sc.conserved());
        // Idempotent.
        assert_eq!(sc.quarantine_partition(1), 0);
        // Restore refills toward base from the global pool.
        let returned = sc.restore_partition(1);
        assert!(!sc.is_quarantined(1));
        assert_eq!(returned, moved, "slack untouched, full refill available");
        assert_eq!(sc.global_free(), 0);
        assert!(sc.conserved());
        assert_eq!(sc.restore_partition(1), 0, "restore is idempotent");
    }

    #[test]
    fn quarantined_partition_keeps_draining_and_never_borrows() {
        let mut sc = ShardedCredits::new(4000, 4);
        let f = flow_in(&sc, 2);
        sc.add_flows(&[f]);
        // Exhaust the partition so it registers denials (pressure), then
        // let some in-flight credits come back after the quarantine.
        while sc.try_consume(f) {}
        let _ = sc.quarantine_partition(2);
        sc.release(f, 7);
        let _ = sc.reclaim(f);
        let part_free = sc.partition(2).map(|p| p.free_pool()).unwrap_or(0);
        assert!(part_free > 0, "released credits land in the partition pool");
        let total_before = sc.partition(2).map(|p| p.total()).unwrap_or(0);
        let (returned, _borrowed) = sc.rebalance();
        // Despite its denial pressure the quarantined partition donates
        // its trickled-back credits and borrows nothing.
        assert!(returned >= part_free);
        assert!(sc.partition(2).map(|p| p.total()).unwrap_or(0) <= total_before);
        assert_eq!(sc.partition(2).map(|p| p.free_pool()), Some(0));
        assert!(sc.conserved());
    }

    #[test]
    fn grant_evenly_skips_quarantined_partitions() {
        let mut sc = ShardedCredits::new(4000, 4);
        let a = flow_in(&sc, 0);
        let b = flow_in(&sc, 1);
        sc.add_flows(&[a, b]);
        let _ = sc.rebalance(); // quiet partitions 2,3 yield global slack
        let moved = sc.quarantine_partition(1);
        let slack = sc.global_free();
        assert!(slack >= moved);
        let b_total_before = sc.partition(1).map(|p| p.total()).unwrap_or(0);
        sc.grant_evenly(&[a, b]);
        // All pushed-down slack went to partition 0; the quarantined
        // partition's total is unchanged.
        assert_eq!(sc.partition(1).map(|p| p.total()), Some(b_total_before));
        assert!(sc.credits(a) > 0);
        assert!(sc.conserved());
    }

    #[test]
    fn rebalance_with_no_spare_moves_nothing() {
        let mut sc = ShardedCredits::new(4000, 4);
        // Every partition fully assigns its share to a local flow: no
        // partition holds free credits, so nothing can migrate even
        // though one partition registers pressure.
        let flows: Vec<FlowId> = (0..4).map(|q| flow_in(&sc, q)).collect();
        sc.add_flows(&flows);
        while sc.try_consume(flows[0]) {}
        assert!(!sc.try_consume(flows[0]));
        let (returned, borrowed) = sc.rebalance();
        assert_eq!(returned, 0, "no spare anywhere, nothing returned");
        assert_eq!(borrowed, 0, "empty global pool, nothing borrowed");
        assert!(sc.conserved());
    }

    #[test]
    fn rebalance_borrow_saturates_at_twice_base() {
        let mut sc = ShardedCredits::new(4000, 4);
        let hot = flow_in(&sc, 2);
        sc.add_flows(&[hot]);
        // Deny far more than the 2x-base headroom could ever satisfy.
        for _ in 0..5000 {
            let _ = sc.try_consume(hot);
        }
        let denied = sc.partition(2).map(|p| p.stats().denied).unwrap_or(0);
        assert!(denied > 2000, "demand must exceed the cap: {denied}");
        let (_returned, borrowed) = sc.rebalance();
        let total = sc.partition(2).map(|p| p.total()).unwrap_or(0);
        assert_eq!(total, 2 * 1000, "borrow stops exactly at 2x base");
        assert_eq!(borrowed, 1000);
        // A second rebalance under continued pressure borrows nothing
        // more: the ceiling saturates.
        while sc.try_consume(hot) {}
        let (_r2, b2) = sc.rebalance();
        assert_eq!(b2, 0, "already at the cap");
        assert_eq!(sc.partition(2).map(|p| p.total()), Some(2 * 1000));
        assert!(sc.conserved());
    }

    #[test]
    fn single_queue_rebalance_and_quarantine_are_noops() {
        let mut sc = ShardedCredits::new(3000, 1);
        sc.add_flows(&ids(&[1, 2]));
        assert!(sc.try_consume(FlowId(1)));
        assert_eq!(sc.rebalance(), (0, 0), "one partition: nothing to move");
        assert_eq!(sc.global_free(), 0);
        // Quarantining the only partition still conserves (degenerate but
        // legal: the machine never fails over its last usable queue, yet
        // the ledger must not corrupt if asked).
        let moved = sc.quarantine_partition(0);
        assert!(sc.conserved());
        let back = sc.restore_partition(0);
        assert_eq!(back, moved);
        assert_eq!(sc.global_free(), 0);
        assert!(sc.conserved());
    }

    #[test]
    fn remove_flow_and_pool_release_stay_conserved() {
        let mut sc = ShardedCredits::new(4000, 2);
        let a = flow_in(&sc, 0);
        sc.add_flows(&[a]);
        for _ in 0..5 {
            assert!(sc.try_consume(a));
        }
        sc.remove_flow(a);
        // In-flight credits return to the partition pool post-teardown.
        sc.release(a, 3);
        sc.release_to_pool(a, 2);
        assert_eq!(sc.outstanding(), 0);
        assert!(sc.conserved());
    }
}
