//! Algorithm 1: CEIO credit management.
//!
//! Credits are the unit of LLC admission: one credit ⇔ one I/O buffer's
//! worth of DDIO-reachable cache. The manager maintains the paper's
//! invariant *by construction*:
//!
//! ```text
//! Σ per-flow credits + free pool + credits held by in-flight packets
//!     == C_total                                              (Eq. 1)
//! ```
//!
//! so the LLC can never be overflowed by admitted packets. The three
//! processes of Algorithm 1:
//!
//! * **Assignment** (lines 1–14): when `m` new flows join `n` existing
//!   ones, each flow's fair share becomes `C_total/(n+m)`. Existing flows
//!   that can afford their contribution transfer it immediately; flows that
//!   cannot give everything they have and **owe** the shortfall (ledger
//!   `o_j^i`), recorded in the insufficient set `I`.
//! * **Release** (lines 16–25): credits freed by consumed packets return to
//!   their flow — unless the flow is in `I`, in which case they first repay
//!   creditors, spread evenly (the paper's `max` in lines 21–22 is read as
//!   `min`: a debtor cannot repay more than it owes or more than it has).
//! * **Reclaim/grant** (§4.1 Q3): inactive flows' credits move to a free
//!   pool and are re-granted evenly to active flows.

use ceio_net::FlowId;
use ceio_sim::{Duration, Time};
#[cfg(feature = "trace")]
use ceio_telemetry::{TraceEvent, TraceKind, TraceRing};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Per-flow credit state.
#[derive(Debug, Default, Clone, Serialize)]
struct FlowCredits {
    credits: u64,
    /// Debts to other flows: `owed[j] = o_j^i` (this flow owes `j`).
    owed: BTreeMap<FlowId, u64>,
}

/// Manager statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct CreditStats {
    /// Successful credit consumptions (fast-path admissions).
    pub consumed: u64,
    /// Denied consumptions (slow-path degradations).
    pub denied: u64,
    /// Credits repaid through the owed ledger.
    pub debts_repaid: u64,
    /// Reclaim operations (inactive-flow recycling).
    pub reclaims: u64,
    /// Credits reclaimed by the lease watchdog (a grant whose release
    /// never arrived within the TTL).
    pub lease_reclaims: u64,
    /// Late releases dropped because the watchdog had already reclaimed
    /// their grant (double-return prevention).
    pub stale_releases: u64,
}

/// Per-grant expiry tracking, armed at runtime via
/// [`CreditManager::enable_leases`].
///
/// Every successful [`CreditManager::try_consume`] records a lease that
/// expires `ttl` after the grant; the controller's watchdog
/// ([`CreditManager::expire_leases`]) moves expired grants from
/// `outstanding` back to the free pool, so a *lost* lazy release can no
/// longer strand credits forever. A release that arrives *after* its
/// lease expired finds no live lease and is ignored (the credits were
/// already reclaimed) — this is what keeps Eq. 1 conservation exact in
/// the face of both loss and late delivery.
///
/// Grants are pushed in nondecreasing time order, so each per-flow queue
/// is sorted and expiry is a prefix pop.
#[derive(Debug, Clone)]
struct LeaseTable {
    ttl: Duration,
    now: Time,
    /// Expiry instants of live leases, per flow, oldest first.
    expiries: BTreeMap<FlowId, VecDeque<Time>>,
    /// Live leases across all flows (== `outstanding` when armed from the
    /// first grant; asserted by the audit layer).
    live: u64,
}

/// The CEIO credit manager (Algorithm 1).
///
/// ```
/// use ceio_core::CreditManager;
/// use ceio_net::FlowId;
///
/// // Eq. 1: 6 MB DDIO partition / 2 KB buffers.
/// let mut cm = CreditManager::new(3072);
///
/// // First connection takes the whole budget (S4.1's example).
/// cm.add_flows(&[FlowId(1)]);
/// assert_eq!(cm.credits(FlowId(1)), 3072);
///
/// // A second connection splits it; packets consume and lazily release.
/// cm.add_flows(&[FlowId(2)]);
/// assert_eq!(cm.credits(FlowId(2)), 1536);
/// assert!(cm.try_consume(FlowId(2)));
/// cm.release(FlowId(2), 1);
/// assert!(cm.conserved());
/// ```
#[derive(Debug, Clone)]
pub struct CreditManager {
    total: u64,
    /// Per-flow ledgers, ordered by flow id: Algorithm 1 sweeps this map,
    /// and an ordered map keeps those sweeps deterministic by construction.
    flows: BTreeMap<FlowId, FlowCredits>,
    /// The insufficient set `I`: flows with outstanding debts.
    insufficient: BTreeSet<FlowId>,
    /// Credits not assigned to any flow (rounding residue, reclaimed,
    /// or released by removed flows).
    free_pool: u64,
    /// Credits currently held by in-flight packets.
    outstanding: u64,
    /// Per-grant leases (`None` until armed; one pointer test per hook).
    leases: Option<Box<LeaseTable>>,
    stats: CreditStats,
    #[cfg(feature = "trace")]
    tracer: Option<TraceRing>,
    /// Simulated clock for trace timestamps: the manager is clockless, so
    /// the policy stamps it at each hook entry via
    /// [`CreditManager::set_trace_now`].
    #[cfg(feature = "trace")]
    trace_now: Time,
}

impl CreditManager {
    /// A manager with `total` credits, all in the free pool.
    pub fn new(total: u64) -> CreditManager {
        CreditManager {
            total,
            flows: BTreeMap::new(),
            insufficient: BTreeSet::new(),
            free_pool: total,
            outstanding: 0,
            leases: None,
            stats: CreditStats::default(),
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_now: Time::ZERO,
        }
    }

    /// Arm event recording into a fresh drop-oldest ring of `cap` events.
    #[cfg(feature = "trace")]
    pub fn arm_trace(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(cap));
    }

    /// Stamp the simulated clock used for subsequent trace events (the
    /// manager itself is clockless; callers set this at hook entry).
    #[cfg(feature = "trace")]
    #[inline]
    pub fn set_trace_now(&mut self, now: Time) {
        self.trace_now = now;
    }

    /// Drain recorded events (and the dropped count), if armed.
    #[cfg(feature = "trace")]
    pub fn trace_take(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.tracer.as_mut() {
            Some(r) => {
                let evs = r.events();
                let dropped = r.dropped();
                r.clear();
                (evs, dropped)
            }
            None => (Vec::new(), 0),
        }
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&mut self, flow: FlowId, kind: TraceKind, value: u64) {
        if let Some(r) = self.tracer.as_mut() {
            r.push(TraceEvent {
                at: self.trace_now,
                flow: Some(flow.0),
                kind,
                value,
            });
        }
    }

    /// Configured total (Eq. 1).
    #[inline]
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Credits currently held by in-flight packets.
    #[inline]
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Credits in the free pool.
    #[inline]
    #[must_use]
    pub fn free_pool(&self) -> u64 {
        self.free_pool
    }

    /// Current credits of a flow (0 if unknown).
    #[must_use]
    pub fn credits(&self, f: FlowId) -> u64 {
        self.flows.get(&f).map(|c| c.credits).unwrap_or(0)
    }

    /// Whether a flow is in the insufficient set `I`.
    #[must_use]
    pub fn in_insufficient(&self, f: FlowId) -> bool {
        self.insufficient.contains(&f)
    }

    /// Total debt a flow owes.
    #[must_use]
    pub fn debt_of(&self, f: FlowId) -> u64 {
        self.flows
            .get(&f)
            .map(|c| c.owed.values().sum())
            .unwrap_or(0)
    }

    /// Number of managed flows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &CreditStats {
        &self.stats
    }

    /// Sum of credits currently assigned to flows.
    #[must_use]
    pub fn assigned_total(&self) -> u64 {
        self.flows.values().map(|c| c.credits).sum()
    }

    /// Conservation check: assigned + pool + outstanding == total.
    /// (Debug aid; cheap enough to assert in tests and controller polls.)
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.assigned_total() + self.free_pool + self.outstanding == self.total
    }

    /// Arm per-grant credit leases with the given time-to-live.
    ///
    /// From this point every successful [`CreditManager::try_consume`]
    /// carries a lease; [`CreditManager::expire_leases`] (the controller
    /// watchdog) reclaims grants whose release never arrived within `ttl`.
    /// Arm before the first consumption so `live_leases() == outstanding`
    /// holds throughout (pre-existing outstanding grants are unleased and
    /// can still only return via their release).
    pub fn enable_leases(&mut self, ttl: Duration) {
        self.leases = Some(Box::new(LeaseTable {
            ttl,
            now: Time::ZERO,
            expiries: BTreeMap::new(),
            live: 0,
        }));
    }

    /// Whether leases are armed.
    #[must_use]
    pub fn leases_enabled(&self) -> bool {
        self.leases.is_some()
    }

    /// Live (unexpired, unreleased) leases across all flows. 0 when
    /// leases are disarmed.
    #[must_use]
    pub fn live_leases(&self) -> u64 {
        self.leases.as_ref().map(|l| l.live).unwrap_or(0)
    }

    /// Stamp the simulated clock used for lease grants and expiry. The
    /// manager is clockless, so the policy stamps this at hook entry;
    /// calls are monotone because simulation time is.
    #[inline]
    pub fn set_now(&mut self, now: Time) {
        if let Some(l) = self.leases.as_mut() {
            l.now = now;
        }
    }

    /// Consume up to `gamma` live leases of flow `f` (oldest first) and
    /// return how many were actually live. The difference is the number
    /// of *stale* returns: grants the watchdog already reclaimed, whose
    /// credits must not be returned a second time.
    #[inline]
    fn take_leases(&mut self, f: FlowId, gamma: u64) -> u64 {
        let Some(l) = self.leases.as_mut() else {
            return gamma;
        };
        let Some(q) = l.expiries.get_mut(&f) else {
            self.stats.stale_releases += gamma;
            return 0;
        };
        let take = gamma.min(q.len() as u64);
        for _ in 0..take {
            q.pop_front();
        }
        if q.is_empty() {
            l.expiries.remove(&f);
        }
        l.live -= take;
        self.stats.stale_releases += gamma - take;
        take
    }

    /// Lease watchdog: reclaim every grant whose TTL elapsed, moving its
    /// credit from `outstanding` back to the free pool. Returns the
    /// number of credits reclaimed. Call from the controller poll (the
    /// natural periodic hook); a no-op when leases are disarmed or
    /// nothing expired.
    #[must_use]
    pub fn expire_leases(&mut self) -> u64 {
        let Some(l) = self.leases.as_mut() else {
            return 0;
        };
        let now = l.now;
        let mut expired_total = 0u64;
        #[cfg(feature = "trace")]
        let mut per_flow: Vec<(FlowId, u64)> = Vec::new();
        l.expiries.retain(|_f, q| {
            let mut expired = 0u64;
            while let Some(&e) = q.front() {
                if e <= now {
                    q.pop_front();
                    expired += 1;
                } else {
                    break;
                }
            }
            if expired > 0 {
                #[cfg(feature = "trace")]
                per_flow.push((*_f, expired));
                expired_total += expired;
            }
            !q.is_empty()
        });
        if expired_total > 0 {
            l.live -= expired_total;
            debug_assert!(
                expired_total <= self.outstanding,
                "lease ledger exceeds outstanding grants"
            );
            self.outstanding -= expired_total.min(self.outstanding);
            self.free_pool += expired_total;
            self.stats.lease_reclaims += expired_total;
            #[cfg(feature = "trace")]
            {
                per_flow.sort_unstable_by_key(|&(f, _)| f);
                for (f, n) in per_flow {
                    self.trace(f, TraceKind::CreditLeaseReclaim, n);
                }
            }
        }
        debug_assert!(self.conserved(), "expire_leases broke Eq. 1 conservation");
        expired_total
    }

    /// Algorithm 1, assignment: admit `new` flows, redistributing credits
    /// so each flow converges toward `C_total / (n + m)`.
    pub fn add_flows(&mut self, new: &[FlowId]) {
        let mut fresh: Vec<FlowId> = new
            .iter()
            .copied()
            .filter(|f| !self.flows.contains_key(f))
            .collect();
        // Duplicates within one arrival batch would overwrite each other's
        // allocation (leaking credits); each id joins exactly once.
        fresh.sort_unstable();
        fresh.dedup();
        if fresh.is_empty() {
            return;
        }
        let n = self.flows.len() as u64;
        let m = fresh.len() as u64;
        let c_flow = self.total / (n + m);

        // Target transfer: the new flows collectively need m * c_flow.
        // First take from the free pool, then from existing flows.
        let mut collected = self.free_pool.min(m * c_flow);
        self.free_pool -= collected;

        if n > 0 && collected < m * c_flow {
            let want = m * c_flow - collected;
            // Fair contribution per existing flow (integer ceiling keeps
            // rounding from starving new flows; surplus returns via pool).
            let ideal = want.div_ceil(n);
            // `flows` is ordered, so this visits existing flows in
            // ascending id order — the order Algorithm 1's tests pin.
            let ids: Vec<FlowId> = self.flows.keys().copied().collect();
            for i in ids {
                if collected >= m * c_flow {
                    break;
                }
                let need = (m * c_flow - collected).min(ideal);
                let fc = self
                    .flows
                    .get_mut(&i)
                    .expect("invariant: `ids` only lists flows present in `self.flows`");
                if fc.credits >= need {
                    // Line 4-6: the flow can afford its contribution.
                    fc.credits -= need;
                    collected += need;
                } else {
                    // Lines 8-14: contribute everything, owe the shortfall
                    // to the new flows, spread evenly.
                    let give = fc.credits;
                    fc.credits = 0;
                    collected += give;
                    let shortfall = need - give;
                    let per_new = shortfall / m;
                    let mut rem = shortfall % m;
                    for j in &fresh {
                        let mut share = per_new;
                        if rem > 0 {
                            share += 1;
                            rem -= 1;
                        }
                        if share > 0 {
                            *fc.owed.entry(*j).or_insert(0) += share;
                        }
                    }
                    if fc.owed.values().any(|&o| o > 0) {
                        self.insufficient.insert(i);
                    }
                }
            }
        }

        // Distribute what was collected evenly among the new flows; the
        // remainder goes to the pool (conservation over exactness).
        let per = collected / m;
        let mut rem = collected % m;
        for j in &fresh {
            let mut share = per;
            if rem > 0 {
                share += 1;
                rem -= 1;
            }
            self.flows.insert(
                *j,
                FlowCredits {
                    credits: share,
                    owed: BTreeMap::new(),
                },
            );
        }
        debug_assert!(self.conserved(), "add_flows broke Eq. 1 conservation");
    }

    /// Remove a flow: its credits return to the pool; debts involving it
    /// are forgiven (a promise, not credits, so conservation holds).
    pub fn remove_flow(&mut self, f: FlowId) {
        if let Some(fc) = self.flows.remove(&f) {
            self.free_pool += fc.credits;
        }
        self.insufficient.remove(&f);
        for (i, fc) in self.flows.iter_mut() {
            fc.owed.remove(&f);
            if fc.owed.is_empty() {
                self.insufficient.remove(i);
            }
        }
        debug_assert!(self.conserved(), "remove_flow broke Eq. 1 conservation");
    }

    /// Consume one credit for a packet of flow `f`. Returns `false` (and
    /// counts a denial) when the flow has none — the slow-path trigger.
    #[must_use = "admission result decides fast vs slow path"]
    pub fn try_consume(&mut self, f: FlowId) -> bool {
        let admitted = match self.flows.get_mut(&f) {
            Some(fc) if fc.credits > 0 => {
                fc.credits -= 1;
                self.outstanding += 1;
                self.stats.consumed += 1;
                if let Some(l) = self.leases.as_mut() {
                    l.expiries.entry(f).or_default().push_back(l.now + l.ttl);
                    l.live += 1;
                }
                true
            }
            _ => {
                self.stats.denied += 1;
                false
            }
        };
        #[cfg(feature = "trace")]
        self.trace(
            f,
            if admitted {
                TraceKind::CreditGrant
            } else {
                TraceKind::CreditDeny
            },
            1,
        );
        debug_assert!(self.conserved(), "try_consume broke Eq. 1 conservation");
        admitted
    }

    /// Algorithm 1, release: `gamma` credits return from consumed packets
    /// of flow `f`. Debtors repay creditors first, evenly.
    ///
    /// With leases armed, only grants whose lease is still live actually
    /// return; a late release racing the watchdog is dropped (counted in
    /// [`CreditStats::stale_releases`]) because its credits were already
    /// reclaimed to the pool.
    pub fn release(&mut self, f: FlowId, gamma: u64) {
        let gamma = self.take_leases(f, gamma).min(self.outstanding);
        self.outstanding -= gamma;
        let Some(fc) = self.flows.get_mut(&f) else {
            // Flow torn down: returned credits go to the pool.
            self.free_pool += gamma;
            return;
        };
        let mut remaining = gamma;
        if !fc.owed.is_empty() && remaining > 0 {
            // Even spread across creditors (paper lines 19-25, max→min).
            let creditors: Vec<FlowId> = fc.owed.keys().copied().collect();
            let k = creditors.len() as u64;
            let share = (remaining / k).max(1);
            let mut payments: Vec<(FlowId, u64)> = Vec::new();
            for j in creditors {
                if remaining == 0 {
                    break;
                }
                let owe = fc.owed[&j];
                let pay = owe.min(share).min(remaining);
                if pay > 0 {
                    payments.push((j, pay));
                    remaining -= pay;
                    let o = fc
                        .owed
                        .get_mut(&j)
                        .expect("invariant: `payments` keys come from this flow's `owed` map");
                    *o -= pay;
                    if *o == 0 {
                        fc.owed.remove(&j);
                    }
                }
            }
            let cleared = fc.owed.is_empty();
            fc.credits += remaining;
            if cleared {
                self.insufficient.remove(&f);
            }
            // Deliver the payments to creditors (or pool if gone).
            #[cfg(feature = "trace")]
            let repaid: u64 = payments.iter().map(|&(_, p)| p).sum();
            for (j, pay) in payments {
                self.stats.debts_repaid += pay;
                match self.flows.get_mut(&j) {
                    Some(cj) => cj.credits += pay,
                    None => self.free_pool += pay,
                }
            }
            #[cfg(feature = "trace")]
            if repaid > 0 {
                self.trace(f, TraceKind::CreditOwed, repaid);
            }
        } else {
            fc.credits += remaining;
        }
        debug_assert!(self.conserved(), "release broke Eq. 1 conservation");
    }

    /// Release `gamma` returning credits of flow `f` into the free pool
    /// instead of back to the flow — the §4.1 Q3 reallocation applied to a
    /// flow detected as slow-path resident (likely CPU-bypass): its
    /// returning credits fund fast-path flows rather than re-admitting it.
    pub fn release_to_pool(&mut self, f: FlowId, gamma: u64) {
        let gamma = self.take_leases(f, gamma).min(self.outstanding);
        self.outstanding -= gamma;
        self.free_pool += gamma;
        debug_assert!(self.conserved(), "release_to_pool broke Eq. 1 conservation");
    }

    /// Reclaim all credits of an inactive flow into the free pool (§4.1
    /// Q3). Returns the amount reclaimed.
    #[must_use = "returns the number of credits actually reclaimed"]
    pub fn reclaim(&mut self, f: FlowId) -> u64 {
        let Some(fc) = self.flows.get_mut(&f) else {
            return 0;
        };
        let taken = fc.credits;
        fc.credits = 0;
        self.free_pool += taken;
        if taken > 0 {
            self.stats.reclaims += 1;
            #[cfg(feature = "trace")]
            self.trace(f, TraceKind::CreditReclaim, taken);
        }
        debug_assert!(self.conserved(), "reclaim broke Eq. 1 conservation");
        taken
    }

    /// Grant up to `amount` credits from the free pool to one flow
    /// (round-robin re-activation). Returns the amount actually granted.
    #[must_use = "returns the number of credits actually granted"]
    pub fn grant(&mut self, f: FlowId, amount: u64) -> u64 {
        let Some(fc) = self.flows.get_mut(&f) else {
            return 0;
        };
        let granted = amount.min(self.free_pool);
        fc.credits += granted;
        self.free_pool -= granted;
        #[cfg(feature = "trace")]
        if granted > 0 {
            self.trace(f, TraceKind::CreditPoolGrant, granted);
        }
        debug_assert!(self.conserved(), "grant broke Eq. 1 conservation");
        granted
    }

    /// Grant the free pool evenly to `targets` (re-activation / active-flow
    /// boost). The indivisible remainder stays pooled.
    pub fn grant_evenly(&mut self, targets: &[FlowId]) {
        let live: Vec<FlowId> = targets
            .iter()
            .copied()
            .filter(|f| self.flows.contains_key(f))
            .collect();
        if live.is_empty() || self.free_pool == 0 {
            return;
        }
        let per = self.free_pool / live.len() as u64;
        if per == 0 {
            return;
        }
        for f in &live {
            self.flows
                .get_mut(f)
                .expect("invariant: `live` retains only ids present in `flows`")
                .credits += per;
            self.free_pool -= per;
        }
        debug_assert!(self.conserved(), "grant_evenly broke Eq. 1 conservation");
    }

    /// Lend `amount` credits into this partition's free pool, growing its
    /// configured total by the same amount — the borrow half of the
    /// hierarchical ledger (a per-queue partition taking slack from the
    /// global pool). Eq. 1 keeps holding *within* the partition because
    /// total and pool move together; the *caller* owns the cross-partition
    /// invariant (Σ partition totals + global free == C_total).
    pub fn inject_pool(&mut self, amount: u64) {
        self.total += amount;
        self.free_pool += amount;
        debug_assert!(self.conserved(), "inject_pool broke Eq. 1 conservation");
    }

    /// Take up to `amount` credits out of this partition's free pool,
    /// shrinking its configured total by the same amount — the return half
    /// of the hierarchical ledger (a quiet partition yielding slack back
    /// to the global pool). Only *free* credits can leave: assigned and
    /// outstanding credits stay where Algorithm 1 put them. Returns the
    /// amount actually withdrawn.
    #[must_use = "returns the number of credits actually withdrawn"]
    pub fn withdraw_pool(&mut self, amount: u64) -> u64 {
        let taken = amount.min(self.free_pool);
        self.free_pool -= taken;
        self.total -= taken;
        debug_assert!(self.conserved(), "withdraw_pool broke Eq. 1 conservation");
        taken
    }

    /// Deliberately leak one credit from the free pool **without**
    /// adjusting any other account — a conservation (Eq. 1) violation.
    ///
    /// Only compiled in test builds or under the `chaos` feature; the
    /// audit test suite uses it to prove the invariant layer catches real
    /// bugs (a check that can never fire verifies nothing). Release
    /// builds without `chaos` cannot leak or mint credits.
    #[cfg(any(test, feature = "chaos"))]
    pub fn leak_credit_for_tests(&mut self) {
        self.free_pool = self.free_pool.saturating_sub(1);
    }

    /// Deliberately mint one credit for flow `f` out of thin air (an
    /// overdraft-enabling mutation). Only compiled in test builds or
    /// under the `chaos` feature.
    #[cfg(any(test, feature = "chaos"))]
    pub fn mint_credit_for_tests(&mut self, f: FlowId) {
        if let Some(fc) = self.flows.get_mut(&f) {
            fc.credits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<FlowId> {
        v.iter().map(|&i| FlowId(i)).collect()
    }

    #[test]
    fn first_flow_gets_everything() {
        // §4.1: "when a flow f1 is established, the flow controller
        // allocates c1 = 3000 credits to f1".
        let mut cm = CreditManager::new(3000);
        cm.add_flows(&ids(&[1]));
        assert_eq!(cm.credits(FlowId(1)), 3000);
        assert!(cm.conserved());
    }

    #[test]
    fn even_split_on_simultaneous_arrival() {
        let mut cm = CreditManager::new(3000);
        cm.add_flows(&ids(&[1, 2, 3]));
        for f in 1..=3 {
            assert_eq!(cm.credits(FlowId(f)), 1000);
        }
        assert!(cm.conserved());
    }

    #[test]
    fn rich_existing_flow_funds_newcomer() {
        let mut cm = CreditManager::new(3000);
        cm.add_flows(&ids(&[1]));
        cm.add_flows(&ids(&[2]));
        // C_flow = 1500 each.
        assert_eq!(cm.credits(FlowId(1)), 1500);
        assert_eq!(cm.credits(FlowId(2)), 1500);
        assert!(!cm.in_insufficient(FlowId(1)));
        assert!(cm.conserved());
    }

    #[test]
    fn poor_existing_flow_owes_shortfall() {
        let mut cm = CreditManager::new(3000);
        cm.add_flows(&ids(&[1]));
        // Flow 1 spends most credits on in-flight packets.
        for _ in 0..2900 {
            assert!(cm.try_consume(FlowId(1)));
        }
        assert_eq!(cm.credits(FlowId(1)), 100);
        cm.add_flows(&ids(&[2]));
        // Flow 1 can only give its 100; it owes the remaining 1400.
        assert_eq!(cm.credits(FlowId(1)), 0);
        assert_eq!(cm.credits(FlowId(2)), 100);
        assert!(cm.in_insufficient(FlowId(1)));
        assert_eq!(cm.debt_of(FlowId(1)), 1400);
        assert!(cm.conserved());
    }

    #[test]
    fn release_repays_debt_before_self() {
        let mut cm = CreditManager::new(3000);
        cm.add_flows(&ids(&[1]));
        for _ in 0..2900 {
            let _ = cm.try_consume(FlowId(1));
        }
        cm.add_flows(&ids(&[2]));
        let debt = cm.debt_of(FlowId(1));
        assert_eq!(debt, 1400);
        // 1000 credits return: all go to the creditor.
        cm.release(FlowId(1), 1000);
        assert_eq!(cm.debt_of(FlowId(1)), 400);
        assert_eq!(cm.credits(FlowId(2)), 100 + 1000);
        assert_eq!(cm.credits(FlowId(1)), 0);
        assert!(cm.in_insufficient(FlowId(1)));
        // Remaining debt cleared; surplus stays with flow 1.
        cm.release(FlowId(1), 1000);
        assert_eq!(cm.debt_of(FlowId(1)), 0);
        assert!(!cm.in_insufficient(FlowId(1)));
        assert_eq!(cm.credits(FlowId(1)), 600);
        assert!(cm.conserved());
    }

    #[test]
    fn consume_denied_at_zero() {
        let mut cm = CreditManager::new(2);
        cm.add_flows(&ids(&[1]));
        assert!(cm.try_consume(FlowId(1)));
        assert!(cm.try_consume(FlowId(1)));
        assert!(!cm.try_consume(FlowId(1)));
        assert_eq!(cm.stats().denied, 1);
        assert!(cm.conserved());
    }

    #[test]
    fn unknown_flow_cannot_consume() {
        let mut cm = CreditManager::new(10);
        assert!(!cm.try_consume(FlowId(9)));
    }

    #[test]
    fn remove_flow_returns_credits_and_forgives_debts() {
        let mut cm = CreditManager::new(3000);
        cm.add_flows(&ids(&[1]));
        for _ in 0..2900 {
            let _ = cm.try_consume(FlowId(1));
        }
        cm.add_flows(&ids(&[2]));
        assert!(cm.in_insufficient(FlowId(1)));
        // Creditor leaves: debt forgiven.
        cm.remove_flow(FlowId(2));
        assert!(!cm.in_insufficient(FlowId(1)));
        assert_eq!(cm.debt_of(FlowId(1)), 0);
        assert!(cm.conserved());
        // Outstanding packets of flow 1 still return cleanly.
        cm.release(FlowId(1), 2900);
        assert!(cm.conserved());
        assert_eq!(cm.outstanding(), 0);
    }

    #[test]
    fn release_after_flow_removal_goes_to_pool() {
        let mut cm = CreditManager::new(100);
        cm.add_flows(&ids(&[1]));
        for _ in 0..50 {
            let _ = cm.try_consume(FlowId(1));
        }
        cm.remove_flow(FlowId(1));
        cm.release(FlowId(1), 50);
        assert_eq!(cm.free_pool(), 100);
        assert!(cm.conserved());
    }

    #[test]
    fn reclaim_and_grant_evenly() {
        let mut cm = CreditManager::new(3000);
        cm.add_flows(&ids(&[1, 2, 3]));
        let taken = cm.reclaim(FlowId(3));
        assert_eq!(taken, 1000);
        assert_eq!(cm.credits(FlowId(3)), 0);
        cm.grant_evenly(&ids(&[1, 2]));
        assert_eq!(cm.credits(FlowId(1)), 1500);
        assert_eq!(cm.credits(FlowId(2)), 1500);
        assert!(cm.conserved());
    }

    #[test]
    fn grant_ignores_unknown_targets_and_keeps_remainder() {
        let mut cm = CreditManager::new(10);
        cm.add_flows(&ids(&[1, 2, 3]));
        let _ = cm.reclaim(FlowId(3)); // pool = 3 (1 rounding + 3... )
        let pool = cm.free_pool();
        cm.grant_evenly(&ids(&[1, 2, 99]));
        assert!(cm.conserved());
        assert!(cm.free_pool() <= pool);
    }

    #[test]
    fn many_flows_integer_rounding_conserves() {
        let mut cm = CreditManager::new(3072);
        // Add flows in odd-sized waves to exercise rounding paths.
        cm.add_flows(&ids(&[0, 1, 2]));
        cm.add_flows(&ids(&[3, 4, 5, 6, 7]));
        cm.add_flows(&(8..40).map(FlowId).collect::<Vec<_>>());
        assert!(cm.conserved());
        let sum: u64 = (0..40).map(|i| cm.credits(FlowId(i))).sum();
        assert!(sum <= 3072);
        assert!(sum > 3072 - 80, "rounding loss bounded, sum={sum}");
    }

    #[test]
    fn lease_expiry_reclaims_lost_release() {
        let mut cm = CreditManager::new(4);
        cm.enable_leases(Duration::nanos(100));
        cm.add_flows(&ids(&[1]));
        cm.set_now(Time(0));
        assert!(cm.try_consume(FlowId(1)));
        assert!(cm.try_consume(FlowId(1)));
        assert_eq!(cm.live_leases(), 2);
        assert_eq!(cm.outstanding(), 2);
        // Both releases are lost. Before the TTL nothing happens…
        cm.set_now(Time(99));
        assert_eq!(cm.expire_leases(), 0);
        // …after it the watchdog moves the grants back to the pool.
        cm.set_now(Time(150));
        assert_eq!(cm.expire_leases(), 2);
        assert_eq!(cm.live_leases(), 0);
        assert_eq!(cm.outstanding(), 0);
        assert_eq!(cm.free_pool(), 2);
        assert_eq!(cm.stats().lease_reclaims, 2);
        assert!(cm.conserved());
    }

    #[test]
    fn late_release_after_reclaim_is_dropped() {
        let mut cm = CreditManager::new(4);
        cm.enable_leases(Duration::nanos(50));
        cm.add_flows(&ids(&[1]));
        cm.set_now(Time(0));
        assert!(cm.try_consume(FlowId(1)));
        cm.set_now(Time(100));
        assert_eq!(cm.expire_leases(), 1);
        let pool = cm.free_pool();
        let credits = cm.credits(FlowId(1));
        // The delayed release finally lands: its grant is gone, so the
        // credit must NOT return twice.
        cm.release(FlowId(1), 1);
        assert_eq!(cm.free_pool(), pool);
        assert_eq!(cm.credits(FlowId(1)), credits);
        assert_eq!(cm.stats().stale_releases, 1);
        assert!(cm.conserved());
    }

    #[test]
    fn timely_release_pops_lease_and_returns_normally() {
        let mut cm = CreditManager::new(4);
        cm.enable_leases(Duration::nanos(100));
        cm.add_flows(&ids(&[1]));
        cm.set_now(Time(0));
        assert!(cm.try_consume(FlowId(1)));
        cm.set_now(Time(40));
        cm.release(FlowId(1), 1);
        assert_eq!(cm.live_leases(), 0);
        assert_eq!(cm.credits(FlowId(1)), 4);
        assert_eq!(cm.stats().stale_releases, 0);
        // Nothing left for the watchdog.
        cm.set_now(Time(500));
        assert_eq!(cm.expire_leases(), 0);
        assert!(cm.conserved());
    }

    #[test]
    fn partial_expiry_pops_only_old_grants() {
        let mut cm = CreditManager::new(4);
        cm.enable_leases(Duration::nanos(100));
        cm.add_flows(&ids(&[1]));
        cm.set_now(Time(0));
        assert!(cm.try_consume(FlowId(1)));
        cm.set_now(Time(80));
        assert!(cm.try_consume(FlowId(1)));
        cm.set_now(Time(120)); // first lease (expiry 100) is dead, second (180) alive
        assert_eq!(cm.expire_leases(), 1);
        assert_eq!(cm.live_leases(), 1);
        assert_eq!(cm.outstanding(), 1);
        // The live grant still releases normally.
        cm.release(FlowId(1), 1);
        assert_eq!(cm.outstanding(), 0);
        assert!(cm.conserved());
    }

    #[test]
    fn release_to_pool_consumes_leases_too() {
        let mut cm = CreditManager::new(4);
        cm.enable_leases(Duration::nanos(100));
        cm.add_flows(&ids(&[1]));
        cm.set_now(Time(0));
        assert!(cm.try_consume(FlowId(1)));
        cm.release_to_pool(FlowId(1), 1);
        assert_eq!(cm.live_leases(), 0);
        assert_eq!(cm.free_pool(), 1);
        // Watchdog finds nothing: no double return.
        cm.set_now(Time(500));
        assert_eq!(cm.expire_leases(), 0);
        assert!(cm.conserved());
    }

    #[test]
    fn leases_survive_flow_removal() {
        let mut cm = CreditManager::new(4);
        cm.enable_leases(Duration::nanos(50));
        cm.add_flows(&ids(&[1]));
        cm.set_now(Time(0));
        assert!(cm.try_consume(FlowId(1)));
        cm.remove_flow(FlowId(1));
        assert_eq!(cm.outstanding(), 1);
        // The in-flight grant's release was lost and the flow is gone:
        // only the watchdog can recover the credit.
        cm.set_now(Time(100));
        assert_eq!(cm.expire_leases(), 1);
        assert_eq!(cm.outstanding(), 0);
        assert_eq!(cm.free_pool(), 4);
        assert!(cm.conserved());
    }

    #[test]
    fn disarmed_leases_are_inert() {
        let mut cm = CreditManager::new(4);
        cm.add_flows(&ids(&[1]));
        assert!(!cm.leases_enabled());
        assert!(cm.try_consume(FlowId(1)));
        assert_eq!(cm.live_leases(), 0);
        cm.set_now(Time(1_000_000));
        assert_eq!(cm.expire_leases(), 0);
        cm.release(FlowId(1), 1);
        assert_eq!(cm.credits(FlowId(1)), 4);
        assert_eq!(cm.stats().stale_releases, 0);
        assert!(cm.conserved());
    }

    #[test]
    fn inject_and_withdraw_move_total_with_pool() {
        let mut cm = CreditManager::new(10);
        cm.add_flows(&ids(&[1])); // all 10 assigned
        assert_eq!(cm.free_pool(), 0);
        cm.inject_pool(5);
        assert_eq!(cm.total(), 15);
        assert_eq!(cm.free_pool(), 5);
        assert!(cm.conserved());
        // Only free credits can leave; assigned ones stay.
        assert_eq!(cm.withdraw_pool(100), 5);
        assert_eq!(cm.total(), 10);
        assert_eq!(cm.free_pool(), 0);
        assert_eq!(cm.withdraw_pool(1), 0);
        assert!(cm.conserved());
    }

    #[test]
    fn withdraw_never_touches_outstanding() {
        let mut cm = CreditManager::new(4);
        cm.add_flows(&ids(&[1]));
        assert!(cm.try_consume(FlowId(1)));
        let _ = cm.reclaim(FlowId(1)); // 3 to pool, 1 outstanding
        assert_eq!(cm.withdraw_pool(10), 3);
        assert_eq!(cm.total(), 1);
        assert_eq!(cm.outstanding(), 1);
        assert!(cm.conserved());
        // The in-flight credit still returns cleanly into the shrunk
        // partition.
        cm.release(FlowId(1), 1);
        assert_eq!(cm.outstanding(), 0);
        assert!(cm.conserved());
    }

    #[test]
    fn readding_existing_flow_is_noop() {
        let mut cm = CreditManager::new(100);
        cm.add_flows(&ids(&[1]));
        cm.add_flows(&ids(&[1]));
        assert_eq!(cm.credits(FlowId(1)), 100);
        assert_eq!(cm.flow_count(), 1);
        assert!(cm.conserved());
    }
}
