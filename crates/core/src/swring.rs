//! The CEIO software ring (§4.2, Fig. 7).
//!
//! A two-producer / one-consumer abstraction that unifies the fast-path
//! (host memory) and slow-path (on-NIC memory) hardware rings behind one
//! ordered reception interface. Producers stamp entries with a global
//! arrival sequence at push time; the consumer only ever receives entries
//! in that order, so applications never see reordering across path
//! transitions and no per-packet sorting is needed.
//!
//! Slow-path entries are *not in host memory yet*: before delivery the
//! driver must DMA-read them across PCIe. [`SwRing::async_recv`] models the
//! non-blocking API — it returns whatever is deliverable now and *issues*
//! fetches for the slow entries at the head, which become deliverable after
//! [`SwRing::fetch_complete`] (the DMA completion). The blocking `recv()`
//! of §5 is the same state machine with the caller spinning on
//! `fetch_complete` before retrying.
//!
//! This type is the standalone, reusable realization of the paper's driver
//! data structure (used directly by the perftest-style examples and the
//! property-test suite); inside the full host simulation the same contract
//! is enforced by the machine's per-flow ordered delivery buffer, where
//! fetch completions are real simulated DMA events.

#[cfg(feature = "trace")]
use ceio_sim::Time;
#[cfg(feature = "trace")]
use ceio_telemetry::{TraceEvent, TraceKind, TraceRing};
use std::collections::VecDeque;

/// Where an entry's payload currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    /// In host memory: deliverable.
    HostReady,
    /// Parked in on-NIC memory: must be fetched first.
    OnNic,
    /// DMA read in flight.
    Fetching,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    item: T,
    loc: Location,
    /// Whether the entry travelled the slow path. Fetched slow entries
    /// become `HostReady` but never held an RX-ring descriptor, so their
    /// delivery must not release fast-path capacity (the bounded model
    /// checker in `crates/audit/tests` caught exactly that confusion).
    via_slow: bool,
}

/// Result of one `async_recv()` call.
#[derive(Debug)]
pub struct RecvOutcome<T> {
    /// Entries delivered to the application, in arrival order.
    pub delivered: Vec<T>,
    /// Slow-path entries whose DMA fetch was issued by this call; they
    /// become deliverable after the matching [`SwRing::fetch_complete`].
    pub fetch_issued: usize,
}

/// The software ring.
///
/// ```
/// use ceio_core::SwRing;
///
/// let mut ring: SwRing<u32> = SwRing::new(4, 32);
/// ring.push_fast(1).unwrap();
/// ring.push_slow(2); // parked in on-NIC memory
/// ring.push_fast(3).unwrap();
///
/// // Non-blocking receive: #1 is deliverable, #2 needs a DMA fetch, and
/// // #3 must wait behind it (ordering across path transitions, S4.2).
/// let out = ring.async_recv(32);
/// assert_eq!(out.delivered, vec![1]);
/// assert_eq!(out.fetch_issued, 1);
///
/// ring.fetch_complete(1); // the DMA read landed
/// assert_eq!(ring.async_recv(32).delivered, vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct SwRing<T> {
    entries: VecDeque<Entry<T>>,
    fast_capacity: usize,
    fast_occupancy: usize,
    fetch_batch: usize,
    next_seq: u64,
    delivered_seq: u64,
    /// Total entries that travelled the slow path (statistics).
    slow_total: u64,
    #[cfg(feature = "trace")]
    tracer: Option<TraceRing>,
    /// Trace clock: the ring is clockless, stamped by callers via
    /// [`SwRing::set_trace_now`].
    #[cfg(feature = "trace")]
    trace_now: Time,
}

impl<T> SwRing<T> {
    /// A ring whose fast path holds at most `fast_capacity` undelivered
    /// entries (the HW RX ring size) and whose driver fetches at most
    /// `fetch_batch` slow entries per `async_recv`.
    pub fn new(fast_capacity: usize, fetch_batch: usize) -> SwRing<T> {
        SwRing {
            entries: VecDeque::new(),
            fast_capacity,
            fast_occupancy: 0,
            fetch_batch: fetch_batch.max(1),
            next_seq: 0,
            delivered_seq: 0,
            slow_total: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_now: Time::ZERO,
        }
    }

    /// Arm event recording into a fresh drop-oldest ring of `cap` events.
    #[cfg(feature = "trace")]
    pub fn arm_trace(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(cap));
    }

    /// Stamp the simulated clock used for subsequent trace events.
    #[cfg(feature = "trace")]
    #[inline]
    pub fn set_trace_now(&mut self, now: Time) {
        self.trace_now = now;
    }

    /// Drain recorded events (and the dropped count), if armed.
    #[cfg(feature = "trace")]
    pub fn trace_take(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.tracer.as_mut() {
            Some(r) => {
                let evs = r.events();
                let dropped = r.dropped();
                r.clear();
                (evs, dropped)
            }
            None => (Vec::new(), 0),
        }
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&mut self, kind: TraceKind, value: u64) {
        if let Some(r) = self.tracer.as_mut() {
            r.push(TraceEvent {
                at: self.trace_now,
                // The standalone ring is flow-agnostic (one ring per app).
                flow: None,
                kind,
                value,
            });
        }
    }

    /// Producer 1: a packet retired into the host ring (fast path).
    /// Returns its arrival sequence, or the item back if the HW ring is
    /// full (the caller drops or degrades it).
    #[must_use = "a full HW ring returns the item back; dropping it silently loses the packet"]
    pub fn push_fast(&mut self, item: T) -> Result<u64, T> {
        if self.fast_occupancy >= self.fast_capacity {
            return Err(item);
        }
        self.fast_occupancy += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(Entry {
            item,
            loc: Location::HostReady,
            via_slow: false,
        });
        Ok(seq)
    }

    /// Producer 2: a packet parked in on-NIC memory (slow path). Elastic:
    /// never rejects (backed by 16 GB of device DRAM).
    #[must_use = "returns the entry's arrival sequence"]
    pub fn push_slow(&mut self, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slow_total += 1;
        #[cfg(feature = "trace")]
        self.trace(TraceKind::SlowPark, 1);
        self.entries.push_back(Entry {
            item,
            loc: Location::OnNic,
            via_slow: true,
        });
        seq
    }

    /// Non-blocking reception: deliver up to `max` in-order host-resident
    /// entries and issue DMA fetches for the slow-path entries now at the
    /// head (up to the fetch batch), without waiting for them.
    pub fn async_recv(&mut self, max: usize) -> RecvOutcome<T> {
        let mut delivered = Vec::new();
        #[cfg(feature = "trace")]
        let (mut fast_delivered, mut slow_delivered) = (0u64, 0u64);
        while delivered.len() < max {
            match self.entries.front() {
                Some(e) if e.loc == Location::HostReady => {
                    let e = self
                        .entries
                        .pop_front()
                        .expect("invariant: front() was Some on this iteration");
                    // Only fast-path entries occupy HW RX-ring descriptors;
                    // fetched slow entries are driver-posted buffers, so
                    // delivering one must not release fast-path capacity.
                    if !e.via_slow {
                        debug_assert!(self.fast_occupancy > 0);
                        self.fast_occupancy = self.fast_occupancy.saturating_sub(1);
                    }
                    #[cfg(feature = "trace")]
                    if e.via_slow {
                        slow_delivered += 1;
                    } else {
                        fast_delivered += 1;
                    }
                    self.delivered_seq += 1;
                    delivered.push(e.item);
                }
                _ => break,
            }
        }
        // Issue fetches for the leading slow entries (skip ones already
        // fetching) so the next call can deliver them.
        let mut fetch_issued = 0;
        for e in self.entries.iter_mut() {
            match e.loc {
                Location::HostReady => break,
                Location::Fetching => continue,
                Location::OnNic => {
                    if fetch_issued >= self.fetch_batch {
                        break;
                    }
                    e.loc = Location::Fetching;
                    fetch_issued += 1;
                }
            }
        }
        #[cfg(feature = "trace")]
        {
            if fast_delivered > 0 {
                self.trace(TraceKind::Delivery, fast_delivered);
            }
            if slow_delivered > 0 {
                self.trace(TraceKind::SlowDrain, slow_delivered);
            }
            if fetch_issued > 0 {
                self.trace(TraceKind::SlowFetch, fetch_issued as u64);
            }
        }
        RecvOutcome {
            delivered,
            fetch_issued,
        }
    }

    /// DMA completion: the oldest `n` in-flight fetches landed in host
    /// memory. (Fast-path occupancy is unaffected — fetched buffers are
    /// driver-posted, not RX-ring descriptors.)
    pub fn fetch_complete(&mut self, n: usize) {
        let mut left = n;
        for e in self.entries.iter_mut() {
            if left == 0 {
                break;
            }
            if e.loc == Location::Fetching {
                e.loc = Location::HostReady;
                left -= 1;
            }
        }
        debug_assert!(left == 0, "completed more fetches than issued");
    }

    /// Undelivered entries (all paths).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Undelivered fast-path entries currently occupying the HW ring.
    #[must_use]
    pub fn fast_occupancy(&self) -> usize {
        self.fast_occupancy
    }

    /// Entries still on the NIC (not yet fetching).
    #[must_use]
    pub fn on_nic(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.loc == Location::OnNic)
            .count()
    }

    /// Entries with fetches in flight.
    #[must_use]
    pub fn fetching(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.loc == Location::Fetching)
            .count()
    }

    /// Total entries that ever travelled the slow path.
    #[must_use]
    pub fn slow_total(&self) -> u64 {
        self.slow_total
    }

    /// Entries delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_only_delivers_in_order() {
        let mut r = SwRing::new(8, 4);
        for i in 0..5 {
            r.push_fast(i).unwrap();
        }
        let out = r.async_recv(16);
        assert_eq!(out.delivered, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.fetch_issued, 0);
        assert!(r.is_empty());
    }

    #[test]
    fn fast_capacity_enforced() {
        let mut r = SwRing::new(2, 4);
        r.push_fast(0).unwrap();
        r.push_fast(1).unwrap();
        assert_eq!(r.push_fast(2), Err(2));
        r.async_recv(1);
        assert!(r.push_fast(2).is_ok());
    }

    #[test]
    fn slow_entries_block_until_fetched() {
        let mut r = SwRing::new(8, 4);
        r.push_fast(0).unwrap();
        let _ = r.push_slow(1);
        r.push_fast(2).unwrap(); // arrives after the slow entry

        let out = r.async_recv(16);
        assert_eq!(out.delivered, vec![0], "must stop at the slow entry");
        assert_eq!(out.fetch_issued, 1);

        // Fetch not complete yet: entry 2 must NOT jump the queue.
        let out = r.async_recv(16);
        assert!(out.delivered.is_empty());
        assert_eq!(out.fetch_issued, 0, "no duplicate fetches");

        r.fetch_complete(1);
        let out = r.async_recv(16);
        assert_eq!(out.delivered, vec![1, 2], "order preserved across paths");
    }

    #[test]
    fn figure7_scenario() {
        // Fig. 7: 4 credits remain; message packets #1-#4 go fast, #17,#18
        // (per the figure's buffer ids) land slow, later #19,#20 slow too;
        // once drained, the fast path resumes with #5-#8.
        let mut r = SwRing::new(4, 32);
        for i in 1..=4 {
            r.push_fast(i).unwrap();
        }
        let _ = r.push_slow(17);
        let _ = r.push_slow(18);
        let out = r.async_recv(32);
        assert_eq!(out.delivered, vec![1, 2, 3, 4]);
        assert_eq!(out.fetch_issued, 2);
        let _ = r.push_slow(19);
        let _ = r.push_slow(20);
        r.fetch_complete(2);
        let out = r.async_recv(32);
        assert_eq!(out.delivered, vec![17, 18]);
        assert_eq!(out.fetch_issued, 2, "drain continues");
        r.fetch_complete(2);
        // Fast path re-enabled after drain.
        for i in 5..=8 {
            r.push_fast(i).unwrap();
        }
        let out = r.async_recv(32);
        assert_eq!(out.delivered, vec![19, 20, 5, 6, 7, 8]);
    }

    #[test]
    fn fetch_batch_limits_inflight_reads() {
        let mut r = SwRing::new(4, 2);
        for i in 0..5 {
            let _ = r.push_slow(i);
        }
        assert_eq!(r.async_recv(16).fetch_issued, 2);
        assert_eq!(r.fetching(), 2);
        assert_eq!(r.on_nic(), 3);
        r.fetch_complete(2);
        let out = r.async_recv(16);
        assert_eq!(out.delivered, vec![0, 1]);
        assert_eq!(out.fetch_issued, 2);
    }

    #[test]
    fn max_delivery_respected() {
        let mut r = SwRing::new(64, 4);
        for i in 0..10 {
            r.push_fast(i).unwrap();
        }
        assert_eq!(r.async_recv(3).delivered, vec![0, 1, 2]);
        assert_eq!(r.async_recv(3).delivered, vec![3, 4, 5]);
        assert_eq!(r.delivered(), 6);
    }

    #[test]
    fn counters_track_paths() {
        let mut r = SwRing::new(8, 4);
        r.push_fast(0).unwrap();
        let _ = r.push_slow(1);
        assert_eq!(r.slow_total(), 1);
        assert_eq!(r.fast_occupancy(), 1);
        assert_eq!(r.len(), 2);
    }
}
