//! The design alternative §4.1 considers and rejects: Multiple Priority
//! Queues (MPQ), PIAS-style, applied to the fast/slow-path decision.
//!
//! PIAS grants every new flow the highest priority and demotes it as its
//! byte count crosses thresholds — under the long-tail assumption that
//! short flows matter most. Mapped onto the I/O system: high-priority
//! flows take the fast path (within the LLC credit budget), demoted flows
//! take the slow path; idle flows age back to the top priority.
//!
//! The paper's critique, which this implementation makes measurable:
//! *CPU-involved flows are not always short* (continuous RPC streams,
//! video, overlay traffic). A long-lived RPC flow crosses the demotion
//! threshold just like a DFS transfer does, loses the fast path, and pays
//! the slow path's latency — while CEIO's lazy credit release keeps it
//! fast because its credits recycle continuously. Ablation D in
//! `ceio-bench` runs the two head to head.

use crate::credit::CreditManager;
use ceio_host::{DrainRequest, HostState, IoPolicy, SteerDecision};
use ceio_net::{FlowId, Packet};
use ceio_nic::{QueueId, SteerAction};
use ceio_sim::{Duration, Time};
use ceio_telemetry::SnapshotBuilder;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// MPQ tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MpqConfig {
    /// Total fast-path admission budget (same Eq. 1 sizing as CEIO so the
    /// comparison isolates the *scheduling* policy).
    pub credit_total: u64,
    /// Demotion thresholds in bytes: a flow at priority `i` demotes to
    /// `i+1` after sending `thresholds[i]` bytes at that level. Flows past
    /// the last threshold sit in the lowest priority (slow path).
    pub thresholds: Vec<u64>,
    /// Priorities `0..fast_priorities` use the fast path; lower ones are
    /// steered to on-NIC memory.
    pub fast_priorities: usize,
    /// Idle period after which a flow ages back to the top priority
    /// (PIAS resets flows that go quiet).
    pub age_reset: Duration,
    /// Slow-path backlog above which arrivals are ECN-marked.
    pub slow_overload_threshold: usize,
    /// Fetch batch for slow-path drains.
    pub drain_batch: u32,
}

impl Default for MpqConfig {
    fn default() -> Self {
        MpqConfig {
            credit_total: (6 << 20) / 2048,
            // PIAS-style geometric thresholds: 64 KB, 512 KB, 4 MB.
            thresholds: vec![64 << 10, 512 << 10, 4 << 20],
            fast_priorities: 3,
            age_reset: Duration::millis(1),
            slow_overload_threshold: 32,
            drain_batch: 32,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowPrio {
    priority: usize,
    bytes_at_level: u64,
    last_packet: Time,
}

/// MPQ statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct MpqStats {
    /// Priority demotions.
    pub demotions: u64,
    /// Idle-age resets back to top priority.
    pub resets: u64,
}

/// The MPQ policy.
pub struct MpqPolicy {
    cfg: MpqConfig,
    credits: CreditManager,
    flows: BTreeMap<FlowId, FlowPrio>,
    stats: MpqStats,
}

impl MpqPolicy {
    /// An MPQ scheduler with the given tuning.
    pub fn new(cfg: MpqConfig) -> MpqPolicy {
        MpqPolicy {
            credits: CreditManager::new(cfg.credit_total),
            flows: BTreeMap::new(),
            cfg,
            stats: MpqStats::default(),
        }
    }

    /// Current priority of a flow (0 = highest).
    #[must_use]
    pub fn priority(&self, flow: FlowId) -> Option<usize> {
        self.flows.get(&flow).map(|f| f.priority)
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &MpqStats {
        &self.stats
    }
}

impl IoPolicy for MpqPolicy {
    fn name(&self) -> &'static str {
        "MPQ"
    }

    fn on_flow_start(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        let queue = QueueId(st.flows.get(&flow).map(|f| f.core).unwrap_or(0));
        st.rmt.install(flow, SteerAction::FastPath { queue });
        st.nic_arm.execute(now, st.cfg.nic.arm_table_update);
        self.credits.add_flows(&[flow]);
        self.flows.insert(
            flow,
            FlowPrio {
                priority: 0,
                bytes_at_level: 0,
                last_packet: now,
            },
        );
    }

    fn on_flow_stop(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        st.rmt.remove(&flow);
        st.nic_arm.execute(now, st.cfg.nic.arm_table_update);
        self.credits.remove_flow(flow);
        self.flows.remove(&flow);
    }

    fn steer(&mut self, st: &mut HostState, now: Time, pkt: &Packet) -> SteerDecision {
        st.rmt.steer(&pkt.flow);
        let (slow_len, ring_free) = match st.flows.get(&pkt.flow) {
            Some(f) => (f.slow_queue.len(), f.ring_free()),
            None => return SteerDecision::Drop { loss: false },
        };
        let Some(p) = self.flows.get_mut(&pkt.flow) else {
            return SteerDecision::Drop { loss: false };
        };
        // Idle aging back to the top priority.
        if now.since(p.last_packet) > self.cfg.age_reset {
            if p.priority != 0 {
                self.stats.resets += 1;
            }
            p.priority = 0;
            p.bytes_at_level = 0;
        }
        p.last_packet = now;
        // Priority decay by bytes sent (PIAS).
        p.bytes_at_level += pkt.bytes;
        while p.priority < self.cfg.thresholds.len()
            && p.bytes_at_level >= self.cfg.thresholds[p.priority]
        {
            p.priority += 1;
            p.bytes_at_level = 0;
            self.stats.demotions += 1;
        }

        let mark = slow_len > self.cfg.slow_overload_threshold;
        let fast_eligible = p.priority < self.cfg.fast_priorities;
        if fast_eligible && ring_free > 0 && self.credits.try_consume(pkt.flow) {
            SteerDecision::FastPath { mark: false }
        } else {
            SteerDecision::SlowPath { mark }
        }
    }

    fn on_fast_drop(&mut self, _st: &mut HostState, _now: Time, flow: FlowId) {
        self.credits.release(flow, 1);
    }

    fn on_batch_consumed(
        &mut self,
        _st: &mut HostState,
        _now: Time,
        flow: FlowId,
        fast_pkts: u32,
        _slow_pkts: u32,
        _msgs: u32,
    ) {
        // MPQ has no lazy-release subtlety: credits return per batch.
        if fast_pkts > 0 {
            self.credits.release(flow, fast_pkts as u64);
        }
    }

    fn fill_metrics(&self, out: &mut SnapshotBuilder) {
        out.counter(
            "ceio_mpq_demotions_total",
            "PIAS priority demotions (byte thresholds crossed).",
            self.stats.demotions,
        );
        out.counter(
            "ceio_mpq_resets_total",
            "Idle-age resets back to the top priority.",
            self.stats.resets,
        );
    }

    fn on_driver_poll(&mut self, st: &mut HostState, now: Time, flow: FlowId) -> DrainRequest {
        let Some(f) = st.flows.get(&flow) else {
            return DrainRequest::NONE;
        };
        if f.slow_fetch_inflight >= 2 * self.cfg.drain_batch {
            return DrainRequest::NONE;
        }
        let drainable = f
            .slow_queue
            .front()
            .map(|sp| sp.ready_at_nic <= now)
            .unwrap_or(false);
        if drainable {
            DrainRequest {
                fetch: self.cfg.drain_batch,
                sync: false,
            }
        } else {
            DrainRequest::NONE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_geometric_by_default() {
        let c = MpqConfig::default();
        assert!(c.thresholds.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(c.fast_priorities, c.thresholds.len());
    }

    #[test]
    fn policy_starts_every_flow_at_top_priority() {
        let p = MpqPolicy::new(MpqConfig::default());
        assert!(p.priority(FlowId(0)).is_none());
        assert_eq!(p.stats().demotions, 0);
    }
}
