//! Property-based tests of CEIO's core data structures.
//!
//! * The credit manager conserves credits under *any* operation sequence
//!   (Eq. 1 is only a safety bound if no credit can ever be minted or
//!   leaked).
//! * The software ring delivers in exact arrival order under any
//!   interleaving of fast pushes, slow pushes, fetch completions, and
//!   receives.

use ceio_core::{CreditManager, SwRing};
use ceio_net::FlowId;
use proptest::prelude::*;

/// Operations against the credit manager.
#[derive(Debug, Clone)]
enum CreditOp {
    AddFlows(Vec<u8>),
    Remove(u8),
    Consume(u8, u8),
    Release(u8, u8),
    Reclaim(u8),
    Grant(u8, u16),
    GrantEvenly(Vec<u8>),
}

fn credit_op() -> impl Strategy<Value = CreditOp> {
    prop_oneof![
        prop::collection::vec(0u8..16, 1..4).prop_map(CreditOp::AddFlows),
        (0u8..16).prop_map(CreditOp::Remove),
        (0u8..16, 1u8..64).prop_map(|(f, n)| CreditOp::Consume(f, n)),
        (0u8..16, 1u8..64).prop_map(|(f, n)| CreditOp::Release(f, n)),
        (0u8..16).prop_map(CreditOp::Reclaim),
        (0u8..16, 0u16..512).prop_map(|(f, n)| CreditOp::Grant(f, n)),
        prop::collection::vec(0u8..16, 0..6).prop_map(CreditOp::GrantEvenly),
    ]
}

proptest! {
    /// Conservation invariant: Σ flow credits + pool + outstanding ==
    /// total, after any sequence of operations, and no counter ever
    /// exceeds the total.
    #[test]
    fn credit_manager_conserves(total in 1u64..5000, ops in prop::collection::vec(credit_op(), 1..200)) {
        let mut cm = CreditManager::new(total);
        for op in ops {
            match op {
                CreditOp::AddFlows(ids) => {
                    let ids: Vec<FlowId> = ids.into_iter().map(|i| FlowId(i as u32)).collect();
                    cm.add_flows(&ids);
                }
                CreditOp::Remove(f) => cm.remove_flow(FlowId(f as u32)),
                CreditOp::Consume(f, n) => {
                    for _ in 0..n {
                        let _ = cm.try_consume(FlowId(f as u32));
                    }
                }
                CreditOp::Release(f, n) => cm.release(FlowId(f as u32), n as u64),
                CreditOp::Reclaim(f) => {
                    let _ = cm.reclaim(FlowId(f as u32));
                }
                CreditOp::Grant(f, n) => {
                    let _ = cm.grant(FlowId(f as u32), n as u64);
                }
                CreditOp::GrantEvenly(ids) => {
                    let ids: Vec<FlowId> = ids.into_iter().map(|i| FlowId(i as u32)).collect();
                    cm.grant_evenly(&ids);
                }
            }
            prop_assert!(cm.conserved(), "conservation violated after an op");
            prop_assert!(cm.outstanding() <= total);
            prop_assert!(cm.free_pool() <= total);
        }
    }

    /// Outstanding credits exactly track successful consumes minus
    /// releases (clamped at zero), independent of reallocation noise.
    #[test]
    fn outstanding_tracks_consume_release(
        total in 64u64..4096,
        consumes in 0u64..256,
        releases in 0u64..256,
    ) {
        let mut cm = CreditManager::new(total);
        cm.add_flows(&[FlowId(1)]);
        let mut ok = 0u64;
        for _ in 0..consumes {
            if cm.try_consume(FlowId(1)) {
                ok += 1;
            }
        }
        prop_assert_eq!(cm.outstanding(), ok);
        cm.release(FlowId(1), releases);
        prop_assert_eq!(cm.outstanding(), ok.saturating_sub(releases));
        prop_assert!(cm.conserved());
    }
}

/// Operations against the software ring.
#[derive(Debug, Clone)]
enum RingOp {
    PushFast,
    PushSlow,
    Recv(u8),
    CompleteFetches,
}

fn ring_op() -> impl Strategy<Value = RingOp> {
    prop_oneof![
        3 => Just(RingOp::PushFast),
        2 => Just(RingOp::PushSlow),
        3 => (1u8..64).prop_map(RingOp::Recv),
        2 => Just(RingOp::CompleteFetches),
    ]
}

proptest! {
    /// In-order delivery: under any interleaving, `async_recv` hands back
    /// items in exactly the order they were pushed, with no loss or
    /// duplication, and everything drains once all fetches complete.
    #[test]
    fn swring_delivers_in_push_order(ops in prop::collection::vec(ring_op(), 1..300)) {
        let mut ring: SwRing<u64> = SwRing::new(4096, 16);
        let mut next = 0u64;
        let mut delivered: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                RingOp::PushFast => {
                    if ring.push_fast(next).is_ok() {
                        next += 1;
                    }
                }
                RingOp::PushSlow => {
                    let _ = ring.push_slow(next);
                    next += 1;
                }
                RingOp::Recv(max) => {
                    delivered.extend(ring.async_recv(max as usize).delivered);
                }
                RingOp::CompleteFetches => {
                    let inflight = ring.fetching();
                    ring.fetch_complete(inflight);
                }
            }
            // Conservation at every step: nothing pushed is ever lost or
            // duplicated, whatever the interleaving.
            prop_assert_eq!(
                ring.delivered() + ring.len() as u64,
                next,
                "delivered() + len() must equal pushed total"
            );
        }
        // Drain: complete fetches and receive until quiescent.
        for _ in 0..next + 8 {
            let inflight = ring.fetching();
            ring.fetch_complete(inflight);
            let out = ring.async_recv(64);
            delivered.extend(out.delivered);
            if ring.is_empty() {
                break;
            }
        }
        prop_assert!(ring.is_empty(), "ring must drain fully");
        prop_assert_eq!(delivered.len() as u64, next, "no loss, no duplication");
        for (i, &v) in delivered.iter().enumerate() {
            prop_assert_eq!(v, i as u64, "delivery out of order at {}", i);
        }
        prop_assert_eq!(ring.delivered(), next);
    }

    /// The fast ring's occupancy bound is never violated and push_fast
    /// fails exactly when the bound is reached.
    #[test]
    fn swring_fast_capacity_enforced(cap in 1usize..64, pushes in 1usize..200) {
        let mut ring: SwRing<usize> = SwRing::new(cap, 8);
        let mut accepted = 0;
        for i in 0..pushes {
            if ring.push_fast(i).is_ok() {
                accepted += 1;
            }
            prop_assert!(ring.fast_occupancy() <= cap);
        }
        prop_assert_eq!(accepted, pushes.min(cap));
    }

    /// Regression property for the occupancy confusion the bounded model
    /// checker caught: delivering *fetched slow* entries must not release
    /// fast-path capacity, because they never held an RX-ring descriptor.
    /// After delivering any number of slow entries, the ring accepts
    /// exactly `cap - undelivered_fast` further fast pushes — never more.
    #[test]
    fn swring_slow_delivery_does_not_free_fast_slots(
        cap in 1usize..16,
        slow in 1usize..32,
        fast_before in 0usize..16,
    ) {
        let mut ring: SwRing<usize> = SwRing::new(cap, 64);
        let mut fast_held = 0;
        for i in 0..fast_before {
            if ring.push_fast(i).is_ok() {
                fast_held += 1;
            }
        }
        for j in 0..slow {
            let _ = ring.push_slow(1000 + j);
        }
        // Deliver everything currently deliverable plus all slow entries.
        let _ = ring.async_recv(usize::MAX);
        ring.fetch_complete(ring.fetching());
        while !ring.is_empty() {
            let out = ring.async_recv(usize::MAX);
            ring.fetch_complete(ring.fetching());
            if out.delivered.is_empty() && out.fetch_issued == 0 {
                break;
            }
        }
        prop_assert!(ring.is_empty());
        // All fast entries were delivered too, so the full capacity — and
        // not one slot more — must now be available.
        let mut reaccepted = 0;
        for i in 0..cap + slow {
            if ring.push_fast(i).is_ok() {
                reaccepted += 1;
            }
        }
        prop_assert_eq!(reaccepted, cap, "freed slots must equal capacity exactly");
        let _ = fast_held;
    }
}

/// Operations against the *leased* credit manager: the base alphabet plus
/// watchdog time advancement. Models a chaotic environment where lazy
/// releases can be lost (a consume with no matching release) or arrive
/// late (after the watchdog reclaimed the grant).
#[derive(Debug, Clone)]
enum LeasedOp {
    Base(CreditOp),
    /// Advance the lease clock by `ticks` nanoseconds and run the
    /// watchdog.
    AdvanceExpire(u8),
}

fn leased_op() -> impl Strategy<Value = LeasedOp> {
    prop_oneof![
        4 => credit_op().prop_map(LeasedOp::Base),
        1 => (1u8..200).prop_map(LeasedOp::AdvanceExpire),
    ]
}

proptest! {
    /// Lease safety under arbitrary chaos: whatever interleaving of
    /// consumes, (possibly stale) releases, reallocation, and watchdog
    /// sweeps occurs, Eq. 1 conservation holds, the lease ledger tracks
    /// `outstanding` exactly (leases are armed from birth, so every grant
    /// carries one), and a final watchdog sweep past every TTL returns
    /// *all* outstanding credits — lost releases can delay recycling but
    /// never strand credit.
    #[test]
    fn leased_credit_manager_conserves_and_reclaims(
        total in 1u64..2000,
        ttl in 1u64..100,
        ops in prop::collection::vec(leased_op(), 1..150),
    ) {
        use ceio_sim::{Duration, Time};
        let mut cm = CreditManager::new(total);
        cm.enable_leases(Duration::nanos(ttl));
        let mut now = 0u64;
        for op in ops {
            match op {
                LeasedOp::Base(CreditOp::AddFlows(ids)) => {
                    let ids: Vec<FlowId> = ids.into_iter().map(|i| FlowId(i as u32)).collect();
                    cm.add_flows(&ids);
                }
                LeasedOp::Base(CreditOp::Remove(f)) => cm.remove_flow(FlowId(f as u32)),
                LeasedOp::Base(CreditOp::Consume(f, n)) => {
                    for _ in 0..n {
                        let _ = cm.try_consume(FlowId(f as u32));
                    }
                }
                LeasedOp::Base(CreditOp::Release(f, n)) => cm.release(FlowId(f as u32), n as u64),
                LeasedOp::Base(CreditOp::Reclaim(f)) => {
                    let _ = cm.reclaim(FlowId(f as u32));
                }
                LeasedOp::Base(CreditOp::Grant(f, n)) => {
                    let _ = cm.grant(FlowId(f as u32), n as u64);
                }
                LeasedOp::Base(CreditOp::GrantEvenly(ids)) => {
                    let ids: Vec<FlowId> = ids.into_iter().map(|i| FlowId(i as u32)).collect();
                    cm.grant_evenly(&ids);
                }
                LeasedOp::AdvanceExpire(ticks) => {
                    now += ticks as u64;
                    cm.set_now(Time(now));
                    let _ = cm.expire_leases();
                }
            }
            prop_assert!(cm.conserved(), "conservation violated after an op");
            prop_assert_eq!(
                cm.live_leases(),
                cm.outstanding(),
                "armed-from-birth: every outstanding grant must hold a lease"
            );
        }
        // Final watchdog sweep past every possible TTL: nothing stays
        // stranded in `outstanding`, however many releases were lost.
        now += ttl + 1;
        cm.set_now(Time(now));
        let _ = cm.expire_leases();
        prop_assert_eq!(cm.outstanding(), 0, "watchdog must reclaim every lost grant");
        prop_assert!(cm.conserved());
        // Late (stale) releases after the sweep are dropped, never
        // double-credited.
        let pool = cm.free_pool();
        cm.release(FlowId(0), 5);
        prop_assert_eq!(cm.free_pool(), pool, "stale release must not mint credit");
        prop_assert!(cm.conserved());
    }
}
