//! End-to-end tests of the CEIO policy on the host machine: the behavioural
//! claims of §4 (zero LLC misses, no drops, slow-path degradation of bypass
//! flows, ordering under phase exclusivity) checked against the same
//! scenarios that thrash the unmanaged baseline.

use ceio_core::{CeioConfig, CeioPolicy};
use ceio_cpu::{AppWork, Application};
use ceio_host::{
    run_to_report, AppFactory, HostConfig, IoPolicy, Machine, RunReport, UnmanagedPolicy,
};
use ceio_net::{FlowClass, FlowSpec, Packet, Scenario};
use ceio_sim::{Bandwidth, Duration, Time};

struct FixedApp(Duration);
impl Application for FixedApp {
    fn name(&self) -> &str {
        "fixed"
    }
    fn process(&mut self, _: &Packet) -> AppWork {
        AppWork::compute(self.0)
    }
}

fn app_factory(cost_ns: u64) -> AppFactory {
    Box::new(move |_| Box::new(FixedApp(Duration::nanos(cost_ns))))
}

/// The thrash scenario from the machine tests: 8 heavy flows, big rings,
/// slow consumers.
fn thrash_scenario() -> Scenario {
    let mut s = Scenario::new();
    for i in 0..8 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 2048, 1, Bandwidth::gbps(25)),
        );
    }
    s.build()
}

fn thrash_cfg() -> HostConfig {
    HostConfig {
        ring_entries: 2048,
        ..HostConfig::default()
    }
}

fn run_policy<P: IoPolicy>(
    cfg: HostConfig,
    policy: P,
    scenario: Scenario,
    cost_ns: u64,
) -> RunReport {
    let mut sim = Machine::build(cfg, policy, scenario, app_factory(cost_ns));
    run_to_report(&mut sim, Duration::millis(2), Duration::millis(5))
}

fn ceio_cfg(host: &HostConfig) -> CeioConfig {
    CeioConfig {
        credit_total: host.credit_total(),
        ..CeioConfig::default()
    }
}

#[test]
fn ceio_eliminates_llc_misses_where_baseline_thrashes() {
    let cfg = thrash_cfg();
    let base = run_policy(cfg.clone(), UnmanagedPolicy, thrash_scenario(), 2_000);
    let ceio = run_policy(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        thrash_scenario(),
        2_000,
    );
    // Fig. 9's headline: baseline ~88% miss, CEIO ~1%.
    assert!(
        base.llc_miss_rate > 0.5,
        "baseline miss {}",
        base.llc_miss_rate
    );
    assert!(
        ceio.llc_miss_rate < 0.05,
        "CEIO miss {}",
        ceio.llc_miss_rate
    );
}

#[test]
fn ceio_throughput_at_least_matches_baseline_under_contention() {
    let cfg = thrash_cfg();
    let base = run_policy(cfg.clone(), UnmanagedPolicy, thrash_scenario(), 2_000);
    let ceio = run_policy(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        thrash_scenario(),
        2_000,
    );
    assert!(
        ceio.involved_mpps >= base.involved_mpps * 0.95,
        "CEIO {} vs baseline {}",
        ceio.involved_mpps,
        base.involved_mpps
    );
}

#[test]
fn ceio_avoids_host_drops_via_elastic_buffering() {
    // Sustained overload: proactive marking converges arrival to the
    // consumption rate, so CEIO neither drops nor needs the slow path in
    // steady state, while the baseline drops continuously.
    let cfg = thrash_cfg();
    let base = run_policy(cfg.clone(), UnmanagedPolicy, thrash_scenario(), 2_000);
    let ceio = run_policy(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        thrash_scenario(),
        2_000,
    );
    assert!(base.dropped > 0, "baseline must be dropping under overload");
    assert_eq!(ceio.dropped, 0, "CEIO dropped {}", ceio.dropped);

    // A sudden burst (8 extra flows at once) outruns any end-to-end CCA
    // for a few RTTs: the elastic buffer must absorb that excess rather
    // than drop it (§4.2, Table 1).
    let mut s = Scenario::new();
    for i in 0..8 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 2048, 1, Bandwidth::gbps(25)),
        );
    }
    for i in 8..16 {
        s.start_at(
            Time::ZERO + Duration::millis(4),
            FlowSpec::new(i, FlowClass::CpuInvolved, 2048, 1, Bandwidth::gbps(25)),
        );
    }
    let burst = run_policy(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        s.build(),
        2_000,
    );
    assert_eq!(burst.dropped, 0, "burst excess must not be dropped");
    assert!(
        burst.slow_path_pkts > 0,
        "burst excess must be elastically buffered"
    );
}

#[test]
fn ceio_latency_beats_baseline_under_contention() {
    let cfg = thrash_cfg();
    let base = run_policy(cfg.clone(), UnmanagedPolicy, thrash_scenario(), 2_000);
    let ceio = run_policy(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        thrash_scenario(),
        2_000,
    );
    assert!(
        ceio.involved_latency.p999() < base.involved_latency.p999(),
        "CEIO p999 {} vs baseline {}",
        ceio.involved_latency.p999(),
        base.involved_latency.p999()
    );
}

#[test]
fn phase_exclusivity_means_zero_ordering_stalls() {
    let cfg = thrash_cfg();
    let ceio = run_policy(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        thrash_scenario(),
        2_000,
    );
    assert_eq!(
        ceio.ordering_stalls, 0,
        "phase exclusivity must never leave a ready packet blocked by a gap"
    );
}

#[test]
fn light_load_stays_entirely_on_fast_path() {
    let cfg = HostConfig::default();
    let mut s = Scenario::new();
    s.start_at(
        Time::ZERO,
        FlowSpec::new(0, FlowClass::CpuInvolved, 1024, 1, Bandwidth::gbps(5)),
    );
    let ceio = run_policy(cfg.clone(), CeioPolicy::new(ceio_cfg(&cfg)), s.build(), 30);
    assert_eq!(ceio.slow_path_pkts, 0, "no slow path needed at light load");
    assert_eq!(ceio.dropped, 0);
    // Overhead check (Fig. 11): CEIO fast path ≈ unmanaged datapath.
    let mut s2 = Scenario::new();
    s2.start_at(
        Time::ZERO,
        FlowSpec::new(0, FlowClass::CpuInvolved, 1024, 1, Bandwidth::gbps(5)),
    );
    let base = run_policy(cfg, UnmanagedPolicy, s2.build(), 30);
    let ratio = ceio.involved_mpps / base.involved_mpps;
    assert!(
        (0.98..=1.02).contains(&ratio),
        "fast-path overhead ratio {ratio}"
    );
}

#[test]
fn bypass_flows_degrade_to_slow_path_in_mixed_workload() {
    // 4 involved + 4 bypass flows, all saturating: bypass flows hold
    // credits across whole messages (lazy release) and must end up on the
    // slow path far more than involved flows (§4.1's design goal).
    let cfg = thrash_cfg();
    let mut s = Scenario::new();
    for i in 0..4 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 1024, 1, Bandwidth::gbps(25)),
        );
    }
    for i in 4..8 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuBypass, 2048, 1024, Bandwidth::gbps(25)),
        );
    }
    let mut sim = Machine::build(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        s.build(),
        app_factory(200),
    );
    run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));
    let st = &sim.model.st;
    let slow_share = |class: FlowClass| -> f64 {
        let (mut slow, mut total) = (0u64, 0u64);
        for f in st.flows.values().filter(|f| f.spec.class == class) {
            slow += f.counters.slow_pkts;
            total += f.nic_seq_next;
        }
        if total == 0 {
            0.0
        } else {
            slow as f64 / total as f64
        }
    };
    let involved_slow = slow_share(FlowClass::CpuInvolved);
    let bypass_slow = slow_share(FlowClass::CpuBypass);
    assert!(
        bypass_slow > involved_slow,
        "bypass flows must degrade more: involved {involved_slow:.3} vs bypass {bypass_slow:.3}"
    );
}

#[test]
fn credit_conservation_holds_through_a_full_run() {
    let cfg = thrash_cfg();
    let mut s = Scenario::new();
    for i in 0..6 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 2048, 1, Bandwidth::gbps(25)),
        );
    }
    // Churn two flows mid-run to exercise stop/start credit paths.
    s.stop_at(Time::ZERO + Duration::millis(2), ceio_net::FlowId(0));
    s.start_at(
        Time::ZERO + Duration::millis(3),
        FlowSpec::new(10, FlowClass::CpuBypass, 2048, 128, Bandwidth::gbps(25)),
    );
    let mut sim = Machine::build(
        cfg.clone(),
        CeioPolicy::new(ceio_cfg(&cfg)),
        s.build(),
        app_factory(2_000),
    );
    run_to_report(&mut sim, Duration::millis(1), Duration::millis(5));
    assert!(
        sim.model.policy.credits.conserved(),
        "credits must be conserved across churn"
    );
    // In-flight credits are bounded by the LLC-derived total (Eq. 1).
    assert!(sim.model.policy.credits.outstanding() <= cfg.credit_total());
}

#[test]
fn ceio_run_is_deterministic() {
    let cfg = thrash_cfg();
    let run = || {
        let r = run_policy(
            cfg.clone(),
            CeioPolicy::new(ceio_cfg(&cfg)),
            thrash_scenario(),
            2_000,
        );
        (
            r.involved_mpps.to_bits(),
            r.llc_miss_rate.to_bits(),
            r.slow_path_pkts,
            r.involved_latency.p999(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn ablation_without_optimizations_is_worse_but_still_beats_baseline() {
    // Table 4's middle column: CEIO w/o fast/slow-path optimizations
    // (sync fetch, no reallocation) on a mixed workload.
    let cfg = thrash_cfg();
    let mk = |full: bool| {
        let mut s = Scenario::new();
        for i in 0..4 {
            s.start_at(
                Time::ZERO,
                FlowSpec::new(i, FlowClass::CpuInvolved, 1024, 1, Bandwidth::gbps(25)),
            );
        }
        for i in 4..8 {
            s.start_at(
                Time::ZERO,
                FlowSpec::new(i, FlowClass::CpuBypass, 2048, 1024, Bandwidth::gbps(25)),
            );
        }
        let ceio_conf = if full {
            ceio_cfg(&cfg)
        } else {
            ceio_cfg(&cfg).without_optimizations()
        };
        run_policy(cfg.clone(), CeioPolicy::new(ceio_conf), s.build(), 200)
    };
    let full = mk(true);
    let without = mk(false);
    // In this small scenario the gap can be within run-to-run jitter; the
    // quantitative comparison is Table 4's job. Here we only require that
    // the optimizations never *hurt* beyond noise.
    assert!(
        full.involved_mpps >= without.involved_mpps * 0.95,
        "optimizations must not hurt: full {} vs w/o {}",
        full.involved_mpps,
        without.involved_mpps
    );
}

#[test]
fn exhausted_elastic_store_degrades_to_drop_mode_and_recovers() {
    // A deliberately tiny on-NIC store plus zero credits forces every
    // packet onto the slow path until the store fills: the controller must
    // enter degraded (drop-fallback) mode instead of parking into a full
    // store, and — once the backlog drains after the sender stops — leave
    // it again through the calm-poll hysteresis.
    let mut cfg = thrash_cfg();
    cfg.nic.onboard_capacity = 8 * 1024; // four packets of 2 KB
    let ceio_conf = CeioConfig {
        credit_total: 0, // everything slow: the store is the only path
        ..ceio_cfg(&cfg)
    };
    let mut s = Scenario::new();
    let mut spec = FlowSpec::new(0, FlowClass::CpuInvolved, 2048, 1, Bandwidth::gbps(50));
    spec.stop = Time::ZERO + Duration::millis(4);
    s.start_at(Time::ZERO, spec);
    let mut sim = Machine::build(cfg, CeioPolicy::new(ceio_conf), s.build(), app_factory(500));
    sim.run_until(Time::ZERO + Duration::millis(8), u64::MAX);
    let policy = &sim.model.policy;
    let st = &sim.model.st;
    assert!(
        policy.stats().degraded_entries > 0,
        "a full store must trip degraded mode"
    );
    assert!(
        policy.stats().degraded_exits > 0,
        "the drained store must re-enable elastic buffering"
    );
    assert!(
        !policy.degraded(),
        "the controller must be back to normal once traffic ends"
    );
    assert!(
        st.dropped_total > 0,
        "degraded mode drops, like legacy DDIO"
    );
    let f = st.flows.values().next().unwrap();
    assert!(f.counters.consumed_pkts > 0, "delivery must continue");
    assert!(policy.credits.conserved(), "Eq. 1 must survive degradation");
    assert_eq!(
        f.gen.emitted(),
        f.counters.consumed_pkts + st.dropped_total,
        "every packet is delivered or counted dropped"
    );
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use ceio_chaos::{FaultPlan, FaultSite};
    use ceio_net::Scenario;

    fn one_flow(stop_ms: u64) -> Scenario {
        let mut s = Scenario::new();
        let mut spec = FlowSpec::new(0, FlowClass::CpuInvolved, 2048, 1, Bandwidth::gbps(25));
        spec.stop = Time::ZERO + Duration::millis(stop_ms);
        s.start_at(Time::ZERO, spec);
        s
    }

    #[test]
    fn lost_releases_are_reclaimed_by_the_lease_watchdog() {
        // 30% of lazy credit releases vanish on the NIC-host path. Without
        // leases the flow would bleed credits until fully degraded; the
        // watchdog reclaims every lost grant at TTL expiry, so the flow
        // keeps consuming fast-path credits and Eq. 1 holds throughout.
        let cfg = thrash_cfg();
        let plan = FaultPlan::new(21).with_rate(FaultSite::CreditReleaseLoss, 0.3);
        let mut sim = Machine::build(
            cfg.clone(),
            CeioPolicy::new(ceio_cfg(&cfg)),
            one_flow(4).build(),
            app_factory(500),
        );
        sim.model.arm_chaos(&plan);
        sim.run_until(Time::ZERO + Duration::millis(8), u64::MAX);
        let cm = &sim.model.policy.credits;
        assert!(cm.leases_enabled(), "the plan's TTL must arm leases");
        assert!(
            cm.stats().lease_reclaims > 0,
            "lost releases must be recovered by the watchdog"
        );
        assert!(cm.conserved(), "Eq. 1 must hold under release loss");
        let f = sim.model.st.flows.values().next().unwrap();
        assert!(
            f.counters.consumed_pkts > 1000,
            "recovered credits keep the fast path alive: {}",
            f.counters.consumed_pkts
        );
    }

    #[test]
    fn delayed_releases_do_not_double_credit() {
        // Releases delayed past the lease TTL race the watchdog: the
        // reclaim wins and the late release must be dropped as stale, not
        // credited a second time. A short TTL makes the race frequent.
        let cfg = thrash_cfg();
        let plan = FaultPlan::new(5)
            .with_rate(FaultSite::CreditReleaseDelay, 0.5)
            .with_lease_ttl(Some(ceio_sim::Duration::micros(30)));
        let mut sim = Machine::build(
            cfg.clone(),
            CeioPolicy::new(ceio_cfg(&cfg)),
            one_flow(4).build(),
            app_factory(500),
        );
        sim.model.arm_chaos(&plan);
        sim.run_until(Time::ZERO + Duration::millis(8), u64::MAX);
        let cm = &sim.model.policy.credits;
        assert!(
            cm.conserved(),
            "delay/reclaim races must never mint credits"
        );
        assert!(
            cm.outstanding() <= cm.total(),
            "no overdraft under delayed releases"
        );
        let stats = sim.model.policy.chaos_stats().expect("chaos must be armed");
        assert!(
            stats.at(FaultSite::CreditReleaseDelay) > 0,
            "delays must actually have been injected"
        );
    }

    #[test]
    fn rmt_install_delays_charge_the_arm_core() {
        let cfg = thrash_cfg();
        let run = |plan: Option<FaultPlan>| {
            let ceio_conf = CeioConfig {
                // Tight credits force frequent fast<->slow rewrites.
                credit_total: 4,
                ..ceio_cfg(&cfg)
            };
            let mut sim = Machine::build(
                cfg.clone(),
                CeioPolicy::new(ceio_conf),
                one_flow(2).build(),
                app_factory(500),
            );
            if let Some(p) = plan.as_ref() {
                sim.model.arm_chaos(p);
            }
            sim.run_until(Time::ZERO + Duration::millis(4), u64::MAX);
            (
                sim.model.st.nic_arm.stats().busy_ns,
                sim.model.policy.stats().rule_rewrites,
            )
        };
        let (busy_clean, rewrites_clean) = run(None);
        let (busy_chaos, _) = run(Some(
            FaultPlan::new(9).with_rate(FaultSite::RmtInstallDelay, 1.0),
        ));
        assert!(rewrites_clean > 0, "the workload must rewrite rules");
        assert!(
            busy_chaos > busy_clean,
            "injected RMT delays must show up as ARM-core busy time: \
             clean {busy_clean} vs chaos {busy_chaos}"
        );
    }

    #[test]
    fn full_canned_storm_preserves_invariants() {
        // Every fault site at once (the "smoke" canned plan): the run must
        // stay conserved, keep delivering, and report recovery activity.
        let cfg = thrash_cfg();
        let plan = FaultPlan::canned("smoke", 1234).expect("smoke plan exists");
        let mut sim = Machine::build(
            cfg.clone(),
            CeioPolicy::new(ceio_cfg(&cfg)),
            one_flow(4).build(),
            app_factory(500),
        );
        sim.model.arm_chaos(&plan);
        sim.run_until(Time::ZERO + Duration::millis(10), u64::MAX);
        assert!(
            sim.model.injected_faults() > 0,
            "the smoke plan must inject something"
        );
        assert!(
            sim.model.policy.credits.conserved(),
            "Eq. 1 under the storm"
        );
        let f = sim.model.st.flows.values().next().unwrap();
        assert!(f.counters.consumed_pkts > 0, "the pipeline must survive");
    }
}
