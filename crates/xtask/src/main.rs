//! `cargo xtask` — workspace maintenance tasks.
//!
//! Two gates run in CI (`scripts/check.sh`) alongside clippy:
//!
//! * **`lint`** — the line-oriented source audit, enforcing rules clippy
//!   cannot express per-location without littering the tree with
//!   attributes:
//!   - No `unwrap()/expect()/panic!/unreachable!/todo!/unimplemented!` in
//!     non-test library code. `expect("invariant: ...")` is permitted —
//!     the message documents why the failure is impossible — and a vetted
//!     allowlist (`crates/xtask/lint-allow.txt`) carries the remaining
//!     sites, so new ones cannot land silently.
//!   - `#[must_use]` on `pub fn`s in `ceio-core` returning counters or
//!     `Result` — credit counts that are silently dropped are exactly how
//!     conservation bugs hide.
//!   - No float equality on simulated time: comparing `as_secs_f64()` or
//!     float-typed occupancy values with `==`/`!=` is flagged.
//!
//! * **`analyze`** — the AST-level analyzer in `crates/analyze`
//!   (`ceio-analyze`): determinism (no hash-order iteration or ambient
//!   time in sim crates), Eq. 1 conservation asserts on credit-ledger
//!   mutators, telemetry coverage of every `*Stats` field and chaos fault
//!   site, and unit-newtype safety on public `ceio-core` APIs. Suppress
//!   individual findings via `crates/xtask/analyze-allow.txt`; run with
//!   `--format json` for the machine-readable report CI archives.
//!
//! Both tools share one source-discovery and allowlist implementation
//! ([`ceio_analyze::source`], [`ceio_analyze::allow`]), so they can never
//! disagree about what "the workspace" or "an exemption" is.
//!
//! Scope: `src/` trees of the workspace's library crates plus the root
//! `src/`. Test code (`tests/`, `benches/`, `examples/`, and everything
//! after a `#[cfg(test)]` line inside a source file), the `compat/`
//! offline stubs, and the tool crates themselves are exempt.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ceio_analyze::allow::{self, AllowEntry};
use ceio_analyze::source::{library_sources, strip_comments_and_strings, SourceFile};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze(&args[1..]),
        Some("help") | None => {
            eprintln!("usage: cargo xtask <lint|analyze> [--format json]");
            eprintln!("  lint      run the line-oriented source audit");
            eprintln!("  analyze   run the AST-level analyzer (ceio-analyze)");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask `{other}` (try: cargo xtask lint | analyze)");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: two levels up from this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// The AST-level gate: delegate to `ceio-analyze` and render its report.
fn analyze(args: &[String]) -> ExitCode {
    let mut format = "text";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = "json",
                Some("text") => format = "text",
                other => {
                    eprintln!("xtask analyze: unknown format {other:?} (json|text)");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => format = "json",
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    match ceio_analyze::analyze_workspace(&root) {
        Ok(analysis) => {
            if format == "json" {
                print!("{}", analysis.to_json());
            } else {
                print!("{}", analysis.to_text());
            }
            if analysis.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The line-oriented gate. The analyzer crate is scanned too — it is
/// library code and holds to the same standard; only this crate (whose
/// diagnostics must spell out the denied tokens) is exempt.
fn lint() -> ExitCode {
    let root = workspace_root();
    let allow = allow::load_allowlist(&root.join("crates/xtask/lint-allow.txt"));
    let mut findings: Vec<String> = Vec::new();

    match library_sources(&root, &["xtask"]) {
        Ok(files) => {
            for file in &files {
                lint_file(file, &allow, &mut findings);
            }
        }
        Err(e) => findings.push(format!("source discovery failed: {e}")),
    }

    for entry in allow::stale_entries(&allow) {
        findings.push(format!(
            "lint-allow.txt: stale entry `{} {}` (no longer matches — remove it)",
            entry.path, entry.pattern
        ));
    }

    if findings.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        let mut out = String::new();
        let _ = writeln!(out, "xtask lint: {} finding(s)", findings.len());
        for f in &findings {
            let _ = writeln!(out, "  {f}");
        }
        eprint!("{out}");
        ExitCode::FAILURE
    }
}

/// Tokens denied in non-test library code.
const DENIED: &[&str] = &[
    ".unwrap()",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn lint_file(file: &SourceFile, allow: &[AllowEntry], findings: &mut Vec<String>) {
    let rel = file.rel.as_str();
    let text = file.text.as_str();
    let is_core = rel.starts_with("crates/core/src");
    // Lexer-accurate stripped view of the whole file (handles escapes, raw
    // strings, char literals, and block comments — the places the old
    // per-line scanner could desynchronize).
    let stripped = strip_comments_and_strings(text);
    let mut stripped_lines = stripped.lines();
    let mut pending_attrs: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let code = stripped_lines.next().unwrap_or("").to_string();
        // Everything from the unit-test module to EOF is test code.
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let trimmed = raw.trim_start();

        let allowed = |raw: &str| allow::is_allowed(allow, None, rel, &[raw]);

        // -- denied panic-path tokens -------------------------------------
        for tok in DENIED {
            if code.contains(tok) && !allowed(raw) {
                findings.push(format!(
                    "{rel}:{lineno}: `{tok}` in library code (return an error, use \
                     debug_assert!, or add to crates/xtask/lint-allow.txt with review)"
                ));
            }
        }
        // `.expect(` needs its message to document an invariant.
        if code.contains(".expect(") {
            // rustfmt may reflow a long message onto the following line.
            let documented = raw.contains(".expect(\"invariant:")
                || (raw.trim_end().ends_with(".expect(")
                    && text
                        .lines()
                        .nth(idx + 1)
                        .is_some_and(|next| next.trim_start().starts_with("\"invariant:")));
            if !documented && !allowed(raw) {
                findings.push(format!(
                    "{rel}:{lineno}: `.expect(..)` without an `\"invariant: ...\"` message \
                     in library code"
                ));
            }
        }

        // -- float comparisons on simulated time --------------------------
        if (code.contains("==") || code.contains("!=")) && !code.contains("<=") {
            let floaty = code.contains("as_secs_f64()")
                || code.contains("as_f64()")
                || has_float_literal_cmp(&code);
            if floaty && !allowed(raw) {
                findings.push(format!(
                    "{rel}:{lineno}: float equality on simulated time / derived f64 \
                     (compare integer nanos, or use an epsilon)"
                ));
            }
        }

        // -- #[must_use] on ceio-core counters/Results --------------------
        if is_core {
            if trimmed.starts_with("#[") || trimmed.starts_with("///") {
                pending_attrs.push(trimmed.to_string());
            } else if trimmed.starts_with("pub fn ") || trimmed.starts_with("pub const fn ") {
                if needs_must_use(trimmed)
                    && !pending_attrs.iter().any(|a| a.contains("must_use"))
                    && !allowed(raw)
                {
                    findings.push(format!(
                        "{rel}:{lineno}: pub fn returning a count/Result in ceio-core \
                         without #[must_use]"
                    ));
                }
                pending_attrs.clear();
            } else if !trimmed.is_empty() {
                pending_attrs.clear();
            }
        }
    }
}

/// Whether a `pub fn` signature line returns a count-like or Result type.
fn needs_must_use(sig: &str) -> bool {
    let Some(ret) = sig.split_once("->").map(|(_, r)| r.trim()) else {
        return false;
    };
    ret.starts_with("u64")
        || ret.starts_with("u32")
        || ret.starts_with("usize")
        || ret.starts_with("bool")
        || ret.starts_with("Result<")
        || ret.starts_with("Option<")
}

/// Whether a line contains `== <float literal>` or `<float literal> ==`.
fn has_float_literal_cmp(code: &str) -> bool {
    for op in ["==", "!="] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(op) {
            let at = from + pos;
            let before = code[..at].trim_end();
            let after = code[at + 2..].trim_start();
            if looks_like_float(after)
                || before.ends_with(|c: char| c.is_ascii_digit()) && {
                    // `1.0 ==` — find trailing float in `before`
                    let tail: String = before
                        .chars()
                        .rev()
                        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
                        .collect();
                    tail.contains('.')
                }
            {
                return true;
            }
            from = at + 2;
        }
    }
    false
}

fn looks_like_float(s: &str) -> bool {
    let tok: String = s
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    tok.contains('.') && tok.chars().next().is_some_and(|c| c.is_ascii_digit())
}
