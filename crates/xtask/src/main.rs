//! `cargo xtask` — workspace maintenance tasks.
//!
//! The only task today is `lint`: a lightweight source audit that runs in
//! CI (`scripts/check.sh`) alongside clippy and enforces rules clippy
//! cannot express per-location without littering the tree with attributes:
//!
//! * **No `unwrap()/expect()/panic!/unreachable!/todo!/unimplemented!` in
//!   non-test library code.** `expect("invariant: ...")` is permitted —
//!   the message documents why the failure is impossible — and a vetted
//!   allowlist (`crates/xtask/lint-allow.txt`) carries the remaining
//!   sites, so new ones cannot land silently.
//! * **`#[must_use]` on `pub fn`s in `ceio-core` returning counters or
//!   `Result`** — credit counts that are silently dropped are exactly how
//!   conservation bugs hide.
//! * **No float equality on simulated time**: comparing `as_secs_f64()`
//!   or float-typed occupancy values with `==`/`!=` is flagged.
//!
//! Scope: `src/` trees of the workspace's library crates plus the root
//! `src/`. Test code (`tests/`, `benches/`, `examples/`, and everything
//! after a `#[cfg(test)]` line inside a source file), the `compat/`
//! offline stubs, and this crate are exempt.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("help") | None => {
            eprintln!("usage: cargo xtask lint");
            eprintln!("  lint   run the source-audit gate (see crates/xtask/src/main.rs)");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask `{other}` (try: cargo xtask lint)");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: two levels up from this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// One allowlist entry: file path (workspace-relative) + a substring the
/// offending line must contain.
#[derive(Debug)]
struct AllowEntry {
    path: String,
    pattern: String,
    used: bool,
}

fn load_allowlist(root: &Path) -> Vec<AllowEntry> {
    let path = root.join("crates/xtask/lint-allow.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, pattern) = l.split_once(char::is_whitespace)?;
            Some(AllowEntry {
                path: path.to_string(),
                pattern: pattern.trim().to_string(),
                used: false,
            })
        })
        .collect()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut allow = load_allowlist(&root);
    let mut findings: Vec<String> = Vec::new();

    for file in library_sources(&root) {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = std::fs::read_to_string(&file) else {
            findings.push(format!("{rel}: unreadable source file"));
            continue;
        };
        lint_file(&rel, &text, &mut allow, &mut findings);
    }

    for entry in &allow {
        if !entry.used {
            findings.push(format!(
                "lint-allow.txt: stale entry `{} {}` (no longer matches — remove it)",
                entry.path, entry.pattern
            ));
        }
    }

    if findings.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        let mut out = String::new();
        let _ = writeln!(out, "xtask lint: {} finding(s)", findings.len());
        for f in &findings {
            let _ = writeln!(out, "  {f}");
        }
        eprint!("{out}");
        ExitCode::FAILURE
    }
}

/// All `.rs` files under the library source trees.
fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let name = e.file_name();
            // This crate audits the others, not itself (its diagnostics
            // must mention the denied tokens); compat/ stubs are exempt.
            if name == "xtask" {
                continue;
            }
            let src = e.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let mut files = Vec::new();
    for d in dirs {
        collect_rs(&d, &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Tokens denied in non-test library code.
const DENIED: &[&str] = &[
    ".unwrap()",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn lint_file(rel: &str, text: &str, allow: &mut [AllowEntry], findings: &mut Vec<String>) {
    let is_core = rel.starts_with("crates/core/src");
    let mut pending_attrs: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Everything from the unit-test module to EOF is test code.
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = strip_comments_and_strings(raw);
        let trimmed = raw.trim_start();

        // -- denied panic-path tokens -------------------------------------
        for tok in DENIED {
            if code.contains(tok) && !is_allowed(rel, raw, allow) {
                findings.push(format!(
                    "{rel}:{lineno}: `{tok}` in library code (return an error, use \
                     debug_assert!, or add to crates/xtask/lint-allow.txt with review)"
                ));
            }
        }
        // `.expect(` needs its message to document an invariant.
        if code.contains(".expect(") {
            // rustfmt may reflow a long message onto the following line.
            let documented = raw.contains(".expect(\"invariant:")
                || (raw.trim_end().ends_with(".expect(")
                    && text
                        .lines()
                        .nth(idx + 1)
                        .is_some_and(|next| next.trim_start().starts_with("\"invariant:")));
            if !documented && !is_allowed(rel, raw, allow) {
                findings.push(format!(
                    "{rel}:{lineno}: `.expect(..)` without an `\"invariant: ...\"` message \
                     in library code"
                ));
            }
        }

        // -- float comparisons on simulated time --------------------------
        if (code.contains("==") || code.contains("!=")) && !code.contains("<=") {
            let floaty = code.contains("as_secs_f64()")
                || code.contains("as_f64()")
                || has_float_literal_cmp(&code);
            if floaty && !is_allowed(rel, raw, allow) {
                findings.push(format!(
                    "{rel}:{lineno}: float equality on simulated time / derived f64 \
                     (compare integer nanos, or use an epsilon)"
                ));
            }
        }

        // -- #[must_use] on ceio-core counters/Results --------------------
        if is_core {
            if trimmed.starts_with("#[") || trimmed.starts_with("///") {
                pending_attrs.push(trimmed.to_string());
            } else if trimmed.starts_with("pub fn ") || trimmed.starts_with("pub const fn ") {
                if needs_must_use(trimmed)
                    && !pending_attrs.iter().any(|a| a.contains("must_use"))
                    && !is_allowed(rel, raw, allow)
                {
                    findings.push(format!(
                        "{rel}:{lineno}: pub fn returning a count/Result in ceio-core \
                         without #[must_use]"
                    ));
                }
                pending_attrs.clear();
            } else if !trimmed.is_empty() {
                pending_attrs.clear();
            }
        }
    }
}

/// Whether a `pub fn` signature line returns a count-like or Result type.
fn needs_must_use(sig: &str) -> bool {
    let Some(ret) = sig.split_once("->").map(|(_, r)| r.trim()) else {
        return false;
    };
    ret.starts_with("u64")
        || ret.starts_with("u32")
        || ret.starts_with("usize")
        || ret.starts_with("bool")
        || ret.starts_with("Result<")
        || ret.starts_with("Option<")
}

/// Whether a line contains `== <float literal>` or `<float literal> ==`.
fn has_float_literal_cmp(code: &str) -> bool {
    for op in ["==", "!="] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(op) {
            let at = from + pos;
            let before = code[..at].trim_end();
            let after = code[at + 2..].trim_start();
            if looks_like_float(after)
                || before.ends_with(|c: char| c.is_ascii_digit()) && {
                    // `1.0 ==` — find trailing float in `before`
                    let tail: String = before
                        .chars()
                        .rev()
                        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
                        .collect();
                    tail.contains('.')
                }
            {
                return true;
            }
            from = at + 2;
        }
    }
    false
}

fn looks_like_float(s: &str) -> bool {
    let tok: String = s
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    tok.contains('.') && tok.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Consume an allowlist entry matching this file + line, if any.
fn is_allowed(rel: &str, raw: &str, allow: &mut [AllowEntry]) -> bool {
    for entry in allow.iter_mut() {
        if entry.path == rel && raw.contains(&entry.pattern) {
            entry.used = true;
            return true;
        }
    }
    false
}

/// Remove line comments and the contents of string literals (keeps the
/// quotes) so token scans don't fire inside docs or messages. Heuristic:
/// handles `//` comments and plain `"` strings; raw strings and escapes
/// beyond `\"` are not fully parsed (good enough for this codebase).
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut prev_escape = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '"' && !prev_escape {
                in_str = false;
                out.push('"');
            }
            prev_escape = c == '\\' && !prev_escape;
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                prev_escape = false;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}
