//! Cross-process determinism: two *separate* invocations of the
//! `ceio-trace` binary with identical flags must emit byte-identical
//! CSV. The in-process golden tests (`queue_determinism.rs`) pin the
//! simulation against a stored artifact; this test additionally rules
//! out any per-process ambient state — address-space layout feeding a
//! hash seed, time-of-day, environment-dependent iteration order —
//! which is exactly the class of bug the `cargo xtask analyze`
//! determinism rule exists to keep out.

use std::process::Command;

/// Run the `ceio-trace` binary with `args` and return its stdout bytes.
fn trace_stdout(args: &[&str]) -> Vec<u8> {
    let exe = env!("CARGO_BIN_EXE_ceio-trace");
    let out = Command::new(exe)
        .args(args)
        .env_remove("RUST_LOG")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "ceio-trace {args:?} exited with {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn same_flags_same_bytes_across_processes() {
    let args = [
        "--policy",
        "ceio",
        "--scenario",
        "mixed",
        "--millis",
        "4",
        "--warmup-ms",
        "1",
        "--seed",
        "7",
        "--queues",
        "2",
    ];
    let a = trace_stdout(&args);
    let b = trace_stdout(&args);
    assert!(
        a.lines_count() > 1,
        "expected a CSV header plus samples, got {} bytes",
        a.len()
    );
    assert_eq!(
        a, b,
        "two processes with identical flags diverged — ambient \
         non-determinism in the data path"
    );
}

/// The failover acceptance pin: a seed-pinned 4-queue run through the
/// canned `queue-flap` plan — watchdog, failover, credit quarantine,
/// recovery and all — must be byte-identical across two independent
/// processes, and must actually differ from the fault-free run (so the
/// identity check cannot pass vacuously on an inert plan).
#[test]
#[cfg(feature = "chaos")]
fn queue_flap_same_bytes_across_processes() {
    let flap = [
        "--policy",
        "ceio",
        "--scenario",
        "kv",
        "--millis",
        "3",
        "--warmup-ms",
        "1",
        "--seed",
        "42",
        "--queues",
        "4",
        "--fault-plan",
        "queue-flap",
    ];
    let a = trace_stdout(&flap);
    let b = trace_stdout(&flap);
    assert!(
        a.lines_count() > 1,
        "expected a CSV header plus samples, got {} bytes",
        a.len()
    );
    assert_eq!(
        a, b,
        "two queue-flap processes with identical seed diverged — the \
         failover path leaked ambient non-determinism"
    );
    let fault_free = trace_stdout(&flap[..flap.len() - 2]);
    assert_ne!(
        a, fault_free,
        "queue-flap run is identical to the fault-free run — the plan \
         never perturbed the data path"
    );
}

/// The way-partitioned LLC pin: a *default-config* run (pool model) must
/// emit byte-for-byte the CSV stored in the golden file — from a separate
/// process, so the set-associative refactor cannot have perturbed the
/// default path through any in-process side channel either. The golden
/// flags mirror `queue_determinism::kv_trace_csv` exactly (contended DPDK
/// host, 8 KV flows, 1 ms warmup, 2 ms measured).
#[test]
fn default_config_matches_golden_csv_across_processes() {
    let out = trace_stdout(&[
        "--policy",
        "ceio",
        "--scenario",
        "kv",
        "--millis",
        "2",
        "--warmup-ms",
        "1",
    ]);
    let golden = std::fs::read(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden/queue1_kv_ceio.csv"),
    )
    .expect("read golden CSV");
    assert_eq!(
        out, golden,
        "a default-config (pool-model) ceio-trace run no longer matches \
         the golden CSV — the set-associative LLC work must leave the \
         default path byte-identical"
    );
}

/// The set-associative model must be exactly as deterministic as the
/// pool: two processes with the same `--llc-model setassoc --ddio-ways`
/// flags emit identical bytes — and those bytes must differ from the
/// pool run, so the flag demonstrably reaches the data path.
#[test]
fn setassoc_same_bytes_across_processes() {
    let common = [
        "--policy",
        "ceio",
        "--scenario",
        "kv",
        "--millis",
        "3",
        "--warmup-ms",
        "1",
        "--seed",
        "7",
    ];
    let mut setassoc = common.to_vec();
    setassoc.extend(["--llc-model", "setassoc", "--ddio-ways", "4"]);
    let a = trace_stdout(&setassoc);
    let b = trace_stdout(&setassoc);
    assert!(
        a.lines_count() > 1,
        "expected a CSV header plus samples, got {} bytes",
        a.len()
    );
    assert_eq!(
        a, b,
        "two set-associative runs with identical flags diverged — the \
         way-partitioned model leaked ambient non-determinism"
    );
    let pool = trace_stdout(&common);
    assert_ne!(
        a, pool,
        "setassoc at 4 DDIO ways is identical to the pool run — the \
         --llc-model flag never reached the memory model"
    );
}

#[test]
fn different_scenarios_actually_differ() {
    // Guards the test above against vacuous success (e.g. an empty or
    // constant report making every run trivially identical).
    let kv = trace_stdout(&["--scenario", "kv", "--millis", "4", "--seed", "7"]);
    let mixed = trace_stdout(&["--scenario", "mixed", "--millis", "4", "--seed", "7"]);
    assert_ne!(kv, mixed, "kv and mixed scenarios produced identical CSV");
}

/// Count of `\n`-terminated lines, for the header-plus-samples check.
trait LinesCount {
    fn lines_count(&self) -> usize;
}

impl LinesCount for Vec<u8> {
    fn lines_count(&self) -> usize {
        self.iter().filter(|&&b| b == b'\n').count()
    }
}
