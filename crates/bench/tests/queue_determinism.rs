//! The multi-queue refactor's safety net: a single-queue (`num_queues =
//! 1`, the default) run must emit a `ceio-trace` CSV that is **byte
//! identical** to the pre-refactor single-queue pipeline. The golden file
//! was captured from the seed code *before* the `RxQueue` decomposition
//! landed, so any drift here means the refactor changed observable
//! behavior — not just internal structure.
//!
//! When a change is intentional (and argued for in the PR), regenerate
//! with
//!
//! ```text
//! CEIO_GOLDEN_REGEN=1 cargo test -p ceio-bench --test queue_determinism
//! ```
//!
//! and review the diff like any other code change.

use ceio_bench::runner::{run_one, series_csv, PolicyKind};
use ceio_bench::workloads::{self, AppKind, Transport};
use ceio_sim::Duration;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the golden file `name`, or rewrite the file
/// when `CEIO_GOLDEN_REGEN` is set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("CEIO_GOLDEN_REGEN").is_some() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create golden dir");
        }
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n\
             (run with CEIO_GOLDEN_REGEN=1 to create it)",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "{name} diverged from its golden file {}\n\
         (the single-queue pipeline must stay bit-identical to the \
         pre-refactor seed; if the change is intentional, regenerate with \
         CEIO_GOLDEN_REGEN=1 and review the diff)",
        path.display()
    );
}

/// Exactly the `ceio-trace --scenario kv` configuration at test scale:
/// the contended DPDK host with the CLI's 100 µs sample window, eight
/// always-on CPU-involved KV flows, 1 ms warmup, 2 ms measured.
fn kv_trace_csv(policy: PolicyKind) -> String {
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.sample_window = Duration::micros(100);
    let link = host.net.link_bandwidth;
    let report = run_one(
        host,
        policy,
        workloads::involved_flows(8, 512, link),
        workloads::app_factory(AppKind::Kv),
        Duration::millis(1),
        Duration::millis(2),
    );
    series_csv(&report)
}

#[test]
fn single_queue_ceio_csv_matches_pre_refactor_golden() {
    let csv = kv_trace_csv(PolicyKind::Ceio);
    assert!(csv.lines().count() > 1, "the run must produce samples");
    check("queue1_kv_ceio.csv", &csv);
}

#[test]
fn single_queue_baseline_csv_matches_pre_refactor_golden() {
    // The unmanaged policy exercises the host pipeline without CEIO's
    // controller, pinning the NIC/DMA/ring machinery itself.
    let csv = kv_trace_csv(PolicyKind::Baseline);
    assert!(csv.lines().count() > 1, "the run must produce samples");
    check("queue1_kv_baseline.csv", &csv);
}

#[test]
fn single_queue_csv_is_reproducible() {
    let a = kv_trace_csv(PolicyKind::Ceio);
    let b = kv_trace_csv(PolicyKind::Ceio);
    assert_eq!(
        a, b,
        "same configuration must reproduce the CSV byte-for-byte"
    );
}

/// The same run resharded over four queues: still fully deterministic
/// (byte-identical across invocations), and *different* from the
/// single-queue pipeline — the shards really do change the event
/// interleaving rather than being renamed bookkeeping.
fn kv_trace_csv_queues(policy: PolicyKind, queues: usize) -> String {
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.sample_window = Duration::micros(100);
    host.num_queues = queues;
    host.nic.queue_issue_gap = Duration::nanos(150);
    let link = host.net.link_bandwidth;
    let report = run_one(
        host,
        policy,
        workloads::involved_flows(8, 512, link),
        workloads::app_factory(AppKind::Kv),
        Duration::millis(1),
        Duration::millis(2),
    );
    series_csv(&report)
}

#[test]
fn multi_queue_csv_is_reproducible_and_distinct() {
    let a = kv_trace_csv_queues(PolicyKind::Ceio, 4);
    let b = kv_trace_csv_queues(PolicyKind::Ceio, 4);
    assert_eq!(a, b, "4-queue run must reproduce byte-for-byte");
    let single = kv_trace_csv_queues(PolicyKind::Ceio, 1);
    assert_ne!(
        a, single,
        "with the issue gap armed, sharding must change the pipeline timing"
    );
}
