//! Acceptance contract of `ceio-scope`: a seed-pinned two-queue chaos run
//! with the flight recorder and an SLO armed must (a) reproduce its
//! time-series CSV byte-for-byte across independent simulations, (b) fire
//! at least one alert, and (c) render an HTML report carrying the
//! paper-figure charts. This is the library-level mirror of the
//! `scripts/check.sh` scope smoke (which drives the same path through the
//! `ceio-inspect` binary).

#![cfg(feature = "chaos")]

use ceio_bench::runner::{run_one_scoped, PolicyKind, ScopeOptions};
use ceio_bench::workloads::{self, AppKind, Transport};
use ceio_chaos::FaultPlan;
use ceio_host::DEFAULT_SCOPE_CAP;
use ceio_sim::Duration;
use ceio_telemetry::{render_html, SloRule};

fn scoped_run() -> (String, Vec<(String, u64, bool)>, String) {
    let plan = FaultPlan::parse("dma-flaky", 7).expect("canned plan");
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.num_queues = 2;
    let link = host.net.link_bandwidth;
    let slos = SloRule::parse_spec("alert=load,when=goodput_gbps,above=0.0001,for=100us")
        .expect("valid SLO spec");
    let (_, sim) = run_one_scoped(
        host,
        PolicyKind::Ceio,
        workloads::involved_flows(8, 512, link),
        workloads::app_factory(AppKind::Kv),
        Duration::millis(1),
        Duration::millis(3),
        Some(&plan),
        Some(ScopeOptions {
            interval: Duration::micros(20),
            cap: DEFAULT_SCOPE_CAP,
            slos,
            trace_cap: None,
        }),
    );
    let rec = sim.model.scope().expect("recorder stays armed after run");
    let charts = [
        rec.chart(
            "LLC I/O occupancy vs. DDIO capacity",
            "bytes",
            &["llc_occupancy_bytes", "ddio_capacity_bytes"],
        ),
        rec.chart(
            "Goodput over time",
            "Gbps",
            &["goodput_gbps", "fast_gbps", "slow_gbps"],
        ),
    ];
    let html = render_html("acceptance", &[], &rec.alert_states(), &charts);
    (rec.to_csv(), rec.alert_states(), html)
}

#[test]
fn two_queue_chaos_run_is_deterministic_fires_and_reports() {
    let (csv_a, alerts, html) = scoped_run();
    let (csv_b, _, _) = scoped_run();

    // (a) Byte-identical time series under identical seed+plan+config.
    assert_eq!(
        csv_a, csv_b,
        "seed-pinned two-queue chaos run must reproduce the scope CSV byte-for-byte"
    );
    let header = csv_a.lines().next().expect("CSV has a header");
    assert!(header.starts_with("t_ns,"), "{header}");
    for col in ["rxq_depth.q0", "rxq_depth.q1", "credit_outstanding.q1"] {
        assert!(header.contains(col), "missing per-queue column {col}");
    }
    assert!(
        csv_a.lines().count() > 50,
        "the run must sample many epochs"
    );

    // (b) The goodput SLO must fire at least once.
    let fired: u64 = alerts.iter().map(|(_, n, _)| n).sum();
    assert!(fired >= 1, "expected >=1 alert firing, got {alerts:?}");

    // (c) The report carries both paper figures as inline SVG.
    for needle in [
        "LLC I/O occupancy vs. DDIO capacity",
        "Goodput over time",
        "<svg",
    ] {
        assert!(html.contains(needle), "report HTML missing {needle:?}");
    }
}
