//! Determinism contract of the fault-injection CLI surface: the same
//! `--seed`/`--fault-plan` flags must reproduce byte-identical artifacts
//! (the `ceio-trace` CSV and the `ceio-inspect` snapshot JSON), and a
//! malformed plan spec must be rejected at parse time — the CLIs turn
//! that `Err` into `exit(2)`.

use ceio_chaos::FaultPlan;

#[test]
fn malformed_fault_plan_specs_are_rejected() {
    // Parsing is available in every build (the CLIs validate and exit 2
    // even when injection itself is compiled out).
    for bad in [
        "",
        "no-such-site=0.5",
        "dma-write-fault=1.5",
        "dma-write-fault=abc",
        "dma-write-fault",
        "lease-ttl=12parsecs",
    ] {
        assert!(
            FaultPlan::parse(bad, 1).is_err(),
            "spec {bad:?} must be rejected"
        );
    }
    for good in FaultPlan::CANNED {
        assert!(
            FaultPlan::parse(good, 1).is_ok(),
            "canned {good} must parse"
        );
    }
    assert!(FaultPlan::parse("dma-write-fault=0.05,consumer-pause=10us", 1).is_ok());
}

#[cfg(feature = "chaos")]
mod armed {
    use super::*;
    use ceio_bench::runner::{run_one_faulted, run_one_keep_faulted, series_csv, PolicyKind};
    use ceio_bench::workloads::{self, AppKind, Transport};
    use ceio_sim::{Duration, Time};

    fn csv_for(seed: u64) -> String {
        let plan = FaultPlan::parse("smoke", seed).expect("canned plan");
        let host = workloads::contended_host(Transport::Dpdk);
        let link = host.net.link_bandwidth;
        let report = run_one_faulted(
            host,
            PolicyKind::Ceio,
            workloads::involved_flows(8, 512, link),
            workloads::app_factory(AppKind::Kv),
            Duration::millis(1),
            Duration::millis(2),
            Some(&plan),
        );
        series_csv(&report)
    }

    #[test]
    fn identical_flags_emit_byte_identical_csv() {
        let a = csv_for(7);
        let b = csv_for(7);
        assert_eq!(a, b, "same seed+plan must reproduce the CSV byte-for-byte");
        assert!(a.lines().count() > 1, "the run must produce samples");
    }

    #[test]
    fn different_seeds_emit_different_faults() {
        // Not a strict requirement per-byte (a tiny run could coincide),
        // so compare the injected-fault counts, which the seed drives
        // directly.
        let count = |seed: u64| {
            let plan = FaultPlan::parse("dma-flaky", seed).expect("canned plan");
            let host = workloads::contended_host(Transport::Dpdk);
            let link = host.net.link_bandwidth;
            let (_, sim) = run_one_keep_faulted(
                host,
                PolicyKind::Ceio,
                workloads::involved_flows(8, 512, link),
                workloads::app_factory(AppKind::Kv),
                Duration::millis(1),
                Duration::millis(2),
                Some(&plan),
            );
            sim.model.injected_faults()
        };
        assert!(count(1) > 0, "the plan must inject");
        assert_ne!(
            count(1),
            count(2),
            "distinct seeds must draw distinct fault schedules"
        );
    }

    #[test]
    fn identical_flags_emit_byte_identical_snapshot_json() {
        let snapshot_for = || {
            let plan = FaultPlan::parse("smoke", 21).expect("canned plan");
            let host = workloads::contended_host(Transport::Dpdk);
            let link = host.net.link_bandwidth;
            let warmup = Duration::millis(1);
            let measure = Duration::millis(2);
            let (_, sim) = run_one_keep_faulted(
                host,
                PolicyKind::Ceio,
                workloads::involved_flows(8, 512, link),
                workloads::app_factory(AppKind::Kv),
                warmup,
                measure,
                Some(&plan),
            );
            sim.model.snapshot(Time::ZERO + warmup + measure).to_json()
        };
        let a = snapshot_for();
        let b = snapshot_for();
        assert_eq!(
            a, b,
            "same seed+plan must reproduce the metrics snapshot byte-for-byte"
        );
        assert!(
            a.contains("ceio_chaos_injected_total"),
            "chaos builds must export the injection counter"
        );
    }
}
