//! Exit-code contract of the operator-facing CLIs: every malformed-spec
//! path (`--slo`, `--fault-plan`, `--queues`, `--scope-interval`,
//! `--ddio-ways`, `--llc-model`, plus
//! missing values and unknown flags) must exit 2 with a one-line reason
//! on stderr naming the offending flag — never a panic, never a silent
//! fallback into a multi-second simulation with the wrong config.
//!
//! Table-driven over both binaries: `ceio-trace` and `ceio-inspect`
//! share their flag grammar, so any divergence in their rejection
//! behavior is itself a bug this test catches.

use std::process::Command;

/// Every malformed invocation: (case label, extra args, flag token the
/// stderr reason must name).
fn cases() -> Vec<(&'static str, Vec<&'static str>, &'static str)> {
    vec![
        ("zero queues", vec!["--queues", "0"], "--queues"),
        ("non-numeric queues", vec!["--queues", "many"], "--queues"),
        ("missing queues value", vec!["--queues"], "--queues"),
        (
            "malformed scope interval",
            vec!["--scope-interval", "5xs"],
            "--scope-interval",
        ),
        (
            "zero scope interval",
            vec!["--scope-interval", "0ns"],
            "--scope-interval",
        ),
        (
            "missing scope interval value",
            vec!["--scope-interval"],
            "--scope-interval",
        ),
        (
            "slo rule without a watched series",
            vec!["--slo", "alert=a,above=1"],
            "--slo",
        ),
        (
            "slo rule with a bad duration",
            vec!["--slo", "alert=a,when=goodput_gbps,above=1,for=5xs"],
            "--slo",
        ),
        ("missing slo value", vec!["--slo"], "--slo"),
        (
            "unknown fault plan",
            vec!["--fault-plan", "not-a-plan"],
            "--fault-plan",
        ),
        (
            "missing fault plan value",
            vec!["--fault-plan"],
            "--fault-plan",
        ),
        ("zero ddio ways", vec!["--ddio-ways", "0"], "--ddio-ways"),
        (
            "non-numeric ddio ways",
            vec!["--ddio-ways", "six"],
            "--ddio-ways",
        ),
        (
            "missing ddio ways value",
            vec!["--ddio-ways"],
            "--ddio-ways",
        ),
        (
            "more ddio ways than the cache has",
            vec!["--ddio-ways", "13"],
            "--ddio-ways",
        ),
        (
            "unknown llc model",
            vec!["--llc-model", "fully-assoc"],
            "--llc-model",
        ),
        (
            "missing llc model value",
            vec!["--llc-model"],
            "--llc-model",
        ),
        ("unknown policy", vec!["--policy", "bogus"], "bogus"),
        ("unknown flag", vec!["--no-such-flag"], "--no-such-flag"),
    ]
}

fn assert_rejects(bin: &str, label: &str, args: &[&str], token: &str) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("spawn CLI binary");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin} / {label}: expected exit 2, got {:?} (stderr: {stderr:?})",
        out.status.code()
    );
    assert_eq!(
        stderr.lines().count(),
        1,
        "{bin} / {label}: expected a one-line reason, got {stderr:?}"
    );
    assert!(
        stderr.contains(token),
        "{bin} / {label}: stderr must name {token}, got {stderr:?}"
    );
    assert!(
        out.stdout.is_empty(),
        "{bin} / {label}: a rejected invocation must not produce output"
    );
}

#[test]
fn malformed_specs_exit_2_with_one_line_reasons() {
    for bin in [
        env!("CARGO_BIN_EXE_ceio-trace"),
        env!("CARGO_BIN_EXE_ceio-inspect"),
    ] {
        for (label, args, token) in cases() {
            assert_rejects(bin, label, &args, token);
        }
    }
}

/// `ceio-experiments` has its own flag grammar (`--jobs`, experiment
/// names) but the same rejection contract.
#[test]
fn experiments_binary_rejects_malformed_invocations() {
    let bin = env!("CARGO_BIN_EXE_ceio-experiments");
    let cases: Vec<(&str, Vec<&str>, &str)> = vec![
        ("zero jobs", vec!["--jobs", "0"], "--jobs"),
        ("non-numeric jobs", vec!["--jobs", "many"], "--jobs"),
        ("missing jobs value", vec!["--jobs"], "--jobs"),
        ("unknown flag", vec!["--no-such-flag"], "--no-such-flag"),
        (
            "unknown experiment",
            vec!["no-such-experiment"],
            "no matching experiments",
        ),
    ];
    for (label, args, token) in cases {
        assert_rejects(bin, label, &args, token);
    }
}
