//! Two-process byte-identity: `ceio-experiments --jobs 4` must produce
//! stdout byte-identical to `--jobs 1` over the same selection.
//!
//! The runner buffers every experiment's report and prints in selection
//! order, so completion-order races on worker threads must never leak into
//! stdout. Wall-clock timing lines go to stderr precisely so they are
//! excluded from this comparison. The selection here is the two cheapest
//! deterministic experiments; the `engine` experiment is excluded because
//! its report *is* wall-clock measurement.

use std::process::Command;

#[test]
fn jobs_4_stdout_matches_jobs_1() {
    let bin = env!("CARGO_BIN_EXE_ceio-experiments");
    let run = |jobs: &str| {
        let out = Command::new(bin)
            .args(["--quick", "--jobs", jobs, "table3", "failover"])
            .output()
            .expect("spawn ceio-experiments");
        assert!(
            out.status.success(),
            "--jobs {jobs} run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    let parallel = run("4");
    assert!(
        !serial.is_empty(),
        "selection must produce a non-empty report"
    );
    assert_eq!(
        serial,
        parallel,
        "stdout must be byte-identical regardless of --jobs \
         (serial: {:?}, parallel: {:?})",
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel)
    );
}
