//! `cargo bench` entry point regenerating the paper's table2 output.
//! Runs the quick variant by default; set CEIO_BENCH_FULL=1 for the full
//! sweep recorded in EXPERIMENTS.md.

fn main() {
    let quick = std::env::var("CEIO_BENCH_FULL").is_err();
    println!("{}", ceio_bench::experiments::table2::run(quick));
}
