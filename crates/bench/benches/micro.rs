//! Criterion micro-benchmarks of the hot-path data structures: the credit
//! manager's admission/release, the software ring, the LLC occupancy
//! model, and the event queue. These guard the simulator's own
//! performance, not the paper's results.

use ceio_core::{CreditManager, SwRing};
use ceio_mem::{BufferId, IoLlc};
use ceio_net::FlowId;
use ceio_sim::{EventQueue, Histogram, Time};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_credit_manager(c: &mut Criterion) {
    c.bench_function("credit_consume_release", |b| {
        let mut cm = CreditManager::new(3072);
        cm.add_flows(&(0..8).map(FlowId).collect::<Vec<_>>());
        let mut i = 0u32;
        b.iter(|| {
            let f = FlowId(i % 8);
            if cm.try_consume(black_box(f)) {
                cm.release(f, 1);
            }
            i = i.wrapping_add(1);
        });
    });
    c.bench_function("credit_add_remove_flows", |b| {
        b.iter(|| {
            let mut cm = CreditManager::new(3072);
            for wave in 0..4u32 {
                let ids: Vec<FlowId> = (wave * 8..wave * 8 + 8).map(FlowId).collect();
                cm.add_flows(&ids);
            }
            black_box(cm.free_pool())
        });
    });
}

fn bench_swring(c: &mut Criterion) {
    c.bench_function("swring_fast_push_recv", |b| {
        let mut r = SwRing::new(1024, 32);
        b.iter(|| {
            for i in 0..32u32 {
                let _ = r.push_fast(black_box(i));
            }
            black_box(r.async_recv(32).delivered.len())
        });
    });
    c.bench_function("swring_mixed_paths", |b| {
        let mut r = SwRing::new(1024, 32);
        b.iter(|| {
            for i in 0..16u32 {
                let _ = r.push_fast(i);
                let _ = r.push_slow(i + 100);
            }
            let out = r.async_recv(64);
            r.fetch_complete(out.fetch_issued);
            black_box(r.async_recv(64).delivered.len())
        });
    });
}

fn bench_llc(c: &mut Criterion) {
    c.bench_function("llc_insert_lookup_consume", |b| {
        let mut llc = IoLlc::new(6 << 20);
        let mut i = 0u64;
        b.iter(|| {
            llc.insert(BufferId(i), 2048);
            black_box(llc.lookup(BufferId(i)));
            llc.consume(BufferId(i));
            i += 1;
        });
    });
    c.bench_function("llc_thrash_evictions", |b| {
        let mut llc = IoLlc::new(64 * 2048);
        let mut i = 0u64;
        b.iter(|| {
            black_box(llc.insert(BufferId(i), 2048).len());
            i += 1;
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            for k in 0..8 {
                q.schedule_at(Time(t + k * 7 + 1), k);
            }
            for _ in 0..8 {
                black_box(q.pop());
            }
            t = q.now().nanos();
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record_quantile", |b| {
        let mut h = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            h.record(black_box(x % 1_000_000 + 1));
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        });
        black_box(h.p999());
    });
    c.bench_function("histogram_quantiles_single_pass", |b| {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..100_000 {
            h.record(x % 1_000_000 + 1);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        b.iter(|| black_box(h.quantiles(black_box(&[0.5, 0.9, 0.99, 0.999]))));
    });
}

criterion_group!(
    benches,
    bench_credit_manager,
    bench_swring,
    bench_llc,
    bench_event_queue,
    bench_histogram
);
criterion_main!(benches);
