//! `cargo bench` entry point for the sensitivity sweeps (extension).

fn main() {
    let quick = std::env::var("CEIO_BENCH_FULL").is_err();
    println!("{}", ceio_bench::experiments::sensitivity::run(quick));
}
