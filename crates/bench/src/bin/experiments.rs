//! `ceio-experiments` — run any (or all) of the paper's tables/figures.
//!
//! ```text
//! ceio-experiments [--quick] [name ...]
//! names: fig04 fig09 fig10 fig11 fig12 table2 table3 table4 limited queues ablations sensitivity
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let all = ceio_bench::experiments::all();
    let selected: Vec<_> = if wanted.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|(name, _)| wanted.iter().any(|w| w.as_str() == *name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; known: fig04 fig09 fig10 fig11 fig12 table2 table3 table4 limited queues ablations sensitivity");
        std::process::exit(2);
    }
    for (name, f) in selected {
        let t0 = Instant::now();
        println!("=== {name} ({}) ===", if quick { "quick" } else { "full" });
        let report = f(quick);
        println!("{report}");
        println!("[{name} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
