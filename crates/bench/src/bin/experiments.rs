//! `ceio-experiments` — run any (or all) of the paper's tables/figures.
//!
//! ```text
//! ceio-experiments [--quick] [--jobs N] [name ...]
//! ```
//!
//! `--jobs N` runs the selected experiments on `N` worker threads. Every
//! simulation stays single-threaded and deterministic; parallelism is only
//! across whole experiments. Reports are buffered and printed on stdout in
//! selection order, so stdout is byte-identical for any `N` (pinned by the
//! `jobs_parallelism` integration test). Wall-clock timing lines go to
//! stderr, where nondeterminism belongs.

// CLI entry point: exiting with status 2 on a bad argument is the
// intended operator-facing behavior.
#![allow(clippy::exit)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Reject a malformed invocation: exit 2 with a one-line reason on stderr
/// naming the offending flag (the shared CLI contract of this workspace,
/// pinned by `cli_exit_codes.rs`).
fn reject(reason: String) -> ! {
    eprintln!("{reason}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jobs: usize = 1;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| reject("--jobs needs a value".into()));
                jobs = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => reject(format!("--jobs must be a positive integer, got {v:?}")),
                };
            }
            flag if flag.starts_with("--") => reject(format!("unknown flag {flag}")),
            name => wanted.push(name.to_string()),
        }
    }

    let all = ceio_bench::experiments::all();
    let known: Vec<&str> = all.iter().map(|(name, _)| *name).collect();
    let selected: Vec<_> = if wanted.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|(name, _)| wanted.iter().any(|w| w == name))
            .collect()
    };
    if selected.is_empty() {
        reject(format!(
            "no matching experiments; known: {}",
            known.join(" ")
        ));
    }

    // One shared code path for any job count: workers pull the next
    // experiment index from an atomic counter and park (report, seconds)
    // into its slot; the main thread then prints slots in selection order.
    let n = selected.len();
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<Option<(String, f64)>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (_, f) = selected[i];
                let t0 = Instant::now();
                let report = f(quick);
                let secs = t0.elapsed().as_secs_f64();
                // On Err a sibling panicked while holding the lock; the
                // scope re-raises that panic, so just drop our result.
                if let Ok(mut slots) = done.lock() {
                    slots[i] = Some((report, secs));
                }
            });
        }
    });
    let done = done.into_inner().unwrap_or_else(|e| e.into_inner());
    for ((name, _), slot) in selected.iter().zip(done) {
        let (report, secs) =
            slot.unwrap_or_else(|| panic!("invariant: {name} joined without a result"));
        println!("=== {name} ({}) ===", if quick { "quick" } else { "full" });
        println!("{report}");
        eprintln!("[{name} took {secs:.1}s]");
    }
}
