//! `ceio-trace` — run one scenario and dump its measurement time series as
//! CSV (for plotting the Fig. 4/10-style curves).
//!
//! ```text
//! ceio-trace [--policy baseline|hostcc|shring|ceio] \
//!            [--scenario kv|mixed|dynamic|burst]    \
//!            [--millis N] [--warmup-ms N] [--out FILE] \
//!            [--seed N] [--fault-plan SPEC] [--queues N]
//! ```
//!
//! Columns: `t_ms, involved_mpps, bypass_gbps, llc_miss_rate, fast_gbps,
//! slow_gbps, drops`.
//!
//! `--fault-plan` accepts a canned plan name (`smoke`, `credit-storm`,
//! `dma-flaky`, `nic-pressure`) or a comma-separated `key=value` spec
//! (`dma-write-fault=0.05,consumer-pause=10us`); `--seed` fixes the
//! injection RNG so two invocations with the same flags emit
//! byte-identical CSV. A malformed spec exits 2, as does requesting a
//! plan from a binary built without the `chaos` feature (silently
//! ignoring a requested fault schedule would misreport the experiment).

// CLI entry point: exiting with status 2 on a bad argument is the intended
// operator-facing behavior (the workspace denies `clippy::exit` for library
// code, where aborting the process is never acceptable).
#![allow(clippy::exit)]

use ceio_bench::runner::{run_one_faulted, series_csv, PolicyKind, CHAOS_COMPILED};
use ceio_bench::workloads::{self, AppKind, Transport};
use ceio_chaos::FaultPlan;
use ceio_sim::Duration;
use std::io::Write;

/// Parse a required numeric flag value; exit(2) with a diagnostic when the
/// value is missing or not a number.
fn parse_millis(flag: &str, value: Option<&String>) -> u64 {
    match value.map(|s| s.parse::<u64>()) {
        Some(Ok(v)) => v,
        Some(Err(_)) | None => {
            eprintln!(
                "{flag} requires a numeric value, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Parse `--queues`: a positive queue count; exit(2) on zero (no receive
/// queues leaves no data path) or a non-numeric value.
fn parse_queues(value: Option<&String>) -> usize {
    match value.map(|s| s.parse::<usize>()) {
        Some(Ok(v)) if v >= 1 => v,
        Some(Ok(_)) => {
            eprintln!("--queues must be >= 1 (zero receive queues leaves no data path)");
            std::process::exit(2);
        }
        Some(Err(_)) | None => {
            eprintln!(
                "--queues requires a positive integer, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Resolve `--seed`/`--fault-plan` into an armed plan, exiting 2 on a
/// malformed spec or on a plan this build cannot apply.
fn resolve_fault_plan(spec: Option<&String>, seed: u64) -> Option<FaultPlan> {
    let spec = spec?;
    if !CHAOS_COMPILED {
        eprintln!(
            "--fault-plan requires a binary built with `--features chaos` \
             (this build would silently ignore the plan)"
        );
        std::process::exit(2);
    }
    match FaultPlan::parse(spec, seed) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("--fault-plan {spec:?}: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> (
    PolicyKind,
    String,
    u64,
    u64,
    Option<String>,
    Option<FaultPlan>,
    usize,
) {
    let mut policy = PolicyKind::Ceio;
    let mut scenario = "kv".to_string();
    let mut millis = 10u64;
    let mut warmup_ms = 1u64;
    let mut out = None;
    let mut seed = 0u64;
    let mut plan_spec: Option<String> = None;
    let mut queues = 1usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                i += 1;
                policy = match args.get(i).map(|s| s.as_str()) {
                    Some("baseline") => PolicyKind::Baseline,
                    Some("hostcc") => PolicyKind::HostCc,
                    Some("shring") => PolicyKind::ShRing,
                    Some("ceio") | None => PolicyKind::Ceio,
                    Some(other) => {
                        eprintln!("unknown policy {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--scenario" => {
                i += 1;
                scenario = args.get(i).cloned().unwrap_or_else(|| "kv".into());
            }
            "--millis" => {
                i += 1;
                millis = parse_millis("--millis", args.get(i)).max(2);
            }
            "--warmup-ms" => {
                i += 1;
                warmup_ms = parse_millis("--warmup-ms", args.get(i)).max(1);
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                seed = parse_millis("--seed", args.get(i));
            }
            "--fault-plan" => {
                i += 1;
                plan_spec = match args.get(i) {
                    Some(s) => Some(s.clone()),
                    None => {
                        eprintln!("--fault-plan requires a spec (canned name or key=value list)");
                        std::process::exit(2);
                    }
                };
            }
            "--queues" => {
                i += 1;
                queues = parse_queues(args.get(i));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let plan = resolve_fault_plan(plan_spec.as_ref(), seed);
    (policy, scenario, millis, warmup_ms, out, plan, queues)
}

fn main() {
    let (policy, scenario, millis, warmup_ms, out, plan, queues) = parse_args();
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.sample_window = Duration::micros(100);
    host.num_queues = queues;
    let link = host.net.link_bandwidth;
    let phase = Duration::millis((millis / 4).max(1));
    let (scen, app) = match scenario.as_str() {
        "kv" => (workloads::involved_flows(8, 512, link), AppKind::Kv),
        "mixed" => (workloads::mixed_flows(4, 4, 512, link), AppKind::Mixed),
        "dynamic" => (
            workloads::dynamic_distribution(phase, 3, link),
            AppKind::Mixed,
        ),
        "burst" => (workloads::network_burst(phase, 3, link), AppKind::Mixed),
        other => {
            eprintln!("unknown scenario {other} (kv|mixed|dynamic|burst)");
            std::process::exit(2);
        }
    };
    let report = run_one_faulted(
        host,
        policy,
        scen,
        workloads::app_factory(app),
        Duration::millis(warmup_ms),
        Duration::millis(millis),
        plan.as_ref(),
    );

    let csv = series_csv(&report);
    let n = csv.lines().count().saturating_sub(1);
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            f.write_all(csv.as_bytes()).expect("write CSV");
            eprintln!(
                "{}: {} samples of {} ({} scenario) written",
                path, n, report.policy, scenario
            );
        }
        None => print!("{csv}"),
    }
}
