//! `ceio-trace` — run one scenario and dump its measurement time series as
//! CSV (for plotting the Fig. 4/10-style curves).
//!
//! ```text
//! ceio-trace [--policy baseline|hostcc|shring|ceio] \
//!            [--scenario kv|mixed|dynamic|burst]    \
//!            [--millis N] [--warmup-ms N] [--out FILE] \
//!            [--seed N] [--fault-plan SPEC] [--queues N] \
//!            [--llc-model pool|setassoc] [--ddio-ways N] \
//!            [--scope-interval DUR] [--slo SPEC] [--scope-out FILE]
//! ```
//!
//! Columns: `t_ms, involved_mpps, bypass_gbps, llc_miss_rate, fast_gbps,
//! slow_gbps, drops`.
//!
//! `--fault-plan` accepts a canned plan name (`smoke`, `credit-storm`,
//! `dma-flaky`, `nic-pressure`) or a comma-separated `key=value` spec
//! (`dma-write-fault=0.05,consumer-pause=10us`); `--seed` fixes the
//! injection RNG so two invocations with the same flags emit
//! byte-identical CSV. A malformed spec exits 2, as does requesting a
//! plan from a binary built without the `chaos` feature (silently
//! ignoring a requested fault schedule would misreport the experiment).
//!
//! `--llc-model` selects the LLC model backing the memory controller
//! (`pool` is the seed default; `setassoc` is the way-partitioned
//! set-associative model). `--ddio-ways` sets the DDIO-reachable way
//! count (§4.1: 6 of 12) — the credit pool re-derives from it under
//! `setassoc`. A way count the geometry cannot hold exits 2.
//!
//! `--scope-interval` (a sim duration such as `50us`) arms the flight
//! recorder at that sampling epoch; `--slo` arms SLO rules
//! (`alert=<name>,when=<series>,above|below=<thr>,for=<dur>`, `;`-separated,
//! repeatable) and implies recording at the default 50 µs epoch when no
//! interval is given. When the recorder is armed, its wide-format
//! time-series CSV is written to `--scope-out` (default
//! `ceio-scope.csv`) alongside the measurement CSV, and fired alerts are
//! listed on stderr. Malformed scope flags exit 2, like every other
//! malformed argument.

// CLI entry point: exiting with status 2 on a bad argument is the intended
// operator-facing behavior (the workspace denies `clippy::exit` for library
// code, where aborting the process is never acceptable).
#![allow(clippy::exit)]

use ceio_bench::runner::{run_one_scoped, series_csv, PolicyKind, ScopeOptions, CHAOS_COMPILED};
use ceio_bench::workloads::{self, AppKind, Transport};
use ceio_chaos::FaultPlan;
use ceio_host::DEFAULT_SCOPE_CAP;
use ceio_mem::LlcModelKind;
use ceio_sim::Duration;
use ceio_telemetry::{scope, SloRule};
use std::io::Write;

/// Parse a required numeric flag value; exit(2) with a diagnostic when the
/// value is missing or not a number.
fn parse_millis(flag: &str, value: Option<&String>) -> u64 {
    match value.map(|s| s.parse::<u64>()) {
        Some(Ok(v)) => v,
        Some(Err(_)) | None => {
            eprintln!(
                "{flag} requires a numeric value, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Parse `--queues`: a positive queue count; exit(2) on zero (no receive
/// queues leaves no data path) or a non-numeric value.
fn parse_queues(value: Option<&String>) -> usize {
    match value.map(|s| s.parse::<usize>()) {
        Some(Ok(v)) if v >= 1 => v,
        Some(Ok(_)) => {
            eprintln!("--queues must be >= 1 (zero receive queues leaves no data path)");
            std::process::exit(2);
        }
        Some(Err(_)) | None => {
            eprintln!(
                "--queues requires a positive integer, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Parse `--ddio-ways`: a positive DDIO way count; exit(2) on zero (a
/// zero-way partition leaves DMA nowhere to land) or a non-numeric value.
/// Geometry bounds (ways <= total ways) are checked by `validate` after
/// all flags are applied.
fn parse_ddio_ways(value: Option<&String>) -> u32 {
    match value.map(|s| s.parse::<u32>()) {
        Some(Ok(v)) if v >= 1 => v,
        Some(Ok(_)) => {
            eprintln!("--ddio-ways must be >= 1 (a zero-way DDIO partition leaves DMA nowhere)");
            std::process::exit(2);
        }
        Some(Err(_)) | None => {
            eprintln!(
                "--ddio-ways requires a positive integer, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Parse `--llc-model`: `pool` (seed default) or `setassoc`; exit(2) on
/// anything else.
fn parse_llc_model(value: Option<&String>) -> LlcModelKind {
    match value.map(String::as_str) {
        Some("pool") => LlcModelKind::Pool,
        Some("setassoc") => LlcModelKind::SetAssoc,
        Some(other) => {
            eprintln!("--llc-model must be pool or setassoc, got {other:?}");
            std::process::exit(2);
        }
        None => {
            eprintln!("--llc-model requires a model name (pool|setassoc)");
            std::process::exit(2);
        }
    }
}

/// Apply the LLC flags to the host config and re-validate the combined
/// geometry; exit(2) when the flags describe a cache the models cannot
/// represent (e.g. more DDIO ways than total ways).
fn apply_llc_flags(
    host: &mut ceio_host::HostConfig,
    ddio_ways: Option<u32>,
    llc_model: Option<LlcModelKind>,
) {
    if let Some(w) = ddio_ways {
        host.mem.ddio_ways = w;
    }
    if let Some(m) = llc_model {
        host.mem.llc_model = m;
    }
    if let Err(e) = host.validate() {
        eprintln!("--ddio-ways/--llc-model: {e}");
        std::process::exit(2);
    }
}

/// Parse a positive sim duration (`50us`, `1ms`, bare ns); exit(2) on a
/// malformed or zero value.
fn parse_scope_duration(flag: &str, value: Option<&String>) -> Duration {
    let Some(raw) = value else {
        eprintln!("{flag} requires a duration (e.g. 50us, 1ms)");
        std::process::exit(2);
    };
    match scope::parse_duration(raw) {
        Ok(d) if d > Duration::ZERO => d,
        Ok(_) => {
            eprintln!("{flag} must be positive");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{flag} {raw:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// Resolve `--seed`/`--fault-plan` into an armed plan, exiting 2 on a
/// malformed spec or on a plan this build cannot apply.
fn resolve_fault_plan(spec: Option<&String>, seed: u64) -> Option<FaultPlan> {
    let spec = spec?;
    if !CHAOS_COMPILED {
        eprintln!(
            "--fault-plan requires a binary built with `--features chaos` \
             (this build would silently ignore the plan)"
        );
        std::process::exit(2);
    }
    match FaultPlan::parse(spec, seed) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("--fault-plan {spec:?}: {e}");
            std::process::exit(2);
        }
    }
}

struct Args {
    policy: PolicyKind,
    scenario: String,
    millis: u64,
    warmup_ms: u64,
    out: Option<String>,
    plan: Option<FaultPlan>,
    plan_label: String,
    queues: usize,
    ddio_ways: Option<u32>,
    llc_model: Option<LlcModelKind>,
    scope_interval: Option<Duration>,
    slos: Vec<SloRule>,
    scope_out: String,
}

fn parse_args() -> Args {
    let mut policy = PolicyKind::Ceio;
    let mut scenario = "kv".to_string();
    let mut millis = 10u64;
    let mut warmup_ms = 1u64;
    let mut out = None;
    let mut seed = 0u64;
    let mut plan_spec: Option<String> = None;
    let mut queues = 1usize;
    let mut ddio_ways: Option<u32> = None;
    let mut llc_model: Option<LlcModelKind> = None;
    let mut scope_interval: Option<Duration> = None;
    let mut slos: Vec<SloRule> = Vec::new();
    let mut scope_out = "ceio-scope.csv".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                i += 1;
                policy = match args.get(i).map(|s| s.as_str()) {
                    Some("baseline") => PolicyKind::Baseline,
                    Some("hostcc") => PolicyKind::HostCc,
                    Some("shring") => PolicyKind::ShRing,
                    Some("ceio") | None => PolicyKind::Ceio,
                    Some(other) => {
                        eprintln!("unknown policy {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--scenario" => {
                i += 1;
                scenario = args.get(i).cloned().unwrap_or_else(|| "kv".into());
            }
            "--millis" => {
                i += 1;
                millis = parse_millis("--millis", args.get(i)).max(2);
            }
            "--warmup-ms" => {
                i += 1;
                warmup_ms = parse_millis("--warmup-ms", args.get(i)).max(1);
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                seed = parse_millis("--seed", args.get(i));
            }
            "--fault-plan" => {
                i += 1;
                plan_spec = match args.get(i) {
                    Some(s) => Some(s.clone()),
                    None => {
                        eprintln!("--fault-plan requires a spec (canned name or key=value list)");
                        std::process::exit(2);
                    }
                };
            }
            "--queues" => {
                i += 1;
                queues = parse_queues(args.get(i));
            }
            "--ddio-ways" => {
                i += 1;
                ddio_ways = Some(parse_ddio_ways(args.get(i)));
            }
            "--llc-model" => {
                i += 1;
                llc_model = Some(parse_llc_model(args.get(i)));
            }
            "--scope-interval" => {
                i += 1;
                scope_interval = Some(parse_scope_duration("--scope-interval", args.get(i)));
            }
            "--slo" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!("--slo requires a rule spec (alert=...,when=...,above=...,for=...)");
                    std::process::exit(2);
                };
                match SloRule::parse_spec(spec) {
                    Ok(mut rules) => slos.append(&mut rules),
                    Err(e) => {
                        eprintln!("--slo {spec:?}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--scope-out" => {
                i += 1;
                scope_out = match args.get(i) {
                    Some(s) => s.clone(),
                    None => {
                        eprintln!("--scope-out requires a file path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let plan = resolve_fault_plan(plan_spec.as_ref(), seed);
    let plan_label = plan_spec.unwrap_or_else(|| "none".to_string());
    Args {
        policy,
        scenario,
        millis,
        warmup_ms,
        out,
        plan,
        plan_label,
        queues,
        ddio_ways,
        llc_model,
        scope_interval,
        slos,
        scope_out,
    }
}

fn main() {
    let a = parse_args();
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.sample_window = Duration::micros(100);
    host.num_queues = a.queues;
    apply_llc_flags(&mut host, a.ddio_ways, a.llc_model);
    let link = host.net.link_bandwidth;
    let phase = Duration::millis((a.millis / 4).max(1));
    let (scen, app) = match a.scenario.as_str() {
        "kv" => (workloads::involved_flows(8, 512, link), AppKind::Kv),
        "mixed" => (workloads::mixed_flows(4, 4, 512, link), AppKind::Mixed),
        "dynamic" => (
            workloads::dynamic_distribution(phase, 3, link),
            AppKind::Mixed,
        ),
        "burst" => (workloads::network_burst(phase, 3, link), AppKind::Mixed),
        other => {
            eprintln!("unknown scenario {other} (kv|mixed|dynamic|burst)");
            std::process::exit(2);
        }
    };
    let scoped = a.scope_interval.is_some() || !a.slos.is_empty();
    // When SLO rules are armed, also arm the event trace (trace builds
    // only) so alert fires are minable from the trace as `slo-alert`
    // events — and so we can tell when the drop-oldest ring evicted any.
    let mine_alerts = cfg!(feature = "trace") && !a.slos.is_empty();
    let scope = scoped.then(|| ScopeOptions {
        interval: a.scope_interval.unwrap_or(Duration::micros(50)),
        cap: DEFAULT_SCOPE_CAP,
        slos: a.slos.clone(),
        trace_cap: mine_alerts.then_some(1 << 16),
    });
    let (report, mut sim) = run_one_scoped(
        host,
        a.policy,
        scen,
        workloads::app_factory(app),
        Duration::millis(a.warmup_ms),
        Duration::millis(a.millis),
        a.plan.as_ref(),
        scope,
    );
    sim.model.set_run_label(&a.plan_label);

    if scoped {
        if let Some(rec) = sim.model.scope() {
            let mut f = std::fs::File::create(&a.scope_out).expect("create scope CSV file");
            f.write_all(rec.to_csv().as_bytes())
                .expect("write scope CSV");
            eprintln!(
                "{}: {} scope epochs across {} series written",
                a.scope_out,
                rec.samples(),
                rec.all_series().len()
            );
            for (alert, fired, active) in rec.alert_states() {
                if fired > 0 {
                    eprintln!(
                        "alert {alert}: fired {fired}x{}",
                        if active { " (still active)" } else { "" }
                    );
                }
            }
        }
        // Mine alert fires back out of the event trace. The ring drops
        // oldest-first when full, so a long busy run can silently lose
        // early `slo-alert` events — be loud about that.
        #[cfg(feature = "trace")]
        if !a.slos.is_empty() {
            let (events, evicted) = sim.model.trace_events();
            let fires = events
                .iter()
                .filter(|e| e.kind == ceio_telemetry::TraceKind::SloAlert)
                .count();
            eprintln!("trace: {fires} slo-alert events recorded");
            if evicted > 0 {
                eprintln!(
                    "warning: trace ring evicted {evicted} events during the run; \
                     early slo-alert fires may be missing from the trace \
                     (the alert counts above remain exact)"
                );
            }
        }
    }

    let csv = series_csv(&report);
    let n = csv.lines().count().saturating_sub(1);
    match a.out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            f.write_all(csv.as_bytes()).expect("write CSV");
            eprintln!(
                "{}: {} samples of {} ({} scenario) written",
                path, n, report.policy, a.scenario
            );
        }
        None => print!("{csv}"),
    }
}
