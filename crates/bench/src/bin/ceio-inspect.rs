//! `ceio-inspect` — run one scenario with full observability armed and
//! export everything the telemetry layer records:
//!
//! * a Chrome trace-event JSON (open in Perfetto / `chrome://tracing`)
//!   with credit decisions, steering rewrites, slow-phase spans, DMA
//!   traffic, drops, and deliveries on per-flow tracks;
//! * a Prometheus text-exposition metrics snapshot aggregating every
//!   component's counters;
//! * a per-flow timeline summary on stdout: where each flow's packets
//!   spent their time, stage by stage (NIC queueing, DMA, retire, ring
//!   wait, slow-path residency).
//!
//! ```text
//! ceio-inspect [report|timeseries]                    \
//!              [--policy baseline|hostcc|shring|ceio] \
//!              [--scenario kv|mixed|dynamic|burst]    \
//!              [--millis N] [--warmup-ms N] [--ring N] \
//!              [--trace-out FILE] [--prom-out FILE]    \
//!              [--seed N] [--fault-plan SPEC] [--queues N] \
//!              [--llc-model pool|setassoc] [--ddio-ways N] \
//!              [--scope-interval DUR] [--slo SPEC] [--out FILE]
//! ```
//!
//! The optional leading mode selects the ceio-scope output: `report`
//! renders a self-contained HTML document (inline-SVG occupancy and
//! goodput charts, run metadata, SLO outcomes) and `timeseries` writes
//! the recorded gauges as wide CSV, both to `--out` (defaults:
//! `ceio-report.html` / `ceio-timeseries.csv`). Either mode — or passing
//! `--scope-interval`/`--slo` explicitly — arms the sim-time flight
//! recorder (default interval 50us). `--slo` takes `;`-separated
//! threshold+duration rules, e.g.
//! `alert=over,when=llc_occupancy_bytes,above=ddio_capacity_bytes,for=50us`;
//! a malformed spec or duration exits 2.
//!
//! `--llc-model pool|setassoc` selects the LLC model and `--ddio-ways N`
//! the DDIO-reachable way count (§4.1: 6 of 12); under `setassoc` the
//! credit pool re-derives from the way slice, and the export grows
//! per-way occupancy gauges. Impossible geometry (e.g. more DDIO ways
//! than total ways) exits 2.
//!
//! `--fault-plan` arms a deterministic fault-injection schedule (canned
//! name or `key=value` spec; see `ceio-chaos`) seeded by `--seed`, so a
//! faulty run's trace and metrics are exactly reproducible. A malformed
//! spec exits 2, as does requesting a plan from a binary built without
//! the `chaos` feature.
//!
//! Both exports are validated with the telemetry layer's own JSON checker
//! before they are written; an invalid document is a bug and exits 1.
//! Built without the `trace` cargo feature the binary still emits the
//! metrics snapshot, but the trace is empty (the recorder hooks compile
//! away) — CI builds it with `--features trace`.

// CLI entry point: exiting with status 2 on a bad argument (or 1 on an
// internal error) is the intended operator-facing behavior.
#![allow(clippy::exit)]

use ceio_bench::runner::{PolicyKind, CHAOS_COMPILED};
use ceio_bench::workloads::{self, AppKind, Transport};
use ceio_chaos::FaultPlan;
use ceio_host::Machine;
use ceio_mem::LlcModelKind;
use ceio_sim::{Duration, Time};
use ceio_telemetry::{chrome_trace_json, json, render_html, scope, SloRule};
#[cfg(feature = "trace")]
use ceio_telemetry::{Stage, TraceEvent};

/// ceio-scope output mode (the optional leading positional argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Classic inspection: trace + metrics + stdout breakdown only.
    Inspect,
    /// Also render the self-contained HTML report.
    Report,
    /// Also write the recorded scope gauges as wide CSV.
    Timeseries,
}

struct Args {
    mode: Mode,
    policy: PolicyKind,
    scenario: String,
    millis: u64,
    warmup_ms: u64,
    ring: usize,
    trace_out: String,
    prom_out: String,
    out: Option<String>,
    plan: Option<FaultPlan>,
    plan_label: String,
    queues: usize,
    ddio_ways: Option<u32>,
    llc_model: Option<LlcModelKind>,
    seed: u64,
    scope_interval: Option<Duration>,
    slos: Vec<SloRule>,
}

/// Parse a required numeric flag value; exit(2) when missing or malformed.
fn parse_num(flag: &str, value: Option<&String>) -> u64 {
    match value.map(|s| s.parse::<u64>()) {
        Some(Ok(v)) => v,
        Some(Err(_)) | None => {
            eprintln!(
                "{flag} requires a numeric value, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Parse `--queues`: a positive queue count; exit(2) on zero (no receive
/// queues leaves no data path) or a non-numeric value.
fn parse_queues(value: Option<&String>) -> usize {
    match value.map(|s| s.parse::<usize>()) {
        Some(Ok(v)) if v >= 1 => v,
        Some(Ok(_)) => {
            eprintln!("--queues must be >= 1 (zero receive queues leaves no data path)");
            std::process::exit(2);
        }
        Some(Err(_)) | None => {
            eprintln!(
                "--queues requires a positive integer, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Resolve `--seed`/`--fault-plan` into an armed plan, exiting 2 on a
/// malformed spec or on a plan this build cannot apply.
fn resolve_fault_plan(spec: Option<&String>, seed: u64) -> Option<FaultPlan> {
    let spec = spec?;
    if !CHAOS_COMPILED {
        eprintln!(
            "--fault-plan requires a binary built with `--features chaos` \
             (this build would silently ignore the plan)"
        );
        std::process::exit(2);
    }
    match FaultPlan::parse(spec, seed) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("--fault-plan {spec:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// Parse `--ddio-ways`: a positive DDIO way count; exit(2) on zero (a
/// zero-way partition leaves DMA nowhere to land) or a non-numeric value.
/// Geometry bounds (ways <= total ways) are checked by `validate` after
/// all flags are applied.
fn parse_ddio_ways(value: Option<&String>) -> u32 {
    match value.map(|s| s.parse::<u32>()) {
        Some(Ok(v)) if v >= 1 => v,
        Some(Ok(_)) => {
            eprintln!("--ddio-ways must be >= 1 (a zero-way DDIO partition leaves DMA nowhere)");
            std::process::exit(2);
        }
        Some(Err(_)) | None => {
            eprintln!(
                "--ddio-ways requires a positive integer, got {:?}",
                value.map(String::as_str).unwrap_or("<missing>")
            );
            std::process::exit(2);
        }
    }
}

/// Parse `--llc-model`: `pool` (seed default) or `setassoc`; exit(2) on
/// anything else.
fn parse_llc_model(value: Option<&String>) -> LlcModelKind {
    match value.map(String::as_str) {
        Some("pool") => LlcModelKind::Pool,
        Some("setassoc") => LlcModelKind::SetAssoc,
        Some(other) => {
            eprintln!("--llc-model must be pool or setassoc, got {other:?}");
            std::process::exit(2);
        }
        None => {
            eprintln!("--llc-model requires a model name (pool|setassoc)");
            std::process::exit(2);
        }
    }
}

/// Apply the LLC flags to the host config and re-validate the combined
/// geometry; exit(2) when the flags describe a cache the models cannot
/// represent (e.g. more DDIO ways than total ways).
fn apply_llc_flags(
    host: &mut ceio_host::HostConfig,
    ddio_ways: Option<u32>,
    llc_model: Option<LlcModelKind>,
) {
    if let Some(w) = ddio_ways {
        host.mem.ddio_ways = w;
    }
    if let Some(m) = llc_model {
        host.mem.llc_model = m;
    }
    if let Err(e) = host.validate() {
        eprintln!("--ddio-ways/--llc-model: {e}");
        std::process::exit(2);
    }
}

/// Parse `--scope-interval`/`--slo for=` durations (ns/us/ms or bare ns),
/// exiting 2 on a malformed literal.
fn parse_scope_duration(flag: &str, value: Option<&String>) -> Duration {
    match value.map(|s| scope::parse_duration(s)) {
        Some(Ok(d)) if d > Duration::ZERO => d,
        Some(Ok(_)) => {
            eprintln!("{flag} must be a positive duration");
            std::process::exit(2);
        }
        Some(Err(e)) => {
            eprintln!("{flag}: {e}");
            std::process::exit(2);
        }
        None => {
            eprintln!("{flag} requires a duration (e.g. 50us, 1ms, 500ns)");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let mut a = Args {
        mode: Mode::Inspect,
        policy: PolicyKind::Ceio,
        scenario: "kv".to_string(),
        millis: 3,
        warmup_ms: 1,
        ring: 1 << 16,
        trace_out: "ceio-inspect-trace.json".to_string(),
        prom_out: "ceio-inspect-metrics.prom".to_string(),
        out: None,
        plan: None,
        plan_label: "none".to_string(),
        queues: 1,
        ddio_ways: None,
        llc_model: None,
        seed: 0,
        scope_interval: None,
        slos: Vec::new(),
    };
    let mut seed = 0u64;
    let mut plan_spec: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    if let Some(first) = args.first() {
        match first.as_str() {
            "report" => {
                a.mode = Mode::Report;
                i = 1;
            }
            "timeseries" => {
                a.mode = Mode::Timeseries;
                i = 1;
            }
            _ => {}
        }
    }
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                i += 1;
                a.policy = match args.get(i).map(|s| s.as_str()) {
                    Some("baseline") => PolicyKind::Baseline,
                    Some("hostcc") => PolicyKind::HostCc,
                    Some("shring") => PolicyKind::ShRing,
                    Some("ceio") | None => PolicyKind::Ceio,
                    Some(other) => {
                        eprintln!("unknown policy {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--scenario" => {
                i += 1;
                a.scenario = args.get(i).cloned().unwrap_or_else(|| "kv".into());
            }
            "--millis" => {
                i += 1;
                a.millis = parse_num("--millis", args.get(i)).max(1);
            }
            "--warmup-ms" => {
                i += 1;
                a.warmup_ms = parse_num("--warmup-ms", args.get(i)).max(1);
            }
            "--ring" => {
                i += 1;
                a.ring = parse_num("--ring", args.get(i)).max(1) as usize;
            }
            "--trace-out" => {
                i += 1;
                a.trace_out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--trace-out requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--prom-out" => {
                i += 1;
                a.prom_out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--prom-out requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = parse_num("--seed", args.get(i));
            }
            "--fault-plan" => {
                i += 1;
                plan_spec = match args.get(i) {
                    Some(s) => Some(s.clone()),
                    None => {
                        eprintln!("--fault-plan requires a spec (canned name or key=value list)");
                        std::process::exit(2);
                    }
                };
            }
            "--queues" => {
                i += 1;
                a.queues = parse_queues(args.get(i));
            }
            "--ddio-ways" => {
                i += 1;
                a.ddio_ways = Some(parse_ddio_ways(args.get(i)));
            }
            "--llc-model" => {
                i += 1;
                a.llc_model = Some(parse_llc_model(args.get(i)));
            }
            "--out" => {
                i += 1;
                a.out = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                };
            }
            "--scope-interval" => {
                i += 1;
                a.scope_interval = Some(parse_scope_duration("--scope-interval", args.get(i)));
            }
            "--slo" => {
                i += 1;
                let spec = match args.get(i) {
                    Some(s) => s,
                    None => {
                        eprintln!("--slo requires a rule spec (see --help text in the module doc)");
                        std::process::exit(2);
                    }
                };
                match SloRule::parse_spec(spec) {
                    Ok(mut rules) => a.slos.append(&mut rules),
                    Err(e) => {
                        eprintln!("--slo {spec:?}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    a.plan = resolve_fault_plan(plan_spec.as_ref(), seed);
    if let Some(spec) = plan_spec {
        a.plan_label = spec;
    }
    a.seed = seed;
    a
}

/// Write `content` to `path`, exiting 1 with a diagnostic on failure.
fn write_file(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Validate a JSON document produced by our own emitters; a failure here
/// is an exporter bug and must be loud.
fn must_validate(what: &str, doc: &str) {
    if let Err(e) = json::validate(doc) {
        eprintln!("internal error: {what} emitted invalid JSON: {e}");
        std::process::exit(1);
    }
}

#[cfg(feature = "trace")]
fn print_event_counts(events: &[TraceEvent], dropped: u64) {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in events {
        *counts.entry(e.kind.label()).or_insert(0) += 1;
    }
    println!(
        "trace events ({} total, {} evicted by ring):",
        events.len(),
        dropped
    );
    for (label, n) in counts {
        println!("  {label:<22} {n}");
    }
}

fn main() {
    let a = parse_args();
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.sample_window = Duration::micros(100);
    host.num_queues = a.queues;
    apply_llc_flags(&mut host, a.ddio_ways, a.llc_model);
    let link = host.net.link_bandwidth;
    let phase = Duration::millis((a.millis / 4).max(1));
    let (scen, app) = match a.scenario.as_str() {
        "kv" => (workloads::involved_flows(8, 512, link), AppKind::Kv),
        "mixed" => (workloads::mixed_flows(4, 4, 512, link), AppKind::Mixed),
        "dynamic" => (
            workloads::dynamic_distribution(phase, 3, link),
            AppKind::Mixed,
        ),
        "burst" => (workloads::network_burst(phase, 3, link), AppKind::Mixed),
        other => {
            eprintln!("unknown scenario {other} (kv|mixed|dynamic|burst)");
            std::process::exit(2);
        }
    };

    let policy = a.policy.build(&host);
    let mut sim = Machine::build(host, policy, scen, workloads::app_factory(app));
    #[cfg(feature = "trace")]
    sim.model.arm_trace(a.ring);
    #[cfg(not(feature = "trace"))]
    eprintln!("note: built without the `trace` feature; the event trace will be empty");
    #[cfg(feature = "chaos")]
    if let Some(plan) = a.plan.as_ref() {
        // The free function also arms the queue-health watchdog when the
        // plan carries a queue-level fault site.
        ceio_host::arm_chaos(&mut sim, plan);
    }
    #[cfg(not(feature = "chaos"))]
    debug_assert!(a.plan.is_none(), "resolve_fault_plan exits without chaos");
    sim.model.set_run_label(&a.plan_label);

    // Arm the flight recorder when a scope output mode or scope flag asks
    // for it (default epoch: 50 us of sim time).
    let scoped = a.mode != Mode::Inspect || a.scope_interval.is_some() || !a.slos.is_empty();
    if scoped {
        let interval = a.scope_interval.unwrap_or(Duration::micros(50));
        ceio_host::arm_scope(
            &mut sim,
            interval,
            ceio_host::DEFAULT_SCOPE_CAP,
            a.slos.clone(),
        );
    }

    let warmup = Duration::millis(a.warmup_ms);
    let measure = Duration::millis(a.millis);
    let report = ceio_host::run_to_report(&mut sim, warmup, measure);
    let end = Time::ZERO + warmup + measure;

    // Metrics snapshot: prom text to file, JSON validated as a self-check.
    let snap = sim.model.snapshot(end);
    must_validate("snapshot", &snap.to_json());
    write_file(&a.prom_out, &snap.to_prom_text());

    // Scope outputs (report / timeseries modes).
    match a.mode {
        Mode::Inspect => {}
        Mode::Timeseries => {
            let rec = sim
                .model
                .scope()
                .expect("invariant: timeseries mode armed the scope above");
            let path = a
                .out
                .clone()
                .unwrap_or_else(|| "ceio-timeseries.csv".into());
            write_file(&path, &rec.to_csv());
            eprintln!("wrote {path} ({} series)", rec.all_series().len());
        }
        Mode::Report => {
            let rec = sim
                .model
                .scope()
                .expect("invariant: report mode armed the scope above");
            let meta = vec![
                ("policy".to_string(), report.policy.clone()),
                ("scenario".to_string(), a.scenario.clone()),
                ("chaos seed".to_string(), a.seed.to_string()),
                ("queues".to_string(), a.queues.to_string()),
                ("fault plan".to_string(), a.plan_label.clone()),
                ("measured".to_string(), format!("{} ms", a.millis)),
                ("scope epochs".to_string(), rec.samples().to_string()),
            ];
            let charts = vec![
                rec.chart(
                    "LLC I/O occupancy vs. DDIO capacity",
                    "bytes",
                    &[
                        "llc_occupancy_bytes",
                        "ddio_capacity_bytes",
                        "iio_occupancy_bytes",
                    ],
                ),
                rec.chart(
                    "Goodput over time",
                    "Gbps",
                    &["goodput_gbps", "fast_gbps", "slow_gbps"],
                ),
                rec.chart(
                    "Drops and retries",
                    "per second",
                    &["drop_pps", "dma_retry_pps"],
                ),
            ];
            let html = render_html("ceio-scope report", &meta, &rec.alert_states(), &charts);
            let path = a.out.clone().unwrap_or_else(|| "ceio-report.html".into());
            write_file(&path, &html);
            eprintln!("wrote {path} ({} charts)", charts.len());
        }
    }

    // Chrome trace export.
    #[cfg(feature = "trace")]
    let (events, dropped) = sim.model.trace_events();
    #[cfg(not(feature = "trace"))]
    let (events, dropped) = (Vec::new(), 0u64);
    let trace = chrome_trace_json(&events, dropped);
    must_validate("chrome trace", &trace);
    write_file(&a.trace_out, &trace);
    // Anyone mining slo-alert events out of the trace needs to know when
    // the drop-oldest ring overflowed: early fires are silently gone.
    if dropped > 0 && !a.slos.is_empty() {
        eprintln!(
            "warning: trace ring evicted {dropped} events during the run; early \
             slo-alert fires may be missing from {} (raise --ring; the \
             ceio_alert_* metrics remain exact)",
            a.trace_out
        );
    }

    // Stdout: run headline + per-flow timeline breakdown.
    println!(
        "{} / {}: {:.2} Gbps total ({:.2} fast, {:.2} slow), {} dropped, {} slow-path pkts",
        report.policy,
        a.scenario,
        report.total_gbps(),
        report.fast_path_gbps,
        report.slow_path_gbps,
        report.dropped,
        report.slow_path_pkts,
    );
    #[cfg(feature = "trace")]
    {
        print_event_counts(&events, dropped);
        if let Some(bd) = sim.model.breakdown() {
            println!("path breakdown (ns per stage):");
            for stage in Stage::ALL {
                let h = bd.total.stage(stage);
                if h.count() > 0 {
                    println!("  all flows  {:<14} {h}", stage.label());
                }
            }
            for (flow, pb) in &bd.per_flow {
                for stage in Stage::ALL {
                    let h = pb.stage(stage);
                    if h.count() > 0 {
                        println!("  flow {flow:<5} {:<14} {h}", stage.label());
                    }
                }
            }
        }
    }
    eprintln!(
        "wrote {} ({} events) and {}",
        a.trace_out,
        events.len(),
        a.prom_out
    );
}
