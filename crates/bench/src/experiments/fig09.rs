//! Figure 9: throughput and LLC miss rate under static network conditions,
//! varying packet size (128–1024 B), for the three datapaths —
//! eRPC (DPDK), eRPC (RDMA), LineFS (RDMA) — across
//! Baseline / HostCC / ShRing / CEIO.
//!
//! Paper shape to reproduce: CEIO reduces the miss rate from ~88% to ~1%
//! and wins throughput at small packets (up to ~1.5× over HostCC); ShRing's
//! miss rate matches CEIO's but its throughput trails (CCA triggers);
//! gains shrink as packet size grows (§6.3).

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::RunReport;
use ceio_net::FlowClass;

const SIZES: [u64; 4] = [128, 256, 512, 1024];

struct Datapath {
    label: &'static str,
    transport: Transport,
    app: AppKind,
    class: FlowClass,
}

const DATAPATHS: [Datapath; 3] = [
    Datapath {
        label: "eRPC (DPDK)",
        transport: Transport::Dpdk,
        app: AppKind::Kv,
        class: FlowClass::CpuInvolved,
    },
    Datapath {
        label: "eRPC (RDMA)",
        transport: Transport::Rdma,
        app: AppKind::Kv,
        class: FlowClass::CpuInvolved,
    },
    Datapath {
        label: "LineFS (RDMA)",
        transport: Transport::Rdma,
        app: AppKind::LineFs,
        class: FlowClass::CpuBypass,
    },
];

/// Run Figure 9 and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);
    let sizes: &[u64] = if quick { &SIZES[2..3] } else { &SIZES };

    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for dp in &DATAPATHS {
        for &size in sizes {
            for kind in PolicyKind::COMPETITORS {
                let host = workloads::contended_host(dp.transport);
                let link = host.net.link_bandwidth;
                let scenario = match dp.class {
                    FlowClass::CpuInvolved => workloads::involved_flows(8, size, link),
                    // LineFS streams a 16 GB file in 1 MB chunks (§6.1),
                    // segmented at the swept packet size.
                    FlowClass::CpuBypass => workloads::bypass_flows(8, size, 1 << 20, link),
                };
                let app = dp.app;
                jobs.push(Box::new(move || {
                    run_one(
                        host,
                        kind,
                        scenario,
                        workloads::app_factory(app),
                        spans.warmup,
                        spans.measure,
                    )
                }));
            }
        }
    }
    let reports = run_jobs(jobs);

    let mut t = Table::new(
        "Figure 9 — static throughput and LLC miss rate vs packet size",
        &[
            "datapath",
            "pkt(B)",
            "policy",
            "Mpps",
            "Gbps",
            "miss%",
            "drops",
            "vs Baseline",
        ],
    );
    let mut idx = 0;
    for dp in &DATAPATHS {
        for &size in sizes {
            let group = &reports[idx..idx + 4];
            idx += 4;
            let base_mpps = group[0].total_mpps();
            for r in group {
                t.row(vec![
                    dp.label.to_string(),
                    size.to_string(),
                    r.policy.clone(),
                    table::f(r.total_mpps(), 2),
                    table::f(r.total_gbps(), 1),
                    table::f(r.llc_miss_rate * 100.0, 1),
                    r.dropped.to_string(),
                    table::speedup(r.total_mpps(), base_mpps),
                ]);
            }
            t.separator();
        }
    }
    t.render()
}
