//! Figure 12: aggregate throughput of CEIO with a 512 B echo workload in
//! RDMA UD mode, varying the total number of flows, with 16 concurrently
//! active senders hopping to random destination queue pairs each time slot.
//!
//! Paper shape to reproduce: stable throughput when the slot is ≥1 ms;
//! for 500 µs and 100 µs slots, a mild decrease from 128 to 1 K flows and a
//! drop toward slow-path performance beyond 1 K flows, because the
//! round-robin re-activation cannot keep up with the churn.
//!
//! Measured: the *mechanism* reproduces (the slow-path share climbs to
//! ~50% as slots shrink to 100 µs, at every population size), while
//! aggregate throughput holds — this model's slow path at 512 B sustains
//! most of the fast path's rate and its arrival-keyed credit recycling
//! re-credits the live destinations within one controller poll, where the
//! paper's BF-3 prototype pays more per slow-path packet at high flow
//! counts (§6.4). Details in EXPERIMENTS.md.

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind};
use ceio_host::{HostConfig, RunReport};
use ceio_net::{FlowClass, FlowSpec, Scenario};
use ceio_sim::{Bandwidth, Duration, Rng, Time};

const ACTIVE: usize = 16;

/// Build the destination-hopping scenario: `n` UD flows, 16 active per
/// slot, active set re-drawn uniformly each slot.
fn hopping_scenario(
    n: u32,
    slot: Duration,
    horizon: Duration,
    link: Bandwidth,
    seed: u64,
) -> Scenario {
    let per = link.scale(1, ACTIVE as u64);
    let mut s = Scenario::new();
    let mut rng = Rng::seed_from_u64(seed);
    // All flows exist (QPs registered) from t=0; non-targets start paused.
    let mut active: Vec<u32> = (0..n.min(ACTIVE as u32)).collect();
    for i in 0..n {
        let demand = if active.contains(&i) {
            per
        } else {
            Bandwidth::bytes_per_sec(0)
        };
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 512, 1, demand),
        );
    }
    let mut t = Time::ZERO + slot;
    while t < Time::ZERO + horizon {
        // Retarget: pause the old set, draw and start a new one.
        let mut next: Vec<u32> = Vec::with_capacity(ACTIVE);
        while next.len() < ACTIVE.min(n as usize) {
            let cand = rng.gen_range(n as u64) as u32;
            if !next.contains(&cand) {
                next.push(cand);
            }
        }
        for &old in &active {
            if !next.contains(&old) {
                s.set_demand_at(t, ceio_net::FlowId(old), Bandwidth::bytes_per_sec(0));
            }
        }
        for &new in &next {
            if !active.contains(&new) {
                s.set_demand_at(t, ceio_net::FlowId(new), per);
            }
        }
        active = next;
        t += Duration::nanos(slot.as_nanos());
    }
    s.build()
}

/// Run Figure 12 and return the formatted report.
pub fn run(quick: bool) -> String {
    let flow_counts: &[u32] = if quick {
        &[16, 512, 2048]
    } else {
        &[16, 128, 512, 1024, 2048, 4096]
    };
    let slots = [
        ("1ms", Duration::millis(1)),
        ("500us", Duration::micros(500)),
        ("100us", Duration::micros(100)),
    ];
    let warmup = Duration::millis(1);
    let measure = if quick {
        Duration::millis(6)
    } else {
        Duration::millis(12)
    };
    let horizon = warmup + measure;

    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for &(_, slot) in &slots {
        for &n in flow_counts {
            let host = HostConfig {
                // 16 polling cores serve all UD queue pairs (eRPC-style
                // shared polling), matching the 16 concurrent senders.
                num_cores: Some(ACTIVE),
                ..HostConfig::default()
            };
            let link = host.net.link_bandwidth;
            let scen = hopping_scenario(n, slot, horizon, link, 0xF1612 + n as u64);
            jobs.push(Box::new(move || {
                run_one(
                    host,
                    PolicyKind::Ceio,
                    scen,
                    workloads::app_factory(AppKind::Echo),
                    warmup,
                    measure,
                )
            }));
        }
    }
    let reports = run_jobs(jobs);

    let mut headers: Vec<String> = vec!["flows".into()];
    for (label, _) in &slots {
        headers.push(format!("slot {label} (Mpps)"));
        headers.push(format!("slot {label} slow%"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 12 — CEIO aggregate throughput vs flow count (512B echo, RDMA UD)",
        &hdr_refs,
    );
    for (j, &n) in flow_counts.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (i, _) in slots.iter().enumerate() {
            let r = &reports[i * flow_counts.len() + j];
            let delivered = (r.involved_mpps * r.measured.as_secs_f64() * 1e6).max(1.0);
            let slow_pct = (r.slow_path_pkts as f64 / delivered * 100.0).min(100.0);
            row.push(table::f(r.involved_mpps, 2));
            row.push(table::f(slow_pct, 0));
        }
        t.row(row);
    }
    t.render()
}
