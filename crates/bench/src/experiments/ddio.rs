//! DDIO-ways sweep: how much of the LLC the NIC may write to, and who
//! degrades when the partition shrinks.
//!
//! The paper's testbed pins DDIO at its default 2-of-11 to 6-of-12 way
//! window (§4.1); here we sweep the set-associative model's `ddio_ways`
//! across {2, 4, 6, 8} on a 16 MiB / 12-way LLC under 8 KV flows at 70%
//! of line rate — enough to overload the unmanaged baseline's
//! miss-degraded consume rate, but within what a managed datapath
//! sustains — with the application antagonist streaming through the
//! non-DDIO ways. The baseline overruns whatever partition it is given,
//! so its miss rate climbs monotonically as ways shrink (most visible
//! from a cold start, before FIFO consume order locks onto the LRU
//! eviction order); CEIO derives its credit budget from the partition
//! size (Eq. 1 against the DDIO partition, not the whole LLC), so its
//! working set tracks the shrink and fast-path goodput stays flat.
//!
//! Results land in `BENCH_ddio.json` in the working directory so the
//! ddio-smoke CI lane can archive the trajectory run over run.

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::{HostConfig, RunReport};
use ceio_mem::LlcModelKind;
use ceio_sim::Duration;
use std::fmt::Write as _;

/// DDIO way counts swept (of the 12-way LLC the defaults model).
pub const WAY_SWEEP: [u32; 4] = [2, 4, 6, 8];

/// The Fig. 4 contention host on the set-associative LLC with `w` of the
/// 12 ways granted to DDIO and the application antagonist streaming
/// through the remaining ways.
pub fn way_host(w: u32) -> HostConfig {
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.mem.llc_model = LlcModelKind::SetAssoc;
    host.mem.ddio_ways = w;
    // A 16 MiB / 12-way LLC (server-class) rather than the default
    // 12 MiB: the per-way partition grows to 1.33 MiB, giving Eq. 1's
    // credit budget headroom above the in-flight working set so the
    // narrow-partition sweep points measure way-conflict behavior, not
    // credit starvation.
    host.mem.llc_total_bytes = 16 << 20;
    host
}

/// Run one policy across the way sweep; returns `(ways, report)` pairs
/// in sweep order.
///
/// `cold` starts the measurement at t = 0 with no warmup: under
/// sustained overload the unmanaged baseline's FIFO consume order chases
/// the LRU eviction order, so its *steady-state* miss rate saturates
/// near 1.0 for every partition width — the width-dependent signal is
/// how many buffers the partition absorbs before thrashing begins, which
/// only a cold start exposes. Warmed-up runs show the steady state.
pub fn sweep_reports(quick: bool, kind: PolicyKind, cold: bool) -> Vec<(u32, RunReport)> {
    let spans = workloads::spans(quick);
    let warmup = if cold {
        Duration::nanos(0)
    } else {
        spans.warmup
    };
    let jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = WAY_SWEEP
        .iter()
        .map(|&w| {
            let host = way_host(w);
            let link = host.net.link_bandwidth;
            Box::new(move || {
                run_one(
                    host,
                    kind,
                    workloads::involved_flows(8, 512, link.scale(7, 10)),
                    workloads::app_factory(AppKind::Kv),
                    warmup,
                    spans.measure,
                )
            }) as Box<dyn FnOnce() -> RunReport + Send>
        })
        .collect();
    WAY_SWEEP.iter().copied().zip(run_jobs(jobs)).collect()
}

/// Run the DDIO-ways sweep, write `BENCH_ddio.json`, and return the
/// formatted report.
pub fn run(quick: bool) -> String {
    let mut t = Table::new(
        "DDIO ways — 8 KV flows at 70% line rate on the set-associative LLC (miss rate and goodput by partition width)",
        &[
            "policy",
            "ways",
            "miss rate",
            "involved Mpps",
            "fast Gbps",
            "P99",
            "drops",
        ],
    );
    let mut rows = String::new();
    for kind in [PolicyKind::Baseline, PolicyKind::HostCc, PolicyKind::Ceio] {
        for (w, r) in sweep_reports(quick, kind, false) {
            let p99 = r.involved_latency.quantiles(&[0.99])[0];
            t.row(vec![
                r.policy.clone(),
                w.to_string(),
                table::f(r.llc_miss_rate, 3),
                table::f(r.involved_mpps, 2),
                table::f(r.fast_path_gbps, 2),
                table::us(p99),
                r.dropped.to_string(),
            ]);
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"policy\": \"{}\", \"ddio_ways\": {}, \"miss_rate\": {:.4}, \
                 \"fast_gbps\": {:.3}, \"involved_mpps\": {:.3}, \"drops\": {}}}",
                r.policy, w, r.llc_miss_rate, r.fast_path_gbps, r.involved_mpps, r.dropped,
            );
        }
        t.separator();
    }
    let mut report = t.render();

    // Cold-start absorption: measure the unmanaged baseline from t = 0 so
    // the hits it scores before the partition first overflows are visible
    // — the direct analogue of the paper's premature-eviction argument.
    let mut cold = Table::new(
        "Cold-start absorption — unmanaged baseline measured from t = 0 (wider partitions absorb more before thrashing)",
        &["policy", "ways", "miss rate", "involved Mpps"],
    );
    let mut cold_rows = String::new();
    for (w, r) in sweep_reports(quick, PolicyKind::Baseline, true) {
        cold.row(vec![
            r.policy.clone(),
            w.to_string(),
            table::f(r.llc_miss_rate, 3),
            table::f(r.involved_mpps, 2),
        ]);
        if !cold_rows.is_empty() {
            cold_rows.push_str(",\n");
        }
        let _ = write!(
            cold_rows,
            "    {{\"policy\": \"{}\", \"ddio_ways\": {}, \"miss_rate\": {:.4}}}",
            r.policy, w, r.llc_miss_rate,
        );
    }
    report.push('\n');
    report.push_str(&cold.render());

    let json = format!(
        "{{\n  \"experiment\": \"ddio\",\n  \"mode\": \"{}\",\n  \"way_sweep\": [2, 4, 6, 8],\n  \
         \"rows\": [\n{rows}\n  ],\n  \"cold_start_rows\": [\n{cold_rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
    );
    if let Err(e) = std::fs::write("BENCH_ddio.json", &json) {
        let _ = writeln!(report, "  warning: could not write BENCH_ddio.json: {e}");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance check: the unmanaged baseline's miss rate
    /// must degrade strictly monotonically as the DDIO partition shrinks
    /// from 8 ways to 2 — the overrun pathology scales with how little
    /// of the LLC the NIC is allowed to overrun. Measured from a cold
    /// start, where the partition's absorption capacity is visible.
    #[test]
    fn baseline_miss_rate_degrades_as_ways_shrink() {
        let by_ways: Vec<(u32, f64)> = sweep_reports(true, PolicyKind::Baseline, true)
            .iter()
            .map(|(w, r)| (*w, r.llc_miss_rate))
            .collect();
        assert_eq!(by_ways.len(), WAY_SWEEP.len());
        for pair in by_ways.windows(2) {
            assert!(
                pair[0].1 > pair[1].1,
                "baseline miss rate must fall as ways grow: {:?}",
                by_ways
            );
        }
    }

    /// CEIO sizes its credit budget to the partition, so its fast-path
    /// goodput stays within 5% of its best across the whole sweep.
    #[test]
    fn ceio_goodput_is_flat_across_the_sweep() {
        let gbps: Vec<f64> = sweep_reports(true, PolicyKind::Ceio, false)
            .iter()
            .map(|(_, r)| r.fast_path_gbps)
            .collect();
        let best = gbps.iter().copied().fold(f64::MIN, f64::max);
        assert!(best > 0.0, "CEIO must move traffic: {:?}", gbps);
        for g in &gbps {
            assert!(
                *g >= best * 0.95,
                "CEIO fast-path goodput must stay within 5% of its best \
                 across the way sweep: {:?}",
                gbps
            );
        }
    }
}
