//! Queue-failure robustness: goodput degrading and recovering across an
//! RSS queue flap.
//!
//! A 4-queue CEIO host (the `queues` experiment's descriptor-issue-bound
//! shard config) runs the Fig. 4 contention workload twice: once
//! fault-free and once through the canned `queue-flap` chaos plan
//! (seeded queue stalls, queue deaths, and link flaps). The watchdog
//! must detect each wedged queue, fail it over — re-steering its flows
//! to the healthy mask and quarantining its credit partition — and
//! recover it once the wedge lifts, with Eq. 1 credit conservation
//! holding throughout. The report shows the degradation (lower fast-path
//! goodput, head-dropped staging backlog) alongside the recovery
//! counters proving the flap was survived rather than merely suffered.

use crate::experiments::queues::sharded_host;
use crate::runner::{run_one_keep_faulted, AnyPolicy, PolicyKind, CHAOS_COMPILED};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind};
use ceio_chaos::FaultPlan;
use ceio_host::{Machine, QueueState, RunReport};

/// Queue count for the flap demo (matches the CI failover smoke).
pub const QUEUES: usize = 4;

/// Chaos seed pinning the flap schedule (and thus the whole run).
pub const SEED: u64 = 42;

/// One measured run of the 4-queue CEIO host, optionally through the
/// canned `queue-flap` plan; returns the report plus the finished
/// simulation so callers can read failover counters and queue states.
pub fn flap_run(
    quick: bool,
    plan: Option<&FaultPlan>,
) -> (RunReport, ceio_sim::Simulation<Machine<AnyPolicy>>) {
    let spans = workloads::spans(quick);
    let host = sharded_host(QUEUES);
    let link = host.net.link_bandwidth;
    run_one_keep_faulted(
        host,
        PolicyKind::Ceio,
        workloads::involved_flows(16, 512, link),
        workloads::app_factory(AppKind::Kv),
        spans.warmup,
        spans.measure,
        plan,
    )
}

/// Run the fault-free / queue-flap comparison and render the report.
pub fn run(quick: bool) -> String {
    let mut t = Table::new(
        "Queue failover — 4-queue CEIO across the canned `queue-flap` plan",
        &[
            "run",
            "fast Gbps",
            "slow Gbps",
            "drops",
            "failures",
            "recoveries",
            "resteered",
            "false alarms",
            "healthy at end",
        ],
    );
    let plans: Vec<(&str, Option<FaultPlan>)> = if CHAOS_COMPILED {
        let plan = FaultPlan::parse("queue-flap", SEED)
            .expect("invariant: the canned queue-flap plan parses");
        vec![("fault-free", None), ("queue-flap", Some(plan))]
    } else {
        vec![("fault-free", None)]
    };
    for (label, plan) in &plans {
        let (r, sim) = flap_run(quick, plan.as_ref());
        let st = &sim.model.st;
        let healthy = st
            .rxq
            .iter()
            .filter(|q| q.state() == QueueState::Healthy)
            .count();
        t.row(vec![
            (*label).to_string(),
            table::f(r.fast_path_gbps, 2),
            table::f(r.slow_path_gbps, 2),
            r.dropped.to_string(),
            st.failover.failures.to_string(),
            st.failover.recoveries.to_string(),
            st.failover.flows_resteered.to_string(),
            st.failover.false_alarms.to_string(),
            format!("{healthy}/{QUEUES}"),
        ]);
    }
    let mut out = t.render();
    if !CHAOS_COMPILED {
        out.push_str(
            "\n(queue-flap row skipped: build with --features chaos to arm the fault plan)\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault-free 4-queue runs never trip the watchdog: every break out
    /// of the pump loop is excused (credit-blocked or rescheduled), so no
    /// queue ever leaves `Healthy` and the failover counters stay zero.
    #[test]
    fn fault_free_run_never_trips_the_watchdog() {
        let (_, sim) = flap_run(true, None);
        let st = &sim.model.st;
        assert_eq!(st.failover.failures, 0);
        assert_eq!(st.failover.suspects, 0);
        assert_eq!(st.failover.false_alarms, 0);
        assert!(st.rxq.iter().all(|q| q.state() == QueueState::Healthy));
    }

    /// The tentpole acceptance check: the seed-pinned queue-flap plan
    /// kills at least one queue, the watchdog fails it over and brings it
    /// back, and credit conservation holds at the end of the run.
    #[test]
    #[cfg(feature = "chaos")]
    fn queue_flap_fails_over_recovers_and_conserves() {
        use ceio_sim::Time;

        let plan = FaultPlan::parse("queue-flap", SEED).expect("canned plan");
        let (_, sim) = flap_run(true, Some(&plan));
        let st = &sim.model.st;
        assert!(
            st.failover.failures >= 1,
            "queue-flap must kill at least one queue: {:?}",
            st.failover
        );
        assert!(
            st.failover.recoveries >= 1,
            "at least one failed queue must return to Healthy: {:?}",
            st.failover
        );
        assert!(
            st.failover.flows_resteered >= 1,
            "failing over a queue must re-steer its flows: {:?}",
            st.failover
        );
        let spans = workloads::spans(true);
        let end = Time::ZERO + spans.warmup + spans.measure;
        let prom = sim.model.snapshot(end).to_prom_text();
        assert!(
            prom.contains("ceio_credit_conserved 1"),
            "Eq. 1 conservation must hold across the flap"
        );
    }
}
