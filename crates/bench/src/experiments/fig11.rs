//! Figure 11: single-flow throughput of CEIO's fast path and slow path
//! against `ib_write_bw`, varying message size.
//!
//! Paper shape to reproduce: the fast path tracks `ib_write_bw` (credit
//! control overhead is negligible); the slow path approaches the fast path
//! once messages exceed 4 KB, with the gap staying under ~22%.

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind};
use ceio_apps::write_bw_flow;
use ceio_host::{HostConfig, RunReport};
use ceio_net::Scenario;
use ceio_sim::Time;

const SIZES: [u64; 7] = [64, 256, 512, 1024, 4096, 16384, 65536];

fn scenario(msg_bytes: u64, host: &HostConfig) -> Scenario {
    let mut s = Scenario::new();
    s.start_at(
        Time::ZERO,
        write_bw_flow(0, msg_bytes, host.net.mtu, host.net.link_bandwidth),
    );
    s.build()
}

/// Run Figure 11 and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);
    let sizes: &[u64] = if quick { &SIZES[..4] } else { &SIZES };
    let variants = [
        ("ib_write_bw", PolicyKind::Baseline),
        ("CEIO fast path", PolicyKind::Ceio),
        ("CEIO slow path", PolicyKind::CeioSlowOnly),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for &size in sizes {
        for &(_, kind) in &variants {
            let host = HostConfig::default();
            let scen = scenario(size, &host);
            jobs.push(Box::new(move || {
                run_one(
                    host,
                    kind,
                    scen,
                    workloads::app_factory(AppKind::Sink),
                    spans.warmup,
                    spans.measure,
                )
            }));
        }
    }
    let reports = run_jobs(jobs);

    let mut t = Table::new(
        "Figure 11 — single-flow throughput vs message size (Gbps)",
        &[
            "msg size",
            "ib_write_bw",
            "CEIO fast",
            "CEIO slow",
            "fast/bw",
            "slow/fast gap",
        ],
    );
    for (i, &size) in sizes.iter().enumerate() {
        let bw = reports[i * 3].total_gbps();
        let fast = reports[i * 3 + 1].total_gbps();
        let slow = reports[i * 3 + 2].total_gbps();
        let gap = if fast > 0.0 {
            format!("{:.0}%", (1.0 - slow / fast) * 100.0)
        } else {
            "-".to_string()
        };
        t.row(vec![
            if size >= 1024 {
                format!("{}KB", size / 1024)
            } else {
                format!("{size}B")
            },
            table::f(bw, 1),
            table::f(fast, 1),
            table::f(slow, 1),
            table::speedup(fast, bw),
            gap,
        ]);
    }
    t.render()
}
