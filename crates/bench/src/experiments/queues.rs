//! Queue scaling: aggregate receive throughput as the NIC shards the
//! NIC→LLC data path over N RSS receive queues.
//!
//! The single-queue pipeline serializes descriptor issue: with a non-zero
//! per-descriptor issue gap (`NicParams::queue_issue_gap`, modelling the
//! doorbell/descriptor-fetch pipeline of one queue) a lone queue caps out
//! at `1/gap` packets per second regardless of PCIe or LLC headroom.
//! Sharding the Fig. 4 contention workload over N queues multiplies the
//! issue slots while the substrate — PCIe link budget, IIO admission,
//! DDIO credits (hierarchically partitioned at N > 1) — stays shared, so
//! aggregate fast-path throughput must rise monotonically from N = 1
//! until the link, the CPU, or the credit budget binds instead.

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::{HostConfig, RunReport};
use ceio_sim::Duration;

/// Queue counts swept (the paper's testbed NICs expose up to 8 queues per
/// port at this scale).
pub const QUEUE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Per-descriptor issue gap making one queue's doorbell pipeline the
/// bottleneck at 512 B packets (≈ 6.7 M descriptors/s per queue).
pub const ISSUE_GAP: Duration = Duration::nanos(150);

/// The contended host of Fig. 4, resharded over `n` receive queues with
/// the descriptor-issue gap enabled.
pub fn sharded_host(n: usize) -> HostConfig {
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.num_queues = n;
    host.nic.queue_issue_gap = ISSUE_GAP;
    host
}

/// Run one policy across the queue sweep; returns `(N, report)` pairs in
/// sweep order.
pub fn scaling_reports(quick: bool, kind: PolicyKind) -> Vec<(usize, RunReport)> {
    let spans = workloads::spans(quick);
    let jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = QUEUE_COUNTS
        .iter()
        .map(|&n| {
            let host = sharded_host(n);
            let link = host.net.link_bandwidth;
            Box::new(move || {
                run_one(
                    host,
                    kind,
                    workloads::involved_flows(16, 512, link),
                    workloads::app_factory(AppKind::Kv),
                    spans.warmup,
                    spans.measure,
                )
            }) as Box<dyn FnOnce() -> RunReport + Send>
        })
        .collect();
    QUEUE_COUNTS.iter().copied().zip(run_jobs(jobs)).collect()
}

/// Run the queue-scaling sweep and return the formatted report.
pub fn run(quick: bool) -> String {
    let mut t = Table::new(
        "Queue scaling — 16 KV flows, 150 ns issue gap (aggregate throughput by RSS queue count)",
        &[
            "policy",
            "queues",
            "involved Mpps",
            "fast Gbps",
            "slow Gbps",
            "P99",
            "drops",
        ],
    );
    for kind in [PolicyKind::Baseline, PolicyKind::Ceio] {
        for (n, r) in scaling_reports(quick, kind) {
            let p99 = r.involved_latency.quantiles(&[0.99])[0];
            t.row(vec![
                r.policy.clone(),
                n.to_string(),
                table::f(r.involved_mpps, 2),
                table::f(r.fast_path_gbps, 2),
                table::f(r.slow_path_gbps, 2),
                table::us(p99),
                r.dropped.to_string(),
            ]);
        }
        t.separator();
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance check: under the Fig. 4 contention with a
    /// descriptor-issue-bound NIC, CEIO's aggregate fast-path throughput
    /// rises monotonically from 1 to 4 queues.
    #[test]
    fn ceio_fast_path_scales_monotonically_to_four_queues() {
        let reports = scaling_reports(true, PolicyKind::Ceio);
        let by_n: Vec<(usize, f64)> = reports
            .iter()
            .filter(|(n, _)| *n <= 4)
            .map(|(n, r)| (*n, r.fast_path_gbps))
            .collect();
        assert_eq!(by_n.len(), 3);
        for w in by_n.windows(2) {
            assert!(
                w[1].1 > w[0].1,
                "fast-path throughput must grow with queues: {:?}",
                by_n
            );
        }
    }
}
