//! Ablations of CEIO's design choices beyond the paper's Table 4 column:
//!
//! * **Async vs sync slow-path access** (§4.2): with all traffic forced
//!   onto the slow path, `async_recv()`'s overlap should beat blocking
//!   `recv()` throughput.
//! * **Phase exclusivity on/off** (§4.2): disabling it lets fast-path
//!   packets overtake parked slow-path ones; the machine counts the
//!   resulting ordering stalls (must be zero when enabled).
//! * **Credit sizing** (Eq. 1): credits at 0.5×/1×/2×/4× of the
//!   LLC-derived total show that under-sizing wastes fast-path capacity
//!   while over-sizing reintroduces LLC misses — Eq. 1 is the knee.
//! * **MPQ vs lazy credit release** (§4.1's rejected design): PIAS-style
//!   priority decay demotes long-lived CPU-involved flows off the fast
//!   path just like DFS transfers; CEIO's lazy release keeps continuously
//!   consumed flows fast without any priority machinery.

use crate::runner::{run_jobs, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_baselines::OraclePolicy;
use ceio_core::{CeioConfig, CeioPolicy, MpqConfig, MpqPolicy};
use ceio_host::{run_to_report, Machine, RunReport};

fn run_ceio_with(
    cfg_mod: impl FnOnce(CeioConfig) -> CeioConfig,
    scenario: ceio_net::Scenario,
    host: ceio_host::HostConfig,
    app: AppKind,
    spans: workloads::Spans,
    label: &str,
) -> RunReport {
    let ceio = cfg_mod(CeioConfig {
        credit_total: host.credit_total(),
        ..CeioConfig::default()
    });
    let mut sim = Machine::build(
        host,
        CeioPolicy::new(ceio),
        scenario,
        workloads::app_factory(app),
    );
    let mut r = run_to_report(&mut sim, spans.warmup, spans.measure);
    r.policy = label.to_string();
    r
}

/// Run the ablation suite and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);
    let host = workloads::contended_host(Transport::Dpdk);
    let link = host.net.link_bandwidth;

    // (a) async vs sync slow-path drain: all-slow echo (zero credits).
    let h1 = host.clone();
    let h2 = host.clone();
    let s1 = workloads::involved_flows(1, 1024, link);
    let s2 = workloads::involved_flows(1, 1024, link);
    let sp = spans;
    let pair = run_jobs(vec![
        Box::new(move || {
            run_ceio_with(
                |c| CeioConfig {
                    credit_total: 0,
                    ..c
                },
                s1,
                h1,
                AppKind::Echo,
                sp,
                "slow path, async_recv",
            )
        }) as Box<dyn FnOnce() -> RunReport + Send>,
        Box::new(move || {
            run_ceio_with(
                |c| CeioConfig {
                    credit_total: 0,
                    async_fetch: false,
                    ..c
                },
                s2,
                h2,
                AppKind::Echo,
                sp,
                "slow path, sync recv",
            )
        }),
    ]);

    let mut out = String::new();
    let mut t = Table::new(
        "Ablation A — slow-path access mode (single 1024B echo flow, credits=0)",
        &["variant", "Gbps", "Mpps", "p999(us)"],
    );
    for r in &pair {
        t.row(vec![
            r.policy.clone(),
            table::f(r.total_gbps(), 1),
            table::f(r.total_mpps(), 2),
            table::us(r.involved_latency.p999()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // (b) phase exclusivity on/off: 8 overloaded KV flows cycle between
    // the paths, so disabling exclusivity lets fast packets overtake
    // parked slow ones and delivery stalls on sequence gaps.
    let h1 = host.clone();
    let h2 = host.clone();
    let m1 = workloads::involved_flows(8, 512, link);
    let m2 = workloads::involved_flows(8, 512, link);
    let pair = run_jobs(vec![
        Box::new(move || run_ceio_with(|c| c, m1, h1, AppKind::Kv, sp, "phase exclusivity ON"))
            as Box<dyn FnOnce() -> RunReport + Send>,
        Box::new(move || {
            run_ceio_with(
                |c| CeioConfig {
                    phase_exclusivity: false,
                    ..c
                },
                m2,
                h2,
                AppKind::Kv,
                sp,
                "phase exclusivity OFF",
            )
        }),
    ]);
    let mut t = Table::new(
        "Ablation B — phase exclusivity (8 saturating KV flows)",
        &["variant", "involved Mpps", "ordering stalls", "p999(us)"],
    );
    for r in &pair {
        t.row(vec![
            r.policy.clone(),
            table::f(r.involved_mpps, 2),
            r.ordering_stalls.to_string(),
            table::us(r.involved_latency.p999()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // (c) credit sizing around Eq. 1.
    let eq1 = host.credit_total();
    let factors = [
        (eq1 / 2, "0.5x"),
        (eq1, "1.0x (Eq.1)"),
        (eq1 * 2, "2x"),
        (eq1 * 4, "4x"),
    ];
    let jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = factors
        .iter()
        .map(|&(credits, label)| {
            // 2048 B packets fill their whole buffer, making Eq. 1 tight,
            // and two shared cores keep the CPU overloaded so outstanding
            // data actually reaches whatever bound the credits allow.
            let host = ceio_host::HostConfig {
                num_cores: Some(2),
                ..host.clone()
            };
            let scen = workloads::involved_flows(8, 2048, link);
            let label = label.to_string();
            Box::new(move || {
                run_ceio_with(
                    |c| CeioConfig {
                        credit_total: credits,
                        ..c
                    },
                    scen,
                    host,
                    AppKind::Kv,
                    sp,
                    &label,
                )
            }) as Box<dyn FnOnce() -> RunReport + Send>
        })
        .collect();
    let sized = run_jobs(jobs);
    let mut t = Table::new(
        "Ablation C — credit total vs Eq. 1 (8 KV flows, 2048B)",
        &["credits", "Mpps", "miss%", "slow-path pkts"],
    );
    for r in &sized {
        t.row(vec![
            r.policy.clone(),
            table::f(r.involved_mpps, 2),
            table::f(r.llc_miss_rate * 100.0, 1),
            r.slow_path_pkts.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // (d) MPQ vs lazy credit release (§4.1): continuous RPC flows are
    // long-lived — PIAS-style byte-count decay demotes them alongside the
    // DFS tenant, while CEIO's lazy release never does.
    let h1 = host.clone();
    let h2 = host.clone();
    let m1 = workloads::mixed_flows(4, 4, 512, link);
    let m2 = workloads::mixed_flows(4, 4, 512, link);
    let pair = run_jobs(vec![
        Box::new(move || run_ceio_with(|c| c, m1, h1, AppKind::Mixed, sp, "CEIO (lazy release)"))
            as Box<dyn FnOnce() -> RunReport + Send>,
        Box::new(move || {
            let mpq = MpqConfig {
                credit_total: h2.credit_total(),
                ..MpqConfig::default()
            };
            let mut sim = Machine::build(
                h2,
                MpqPolicy::new(mpq),
                m2,
                workloads::app_factory(AppKind::Mixed),
            );
            let mut r = run_to_report(&mut sim, sp.warmup, sp.measure);
            r.policy = "MPQ (PIAS-style)".to_string();
            r
        }),
    ]);
    let mut t = Table::new(
        "Ablation D — lazy credit release vs Multiple Priority Queues (4:4 mixed)",
        &[
            "variant",
            "involved Mpps",
            "involved p999(us)",
            "slow-path pkts",
        ],
    );
    for r in &pair {
        t.row(vec![
            r.policy.clone(),
            table::f(r.involved_mpps, 2),
            table::us(r.involved_latency.p999()),
            r.slow_path_pkts.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // (e) Inference vs oracle: how much of the ideal (ground-truth
    // class-based steering) does CEIO's behavioural inference recover?
    let h1 = host.clone();
    let h2 = host.clone();
    let m1 = workloads::mixed_flows(4, 4, 512, link);
    let m2 = workloads::mixed_flows(4, 4, 512, link);
    let pair = run_jobs(vec![
        Box::new(move || run_ceio_with(|c| c, m1, h1, AppKind::Mixed, sp, "CEIO (inferred)"))
            as Box<dyn FnOnce() -> RunReport + Send>,
        Box::new(move || {
            let cfg = CeioConfig {
                credit_total: h2.credit_total(),
                ..CeioConfig::default()
            };
            let mut sim = Machine::build(
                h2,
                OraclePolicy::new(cfg),
                m2,
                workloads::app_factory(AppKind::Mixed),
            );
            let mut r = run_to_report(&mut sim, sp.warmup, sp.measure);
            r.policy = "Oracle (ground truth)".to_string();
            r
        }),
    ]);
    let mut t = Table::new(
        "Ablation E — behavioural inference vs ground-truth oracle (4:4 mixed)",
        &["variant", "involved Mpps", "bypass Gbps", "miss%"],
    );
    for r in &pair {
        t.row(vec![
            r.policy.clone(),
            table::f(r.involved_mpps, 2),
            table::f(r.bypass_gbps, 1),
            table::f(r.llc_miss_rate * 100.0, 1),
        ]);
    }
    out.push_str(&t.render());

    // Tie back to the competitor set so the ablation report stands alone.
    let _ = PolicyKind::Ceio;
    out
}
