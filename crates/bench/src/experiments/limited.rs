//! §6.3 "Scenarios where CEIO's benefits are limited":
//!
//! 1. **Low memory pressure** — 64 B packets with VxLAN decapsulation and a
//!    small buffer footprint: everything fits in the LLC, every method
//!    performs the same (<5% miss; the paper reports ~89 Mpps for all).
//! 2. **Large packets** — 9000 B jumbo-frame echo: per-packet overheads
//!    amortize, the system reaches line rate even with a ~48% miss rate,
//!    so LLC management buys nothing.

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind};
use ceio_host::{HostConfig, RunReport};

/// Run the limited-benefit scenarios and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);

    // (1) 64 B VxLAN decap, small footprint: 2k buffers/flow = 1 MB total.
    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for kind in PolicyKind::COMPETITORS {
        let host = HostConfig {
            ring_entries: 2048,
            ..HostConfig::default()
        };
        let link = host.net.link_bandwidth;
        let scen = workloads::involved_flows(8, 64, link);
        jobs.push(Box::new(move || {
            run_one(
                host,
                kind,
                scen,
                workloads::app_factory(AppKind::Vxlan),
                spans.warmup,
                spans.measure,
            )
        }));
    }
    // (2) 9000 B jumbo echo at line rate.
    for kind in PolicyKind::COMPETITORS {
        let mut host = HostConfig {
            ring_entries: 16384,
            buf_bytes: 9216,
            ..HostConfig::default()
        };
        host.net.mtu = 9000;
        let link = host.net.link_bandwidth;
        let scen = workloads::involved_flows(8, 9000, link);
        jobs.push(Box::new(move || {
            run_one(
                host,
                kind,
                scen,
                workloads::app_factory(AppKind::Echo),
                spans.warmup,
                spans.measure,
            )
        }));
    }
    let reports = run_jobs(jobs);

    let mut t = Table::new(
        "S6.3 limited-benefit scenarios — all methods converge",
        &["scenario", "policy", "Mpps", "Gbps", "miss%", "line-rate?"],
    );
    let scenarios = [
        ("64B VxLAN decap (low pressure)", 0),
        ("9000B jumbo echo", 4),
    ];
    for (label, off) in scenarios {
        for r in &reports[off..off + 4] {
            let line = r.total_gbps() > 0.9 * 200.0;
            t.row(vec![
                label.to_string(),
                r.policy.clone(),
                table::f(r.total_mpps(), 1),
                table::f(r.total_gbps(), 1),
                table::f(r.llc_miss_rate * 100.0, 1),
                if line { "yes" } else { "no" }.to_string(),
            ]);
        }
        t.separator();
    }
    t.render()
}
