//! Sensitivity analysis (extension beyond the paper's figures): how CEIO's
//! benefit scales with the scarcity of the resource it manages.
//!
//! * **DDIO partition size**: the paper evaluates one cache (6 MB DDIO of
//!   a 12 MB LLC). Sweeping the partition shows the gain growing as the
//!   cache gets scarcer relative to in-flight data — and vanishing once
//!   the partition holds the whole working set (the §6.3 low-pressure
//!   result, reached from the other direction).
//! * **DRAM effective bandwidth**: misses are only expensive if DRAM can
//!   contend; sweeping it separates CEIO's two benefit channels (miss
//!   *latency* avoided vs DRAM *bandwidth* freed).
//! * **Future NIC hardware** (§6.3/§6.4 future work): CEIO inside the NIC
//!   pipeline with SRAM-class elastic storage — no internal-PCIe-switch
//!   penalty, near-zero control-core cost — projected by re-parameterizing
//!   the model, quantifying how far the slow path's residual penalty is
//!   implementation-bound.

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::RunReport;
use ceio_sim::{Bandwidth, Duration};

/// Run the sensitivity sweeps and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);
    let mut out = String::new();

    // (1) DDIO partition sweep at fixed workload.
    let ddio_sizes: &[(u64, &str)] = &[
        (1 << 20, "1 MB"),
        (2 << 20, "2 MB"),
        (6 << 20, "6 MB (paper)"),
        (12 << 20, "12 MB"),
        (48 << 20, "48 MB"),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> (RunReport, RunReport) + Send>> = Vec::new();
    for &(bytes, _) in ddio_sizes {
        jobs.push(Box::new(move || {
            let mut host = workloads::contended_host(Transport::Dpdk);
            host.mem.ddio_bytes = bytes;
            let link = host.net.link_bandwidth;
            let scen = workloads::involved_flows(8, 512, link);
            let scen2 = workloads::involved_flows(8, 512, link);
            let base = run_one(
                host.clone(),
                PolicyKind::Baseline,
                scen,
                workloads::app_factory(AppKind::Kv),
                spans.warmup,
                spans.measure,
            );
            let ceio = run_one(
                host,
                PolicyKind::Ceio,
                scen2,
                workloads::app_factory(AppKind::Kv),
                spans.warmup,
                spans.measure,
            );
            (base, ceio)
        }));
    }
    let pairs = run_jobs(jobs);
    let mut t = Table::new(
        "Sensitivity 1 — DDIO partition size (8 KV flows, 512B)",
        &[
            "DDIO",
            "base Mpps",
            "base miss%",
            "CEIO Mpps",
            "CEIO miss%",
            "speedup",
        ],
    );
    for ((base, ceio), &(_, label)) in pairs.iter().zip(ddio_sizes) {
        t.row(vec![
            label.to_string(),
            table::f(base.involved_mpps, 2),
            table::f(base.llc_miss_rate * 100.0, 1),
            table::f(ceio.involved_mpps, 2),
            table::f(ceio.llc_miss_rate * 100.0, 1),
            table::speedup(ceio.involved_mpps, base.involved_mpps),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // (2) DRAM effective-bandwidth sweep.
    let dram_bw: &[(u64, &str)] = &[
        (16, "16 GB/s"),
        (32, "32 GB/s"),
        (64, "64 GB/s (default)"),
        (128, "128 GB/s"),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> (RunReport, RunReport) + Send>> = Vec::new();
    for &(g, _) in dram_bw {
        jobs.push(Box::new(move || {
            let mut host = workloads::contended_host(Transport::Dpdk);
            host.mem.dram_bandwidth = Bandwidth::gibps(g);
            let link = host.net.link_bandwidth;
            let scen = workloads::involved_flows(8, 512, link);
            let scen2 = workloads::involved_flows(8, 512, link);
            let base = run_one(
                host.clone(),
                PolicyKind::Baseline,
                scen,
                workloads::app_factory(AppKind::Kv),
                spans.warmup,
                spans.measure,
            );
            let ceio = run_one(
                host,
                PolicyKind::Ceio,
                scen2,
                workloads::app_factory(AppKind::Kv),
                spans.warmup,
                spans.measure,
            );
            (base, ceio)
        }));
    }
    let pairs = run_jobs(jobs);
    let mut t = Table::new(
        "Sensitivity 2 — DRAM effective bandwidth (8 KV flows, 512B)",
        &["DRAM", "base Mpps", "CEIO Mpps", "speedup"],
    );
    for ((base, ceio), &(_, label)) in pairs.iter().zip(dram_bw) {
        t.row(vec![
            label.to_string(),
            table::f(base.involved_mpps, 2),
            table::f(ceio.involved_mpps, 2),
            table::speedup(ceio.involved_mpps, base.involved_mpps),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // (3) Future-hardware projection: DPA pipeline + SRAM elastic store.
    // Single-flow slow path (the Fig. 11 stress case, 512 B messages) on
    // today's BF-3 parameters vs the projected hardware.
    let variants: &[(&str, u64, u64, u64)] = &[
        // (label, onboard GB/s, onboard latency ns, arm table-update ns)
        ("BlueField-3 (today)", 60, 200, 150),
        ("DPA + onboard SRAM", 100, 40, 10),
        ("CXL CPU-attached SRAM", 150, 20, 10),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for &(_, gbps, lat_ns, arm_ns) in variants {
        jobs.push(Box::new(move || {
            let mut host = ceio_host::HostConfig::default();
            host.nic.onboard_bandwidth = Bandwidth::gibps(gbps);
            host.nic.onboard_base_latency = Duration::nanos(lat_ns);
            host.nic.arm_table_update = Duration::nanos(arm_ns);
            let link = host.net.link_bandwidth;
            let scen = workloads::involved_flows(1, 512, link);
            run_one(
                host,
                PolicyKind::CeioSlowOnly,
                scen,
                workloads::app_factory(AppKind::Sink),
                spans.warmup,
                spans.measure,
            )
        }));
    }
    let runs = run_jobs(jobs);
    let mut t = Table::new(
        "Sensitivity 3 — slow path on future NIC hardware (single 512B flow, credits=0)",
        &["hardware", "slow-path Gbps", "p999(us)"],
    );
    for (r, &(label, _, _, _)) in runs.iter().zip(variants) {
        t.row(vec![
            label.to_string(),
            table::f(r.total_gbps(), 1),
            table::us(r.involved_latency.p999()),
        ]);
    }
    out.push_str(&t.render());
    out
}
