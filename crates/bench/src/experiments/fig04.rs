//! Figure 4 (motivation): I/O performance of the existing methods —
//! Baseline, HostCC, ShRing — under (a) dynamic flow distribution and
//! (b) network burst, against the *expected* performance computed from the
//! per-core throughput with sufficient LLC.
//!
//! Paper shape to reproduce: both methods improve on the baseline in
//! steady state, but fall well short of expected right after each phase
//! change — HostCC from slow response (up to 1.9× below expected), ShRing
//! from CCA-forced rate reduction (up to 1.6×).

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::{HostConfig, RunReport};
use ceio_sim::Duration;

/// Phase length at simulation scale (paper: 10 s).
pub fn phase(quick: bool) -> Duration {
    if quick {
        Duration::millis(2)
    } else {
        Duration::millis(5)
    }
}

/// Measure the per-core CPU-involved throughput with effectively infinite
/// LLC — the paper's "expected performance" unit.
pub fn sufficient_llc_per_core_mpps(quick: bool) -> f64 {
    let mut host = workloads::contended_host(Transport::Dpdk);
    host.mem.ddio_bytes = 1 << 30; // LLC never overflows
    let link = host.net.link_bandwidth;
    let spans = workloads::spans(quick);
    let r = run_one(
        host,
        PolicyKind::Baseline,
        workloads::involved_flows(1, 512, link.scale(1, 4)),
        workloads::app_factory(AppKind::Kv),
        spans.warmup,
        spans.measure,
    );
    r.involved_mpps
}

/// Involved-flow count per phase for the two scenarios.
fn involved_counts(burst: bool, phases: u32) -> Vec<u32> {
    (0..=phases)
        .map(|p| if burst { 8 + 2 * p } else { 8 - 2 * p })
        .collect()
}

fn run_scenario(
    quick: bool,
    burst: bool,
    policies: &[PolicyKind],
) -> (Vec<RunReport>, Vec<u32>, Duration) {
    let ph = phase(quick);
    let phases = 3;
    let host = workloads::contended_host(Transport::Dpdk);
    let link = host.net.link_bandwidth;
    let jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = policies
        .iter()
        .map(|&kind| {
            let host = host.clone();
            let scenario = if burst {
                workloads::network_burst(ph, phases, link)
            } else {
                workloads::dynamic_distribution(ph, phases, link)
            };
            Box::new(move || {
                run_one(
                    host,
                    kind,
                    scenario,
                    workloads::app_factory(AppKind::Mixed),
                    Duration::millis(1),
                    ph.saturating_mul(phases as u64 + 1),
                )
            }) as Box<dyn FnOnce() -> RunReport + Send>
        })
        .collect();
    (run_jobs(jobs), involved_counts(burst, phases), ph)
}

/// Per-phase mean of the involved-Mpps time series.
pub fn phase_means(r: &RunReport, phase: Duration, phases: u32) -> Vec<f64> {
    let mut out = Vec::new();
    for p in 0..=phases {
        // Phase p spans [p*phase, (p+1)*phase) relative to warmup end.
        let start_ms = p as f64 * phase.as_secs_f64() * 1e3;
        let end_ms = (p + 1) as f64 * phase.as_secs_f64() * 1e3;
        let vals: Vec<f64> = r
            .involved_mpps_series
            .points
            .iter()
            .filter(|(t, _)| {
                let ms = t.as_millis_f64();
                ms > start_ms && ms <= end_ms
            })
            .map(|&(_, v)| v)
            .collect();
        let mean = if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        out.push(mean);
    }
    out
}

fn report_one(
    title: &str,
    reports: &[RunReport],
    counts: &[u32],
    ph: Duration,
    per_core: f64,
    host: &HostConfig,
) -> String {
    let phases = counts.len() as u32 - 1;
    let mut headers: Vec<String> = vec!["policy".into()];
    for (p, c) in counts.iter().enumerate() {
        headers.push(format!("phase{p} ({c} flows)"));
    }
    headers.push("worst vs expected".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &hdr_refs);

    // Expected: involved_count x per-core throughput, capped by line rate.
    let line_mpps = host.net.link_bandwidth.as_bytes_per_sec() as f64 / 512.0 / 1e6;
    let expected: Vec<f64> = counts
        .iter()
        .map(|&c| (c as f64 * per_core).min(line_mpps))
        .collect();
    let mut row = vec!["Expected".to_string()];
    row.extend(expected.iter().map(|&e| table::f(e, 2)));
    row.push("-".to_string());
    t.row(row);
    t.separator();

    for r in reports {
        let means = phase_means(r, ph, phases);
        let worst = means
            .iter()
            .zip(&expected)
            .map(|(&m, &e)| if m > 0.0 { e / m } else { f64::INFINITY })
            .fold(0.0f64, f64::max);
        let mut row = vec![r.policy.clone()];
        row.extend(means.iter().map(|&m| table::f(m, 2)));
        row.push(format!("{worst:.2}x below"));
        t.row(row);
    }
    t.render()
}

/// Run Figure 4 and return the formatted report.
pub fn run(quick: bool) -> String {
    let per_core = sufficient_llc_per_core_mpps(quick);
    let host = workloads::contended_host(Transport::Dpdk);
    let policies = [PolicyKind::Baseline, PolicyKind::HostCc, PolicyKind::ShRing];

    let (dyn_reports, dyn_counts, ph) = run_scenario(quick, false, &policies);
    let (burst_reports, burst_counts, _) = run_scenario(quick, true, &policies);

    let mut out = String::new();
    out.push_str(&format!(
        "per-core throughput with sufficient LLC: {per_core:.2} Mpps\n\n"
    ));
    out.push_str(&report_one(
        "Figure 4a — dynamic flow distribution (CPU-involved Mpps per phase)",
        &dyn_reports,
        &dyn_counts,
        ph,
        per_core,
        &host,
    ));
    out.push('\n');
    out.push_str(&report_one(
        "Figure 4b — network burst (CPU-involved Mpps per phase)",
        &burst_reports,
        &burst_counts,
        ph,
        per_core,
        &host,
    ));
    out
}
