//! Figure 10: I/O performance under dynamic network conditions with CEIO
//! included — the same two scenarios as Figure 4.
//!
//! Paper shape to reproduce: CEIO avoids both limitations, achieving up to
//! 2.0× (dynamic distribution) and 2.9× (burst) over the best prior method
//! in the phases where their limitations bite, and tracks expected
//! performance closely throughout.

use crate::experiments::fig04;
use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::RunReport;
use ceio_sim::Duration;

fn run_scenario(quick: bool, burst: bool) -> (Vec<RunReport>, Vec<u32>, Duration) {
    let ph = fig04::phase(quick);
    let phases = 3;
    let mut host = workloads::contended_host(Transport::Dpdk);
    // Fine-grained sampling so the transition windows right after each
    // phase change — where slow response and fixed buffering bite — are
    // visible, not averaged away.
    host.sample_window = ceio_sim::Duration::micros(100);
    let link = host.net.link_bandwidth;
    let jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = PolicyKind::COMPETITORS
        .iter()
        .map(|&kind| {
            let host = host.clone();
            let scenario = if burst {
                workloads::network_burst(ph, phases, link)
            } else {
                workloads::dynamic_distribution(ph, phases, link)
            };
            Box::new(move || {
                run_one(
                    host,
                    kind,
                    scenario,
                    workloads::app_factory(AppKind::Mixed),
                    Duration::millis(1),
                    ph.saturating_mul(phases as u64 + 1),
                )
            }) as Box<dyn FnOnce() -> RunReport + Send>
        })
        .collect();
    let counts: Vec<u32> = (0..=phases)
        .map(|p| if burst { 8 + 2 * p } else { 8 - 2 * p })
        .collect();
    (run_jobs(jobs), counts, ph)
}

/// Mean of the involved-Mpps series over the first `window_ms` after each
/// phase change — the transient the paper's headline gaps live in.
fn transition_mean(r: &RunReport, ph: Duration, phases: u32, window_ms: f64) -> f64 {
    let mut vals = Vec::new();
    for p in 1..=phases {
        let start_ms = p as f64 * ph.as_secs_f64() * 1e3;
        let end_ms = start_ms + window_ms;
        vals.extend(
            r.involved_mpps_series
                .points
                .iter()
                .filter(|(t, _)| {
                    let ms = t.as_millis_f64();
                    ms > start_ms && ms <= end_ms
                })
                .map(|&(_, v)| v),
        );
    }
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

fn report_one(title: &str, reports: &[RunReport], counts: &[u32], ph: Duration) -> String {
    let phases = counts.len() as u32 - 1;
    let mut headers: Vec<String> = vec!["policy".into()];
    for (p, c) in counts.iter().enumerate() {
        headers.push(format!("phase{p} ({c} flows)"));
    }
    headers.push("transition (first 500us)".into());
    headers.push("overall Mpps".into());
    headers.push("CEIO speedup".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &hdr_refs);

    let ceio_overall = reports
        .iter()
        .find(|r| r.policy == "CEIO")
        .map(|r| r.involved_mpps)
        .unwrap_or(0.0);
    for r in reports {
        let means = fig04::phase_means(r, ph, phases);
        let mut row = vec![r.policy.clone()];
        row.extend(means.iter().map(|&m| table::f(m, 2)));
        row.push(table::f(transition_mean(r, ph, phases, 0.5), 2));
        row.push(table::f(r.involved_mpps, 2));
        row.push(table::speedup(ceio_overall, r.involved_mpps));
        t.row(row);
    }
    t.render()
}

/// Run Figure 10 and return the formatted report.
pub fn run(quick: bool) -> String {
    let (dyn_reports, dyn_counts, ph) = run_scenario(quick, false);
    let (burst_reports, burst_counts, _) = run_scenario(quick, true);
    let mut out = String::new();
    out.push_str(&report_one(
        "Figure 10a — dynamic flow distribution with CEIO (CPU-involved Mpps)",
        &dyn_reports,
        &dyn_counts,
        ph,
    ));
    out.push('\n');
    out.push_str(&report_one(
        "Figure 10b — network burst with CEIO (CPU-involved Mpps)",
        &burst_reports,
        &burst_counts,
        ph,
    ));
    out
}
