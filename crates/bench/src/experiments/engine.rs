//! `engine` — events/sec microbenchmark of the future-event list itself.
//!
//! Unlike every other experiment (which measures the *modeled* hardware),
//! this one measures the *simulator*: how many events per wall-clock second
//! the engine dispatches under the hierarchical timing wheel versus the
//! seed-era binary heap kept as the reference backend. Both backends produce
//! bit-identical `(time, seq)` pop order (pinned by the `ceio-sim`
//! proptests), so this is a pure cost comparison.
//!
//! Wall-clock timing is deliberately out of scope for the determinism rules:
//! the simulations themselves never read host time, but the harness may —
//! the measured quantity here *is* host time. Results land in
//! `BENCH_engine.json` in the working directory so the perf-smoke CI lane
//! can archive the trajectory run over run.

use ceio_sim::{EventQueue, QueueBackend, Rng, Time};
use std::fmt::Write as _;
use std::time::Instant;

/// One churn pattern driven identically through both backends.
struct Workload {
    name: &'static str,
    /// Steady-state pending-event population (heap depth is `log2` of this;
    /// the wheel is insensitive to it).
    pending: usize,
    /// Dispatches measured after the queue is pre-filled.
    churn: usize,
    /// Delays are drawn uniformly from `1..=max_delay_ns` past `now`.
    max_delay_ns: u64,
    /// Fraction of schedules that go through a cancellable timer which is
    /// then cancelled before it can fire (the `Pump`/`Emit` reschedule
    /// pattern the host machine uses).
    cancel_per_mille: u64,
}

/// The measured workloads. The storm keeps a deep pending population where
/// the heap pays `O(log n)` per op; the cancel churn replays the host
/// machine's timer-rearm pattern where the wheel's O(1) cancel shines.
const WORKLOADS: [Workload; 2] = [
    Workload {
        name: "storm",
        pending: 1 << 17,
        churn: 2_000_000,
        max_delay_ns: 1_000_000,
        cancel_per_mille: 0,
    },
    Workload {
        name: "cancel-churn",
        pending: 1 << 14,
        churn: 1_500_000,
        max_delay_ns: 100_000,
        cancel_per_mille: 500,
    },
];

/// Measured throughput of one backend on one workload.
struct Measurement {
    events_per_sec: f64,
    dispatched: u64,
}

/// Drive `workload` through `backend` once and return events/sec. The event
/// payload is a bare `u64` so the measurement isolates the priority
/// structure, not payload movement.
fn run_once(backend: QueueBackend, w: &Workload, seed: u64) -> Measurement {
    let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
    let mut rng = Rng::seed_from_u64(seed);
    let t0 = Instant::now();
    for i in 0..w.pending {
        let at = Time(1 + rng.gen_range(w.max_delay_ns));
        q.schedule_at(at, i as u64);
    }
    // Steady-state churn: every dispatch schedules a successor, so the
    // pending population stays at `w.pending` throughout.
    for i in 0..w.churn {
        let e = q.pop().expect("invariant: churn keeps the queue non-empty");
        let at = Time(e.at.0 + 1 + rng.gen_range(w.max_delay_ns));
        if rng.gen_range(1000) < w.cancel_per_mille {
            // Rearm pattern: arm a cancellable timer, cancel it, then
            // schedule the replacement — two extra queue ops per event.
            let tok = q.schedule_cancellable_at(at, u64::MAX);
            q.cancel(tok);
        }
        q.schedule_at(at, i as u64);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let dispatched = q.dispatched_total();
    Measurement {
        events_per_sec: dispatched as f64 / elapsed.max(1e-9),
        dispatched,
    }
}

/// Best-of-`trials` events/sec (best-of filters scheduler noise; the two
/// backends see identical schedules per trial).
fn measure(backend: QueueBackend, w: &Workload, trials: usize) -> Measurement {
    (0..trials)
        .map(|t| run_once(backend, w, 0xCE10 + t as u64))
        .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec))
        .expect("invariant: at least one trial")
}

/// Run the engine benchmark, write `BENCH_engine.json`, and return the
/// formatted report.
pub fn run(quick: bool) -> String {
    let trials = if quick { 2 } else { 3 };
    let scale = if quick { 8 } else { 1 };
    let mut report =
        String::from("engine events/sec — timing wheel vs reference heap (identical schedules)\n");
    let mut rows = String::new();
    let mut min_speedup = f64::INFINITY;
    for w in &WORKLOADS {
        // Quick mode shrinks only the measured churn: the pending
        // population is what separates the backends (heap depth), so it
        // stays full-size in both modes.
        let scaled = Workload {
            churn: w.churn / scale,
            ..*w
        };
        let wheel = measure(QueueBackend::Wheel, &scaled, trials);
        let heap = measure(QueueBackend::Heap, &scaled, trials);
        let speedup = wheel.events_per_sec / heap.events_per_sec;
        min_speedup = min_speedup.min(speedup);
        let _ = writeln!(
            report,
            "  {:<13} wheel {:>6.2} Mev/s  heap {:>6.2} Mev/s  speedup {:.2}x  ({} events, pending {})",
            scaled.name,
            wheel.events_per_sec / 1e6,
            heap.events_per_sec / 1e6,
            speedup,
            wheel.dispatched,
            scaled.pending,
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"name\": \"{}\", \"pending\": {}, \"events\": {}, \
             \"wheel_events_per_sec\": {:.0}, \"heap_events_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}",
            scaled.name,
            scaled.pending,
            wheel.dispatched,
            wheel.events_per_sec,
            heap.events_per_sec,
            speedup,
        );
    }
    let _ = writeln!(
        report,
        "  min speedup {min_speedup:.2}x (target >= 1.5x; BENCH_engine.json written)"
    );
    let json = format!(
        "{{\n  \"experiment\": \"engine\",\n  \"mode\": \"{}\",\n  \"trials\": {trials},\n  \
         \"workloads\": [\n{rows}\n  ],\n  \"min_speedup\": {min_speedup:.3},\n  \
         \"target_speedup\": 1.5\n}}\n",
        if quick { "quick" } else { "full" },
    );
    if let Err(e) = std::fs::write("BENCH_engine.json", &json) {
        let _ = writeln!(report, "  warning: could not write BENCH_engine.json: {e}");
    }
    report
}
