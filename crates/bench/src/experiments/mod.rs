//! One module per table/figure of the paper's evaluation.

pub mod ablations;
pub mod ddio;
pub mod engine;
pub mod failover;
pub mod fig04;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod limited;
pub mod queues;
pub mod sensitivity;
pub mod table2;
pub mod table3;
pub mod table4;

/// An experiment entry point: `run(quick) -> formatted report`.
pub type ExperimentFn = fn(bool) -> String;

/// All experiments by name, in paper order.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig04", fig04::run as ExperimentFn),
        ("fig09", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("table2", table2::run),
        ("table3", table3::run),
        ("table4", table4::run),
        ("limited", limited::run),
        ("queues", queues::run),
        ("ddio", ddio::run),
        ("failover", failover::run),
        ("ablations", ablations::run),
        ("sensitivity", sensitivity::run),
        ("engine", engine::run),
    ]
}
