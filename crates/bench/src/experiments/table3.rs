//! Table 3: latency (µs) of RDMA write vs CEIO fast path vs CEIO slow
//! path at 64 B / 1024 B / 4096 B, perftest `ib_write_lat` style.
//!
//! Paper shape to reproduce: CEIO adds a modest 1.10–1.48× latency over a
//! raw RDMA write; the slow path is slower than the fast path, and the gap
//! grows with message size (onboard-memory traversal).

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind};
use ceio_apps::write_lat_flow;
use ceio_host::{HostConfig, RunReport};
use ceio_net::Scenario;
use ceio_sim::{Duration, Time};

const SIZES: [u64; 3] = [64, 1024, 4096];

fn scenario(msg_bytes: u64, host: &HostConfig) -> Scenario {
    let mut s = Scenario::new();
    s.start_at(Time::ZERO, write_lat_flow(0, msg_bytes, host.net.mtu));
    s.build()
}

fn lat_host() -> HostConfig {
    let mut host = HostConfig::default();
    // ib_write_lat runs back-to-back servers; use a one-hop 500 ns wire so
    // absolute numbers land in the paper's low-microsecond regime.
    host.net.base_delay = Duration::nanos(500);
    host
}

/// Run Table 3 and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);
    let variants = [
        ("RDMA write", PolicyKind::Baseline),
        ("Fast path", PolicyKind::Ceio),
        ("Slow path", PolicyKind::CeioSlowOnly),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for &size in &SIZES {
        for &(_, kind) in &variants {
            let host = lat_host();
            let scen = scenario(size, &host);
            jobs.push(Box::new(move || {
                run_one(
                    host,
                    kind,
                    scen,
                    workloads::app_factory(AppKind::Sink),
                    spans.warmup,
                    spans.measure,
                )
            }));
        }
    }
    let reports = run_jobs(jobs);

    let mut t = Table::new(
        "Table 3 — ib_write_lat-style latency (us, median)",
        &[
            "size",
            "RDMA write",
            "Fast path",
            "fast/rdma",
            "Slow path",
            "slow/rdma",
        ],
    );
    for (i, &size) in SIZES.iter().enumerate() {
        let p50 = |r: &RunReport| r.bypass_latency.p50();
        let rdma = p50(&reports[i * 3]);
        let fast = p50(&reports[i * 3 + 1]);
        let slow = p50(&reports[i * 3 + 2]);
        let ratio = |x: u64| {
            if rdma == 0 {
                "-".to_string()
            } else {
                format!("{:.2}x", x as f64 / rdma as f64)
            }
        };
        t.row(vec![
            format!("{size}B"),
            table::us(rdma),
            table::us(fast),
            ratio(fast),
            table::us(slow),
            ratio(slow),
        ]);
    }
    let _ = quick;
    t.render()
}
