//! Table 2: P99 and P99.9 latency (µs) under the 512 B echo workload, for
//! the three datapaths × Baseline / HostCC / ShRing / CEIO.
//!
//! Paper shape to reproduce: every optimization cuts tails versus the
//! baseline; ShRing beats HostCC; CEIO gives the deepest reductions
//! (2.0–4.7× at P99/P99.9).

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::RunReport;
use ceio_net::FlowClass;
use ceio_sim::Histogram;

/// Datapaths of the table: transport + flow class + consumer.
struct Datapath {
    label: &'static str,
    transport: Transport,
    class: FlowClass,
    app: AppKind,
}

// Substitution note: the paper's 512 B echo server saturates its testbed
// CPUs; this model's echo consumer is far cheaper than the modeled host
// path, so the equivalent pressure point is the 512 B KV RPC under
// saturation — same packet size, same flow class, same contention.
const DATAPATHS: [Datapath; 3] = [
    Datapath {
        label: "eRPC (DPDK)",
        transport: Transport::Dpdk,
        class: FlowClass::CpuInvolved,
        app: AppKind::Kv,
    },
    Datapath {
        label: "eRPC (RDMA)",
        transport: Transport::Rdma,
        class: FlowClass::CpuInvolved,
        app: AppKind::Kv,
    },
    Datapath {
        label: "LineFS",
        transport: Transport::Rdma,
        class: FlowClass::CpuBypass,
        app: AppKind::LineFs,
    },
];

/// Run Table 2 and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);
    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for dp in &DATAPATHS {
        for kind in PolicyKind::COMPETITORS {
            let host = workloads::contended_host(dp.transport);
            let link = host.net.link_bandwidth;
            let scenario = match dp.class {
                FlowClass::CpuInvolved => workloads::involved_flows(8, 512, link),
                // LineFS: 512 B messages, write-with-immediate per message.
                FlowClass::CpuBypass => workloads::bypass_flows(8, 512, 512, link),
            };
            let app = dp.app;
            jobs.push(Box::new(move || {
                run_one(
                    host,
                    kind,
                    scenario,
                    workloads::app_factory(app),
                    spans.warmup,
                    spans.measure,
                )
            }));
        }
    }
    let reports = run_jobs(jobs);

    let mut t = Table::new(
        "Table 2 — P99 / P99.9 latency (us), 512B RPC under saturation (echo-workload substitution, see module docs)",
        &["datapath", "policy", "P99", "P99 vs base", "P99.9", "P99.9 vs base"],
    );
    let mut idx = 0;
    for dp in &DATAPATHS {
        let group = &reports[idx..idx + 4];
        idx += 4;
        let lat = |r: &RunReport| -> Histogram {
            match dp.class {
                FlowClass::CpuInvolved => r.involved_latency.clone(),
                FlowClass::CpuBypass => r.bypass_latency.clone(),
            }
        };
        // Single-pass tail extraction: one CDF walk per histogram instead
        // of one per percentile accessor.
        let tails = |h: &Histogram| -> (u64, u64) {
            let q = h.quantiles(&[0.99, 0.999]);
            (q[0], q[1])
        };
        let (b99, b999) = tails(&lat(&group[0]));
        for r in group {
            let (p99, p999) = tails(&lat(r));
            let red = |x: u64, b: u64| -> String {
                if x == 0 {
                    "-".to_string()
                } else {
                    format!("down {:.2}x", b as f64 / x as f64)
                }
            };
            t.row(vec![
                dp.label.to_string(),
                r.policy.clone(),
                table::us(p99),
                red(p99, b99),
                table::us(p999),
                red(p999, b999),
            ]);
        }
        t.separator();
    }
    t.render()
}
