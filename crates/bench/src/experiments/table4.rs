//! Table 4: throughput (Mpps) of CPU-involved flows on mixed I/O flows at
//! ratios 3:1 / 1:1 / 1:3 (CPU-involved : CPU-bypass, 8 flows total),
//! comparing Baseline, CEIO without fast/slow-path optimizations, and full
//! CEIO.
//!
//! Paper shape to reproduce: the involved-dominant case benefits most from
//! credit reallocation (1.53× → 1.94×); the bypass-dominant case benefits
//! most from the ring + async-access optimizations (1.16× → 1.71×); full
//! CEIO beats the unoptimized variant at every ratio.

use crate::runner::{run_jobs, run_one, PolicyKind};
use crate::table::{self, Table};
use crate::workloads::{self, AppKind, Transport};
use ceio_host::RunReport;

const RATIOS: [(u32, u32, &str); 3] = [(6, 2, "3:1"), (4, 4, "1:1"), (2, 6, "1:3")];

/// Run Table 4 and return the formatted report.
pub fn run(quick: bool) -> String {
    let spans = workloads::spans(quick);
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::CeioNoOpt,
        PolicyKind::Ceio,
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::new();
    for &(inv, byp, _) in &RATIOS {
        for &kind in &policies {
            let host = workloads::contended_host(Transport::Dpdk);
            let link = host.net.link_bandwidth;
            let scen = workloads::mixed_flows(inv, byp, 512, link);
            jobs.push(Box::new(move || {
                run_one(
                    host,
                    kind,
                    scen,
                    workloads::app_factory(AppKind::Mixed),
                    spans.warmup,
                    spans.measure,
                )
            }));
        }
    }
    let reports = run_jobs(jobs);

    let mut t = Table::new(
        "Table 4 — CPU-involved throughput (Mpps) on mixed I/O flows",
        &[
            "ratio",
            "Baseline",
            "CEIO w/o opt",
            "(speedup)",
            "CEIO",
            "(speedup)",
        ],
    );
    for (i, &(_, _, label)) in RATIOS.iter().enumerate() {
        let base = reports[i * 3].involved_mpps;
        let noopt = reports[i * 3 + 1].involved_mpps;
        let full = reports[i * 3 + 2].involved_mpps;
        t.row(vec![
            label.to_string(),
            table::f(base, 3),
            table::f(noopt, 3),
            table::speedup(noopt, base),
            table::f(full, 3),
            table::speedup(full, base),
        ]);
    }
    t.render()
}
