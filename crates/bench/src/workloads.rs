//! Standard workload and host configurations shared across experiments.
//!
//! The paper's testbed constants (§2.3/§6.1) with the documented scaling:
//! wall-clock phases of 10 s shrink to milliseconds (every control loop in
//! the system is µs-scale, so phase length only sets observation time);
//! everything else — 200 Gbps, 2 KB buffers, 6 MB DDIO ⇒ 3072 credits,
//! DCTCP — is the paper's configuration.

use ceio_apps::{EchoApp, KvConfig, KvStore, LineFs, LineFsConfig, SinkApp, VxlanDecap};
use ceio_cpu::Application;
use ceio_host::HostConfig;
use ceio_net::{FlowClass, FlowSpec, Scenario};
use ceio_sim::{Bandwidth, Duration, Time};

/// Transport variant for eRPC (§6.1 evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// DPDK (librte_ethdev) datapath.
    Dpdk,
    /// RDMA (libibverbs) datapath: slightly lower per-packet driver cost.
    Rdma,
}

/// Which application consumes each flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// eRPC key-value store (CPU-involved, zero-copy).
    Kv,
    /// LineFS DFS server (CPU-bypass, copy-heavy).
    LineFs,
    /// dperf echo.
    Echo,
    /// VxLAN decap NF.
    Vxlan,
    /// perftest sink (no processing).
    Sink,
    /// Class-dependent: KV for CPU-involved flows, LineFS for CPU-bypass
    /// (the mixed-tenant setup of Figs. 4/10 and Table 4).
    Mixed,
}

/// A thread-portable application factory (jobs construct sims off-thread).
pub type SendAppFactory = Box<dyn FnMut(&FlowSpec) -> Box<dyn Application> + Send>;

/// Build an application factory for a workload.
pub fn app_factory(kind: AppKind) -> SendAppFactory {
    Box::new(move |spec: &FlowSpec| -> Box<dyn Application> {
        let kv = || -> Box<dyn Application> { Box::new(KvStore::new(KvConfig::default())) };
        let linefs = || -> Box<dyn Application> { Box::new(LineFs::new(LineFsConfig::default())) };
        match kind {
            AppKind::Kv => kv(),
            AppKind::LineFs => linefs(),
            AppKind::Echo => Box::new(EchoApp::new()),
            AppKind::Vxlan => Box::new(VxlanDecap::new()),
            AppKind::Sink => Box::new(SinkApp::new()),
            AppKind::Mixed => match spec.class {
                FlowClass::CpuInvolved => kv(),
                FlowClass::CpuBypass => linefs(),
            },
        }
    })
}

/// The contended host configuration: eRPC-scale mempools (16 k buffers per
/// flow) that dwarf the 6 MB DDIO partition, which is what §2.2's
/// pathologies require.
pub fn contended_host(transport: Transport) -> HostConfig {
    let mut cfg = HostConfig {
        ring_entries: 16384,
        ..HostConfig::default()
    };
    if transport == Transport::Rdma {
        // Verbs datapath: descriptor handling is leaner than mbuf+ethdev.
        cfg.cpu.per_packet_overhead = Duration::nanos(15);
    }
    cfg
}

/// Clients split the link evenly (§6.1 saturates the *server*, not the
/// fabric: the host CPU/LLC must be the binding constraint, so offered
/// load matches the link and the switch queue stays clean).
const OVERSUB: (u64, u64) = (1, 1);

/// `n` always-on CPU-involved flows of `pkt_bytes` splitting the link.
pub fn involved_flows(n: u32, pkt_bytes: u64, link: Bandwidth) -> Scenario {
    let mut s = Scenario::new();
    let per = link.scale(OVERSUB.0, OVERSUB.1 * n as u64);
    for i in 0..n {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, pkt_bytes, 1, per),
        );
    }
    s.build()
}

/// `n` always-on CPU-bypass flows writing `chunk_bytes` chunks.
pub fn bypass_flows(n: u32, pkt_bytes: u64, chunk_bytes: u64, link: Bandwidth) -> Scenario {
    let mut s = Scenario::new();
    let per = link.scale(OVERSUB.0, OVERSUB.1 * n as u64);
    let pkts = (chunk_bytes.div_ceil(pkt_bytes)).max(1) as u32;
    for i in 0..n {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuBypass, pkt_bytes, pkts, per),
        );
    }
    s.build()
}

/// Mixed tenancy: `involved` KV flows plus `bypass` DFS flows (1 MB
/// chunks), splitting the link evenly per flow.
pub fn mixed_flows(involved: u32, bypass: u32, pkt_bytes: u64, link: Bandwidth) -> Scenario {
    let total = involved + bypass;
    let per = link.scale(OVERSUB.0, OVERSUB.1 * total as u64);
    let mut s = Scenario::new();
    for i in 0..involved {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, pkt_bytes, 1, per),
        );
    }
    let chunk_pkts = ((1u64 << 20) / 2048) as u32;
    for i in involved..total {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuBypass, 2048, chunk_pkts, per),
        );
    }
    s.build()
}

/// The §2.3 dynamic-flow-distribution scenario at simulation scale:
/// 8 CPU-involved KV flows; every `phase`, two are replaced with LineFS
/// CPU-bypass flows (1 MB chunks).
pub fn dynamic_distribution(phase: Duration, phases: u32, link: Bandwidth) -> Scenario {
    Scenario::dynamic_distribution(
        8,
        2,
        phases,
        phase,
        512,
        2048,
        512,
        link.scale(OVERSUB.0, OVERSUB.1),
    )
}

/// The §2.3 network-burst scenario at simulation scale: 8 CPU-involved
/// flows; every `phase`, two more burst CPU-involved flows arrive.
pub fn network_burst(phase: Duration, phases: u32, link: Bandwidth) -> Scenario {
    Scenario::network_burst(8, 2, phases, phase, 512, link.scale(OVERSUB.0, OVERSUB.1))
}

/// Measurement spans used across experiments.
#[derive(Debug, Clone, Copy)]
pub struct Spans {
    /// Warmup excluded from measurement.
    pub warmup: Duration,
    /// Measured span.
    pub measure: Duration,
}

/// Standard spans: `quick` for CI, full for EXPERIMENTS.md.
pub fn spans(quick: bool) -> Spans {
    if quick {
        Spans {
            warmup: Duration::millis(1),
            measure: Duration::millis(3),
        }
    } else {
        Spans {
            warmup: Duration::millis(2),
            measure: Duration::millis(8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_builder_counts() {
        let s = mixed_flows(6, 2, 512, Bandwidth::gbps(200));
        assert_eq!(s.events.len(), 8);
        let bypass = s
            .events
            .iter()
            .filter(|(_, e)| {
                matches!(e, ceio_net::ScenarioEvent::Start(f) if f.class == FlowClass::CpuBypass)
            })
            .count();
        assert_eq!(bypass, 2);
    }

    #[test]
    fn factories_give_class_matched_apps_in_mixed_mode() {
        let mut fac = app_factory(AppKind::Mixed);
        let inv = FlowSpec::new(0, FlowClass::CpuInvolved, 512, 1, Bandwidth::gbps(25));
        let byp = FlowSpec::new(1, FlowClass::CpuBypass, 2048, 64, Bandwidth::gbps(25));
        assert_eq!(fac(&inv).name(), "erpc-kv");
        assert_eq!(fac(&byp).name(), "linefs");
    }

    #[test]
    fn rdma_transport_lowers_driver_cost() {
        let d = contended_host(Transport::Dpdk);
        let r = contended_host(Transport::Rdma);
        assert!(r.cpu.per_packet_overhead < d.cpu.per_packet_overhead);
    }
}
