//! # ceio-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§2.3 and §6).
//! Each experiment exposes `run(quick) -> String`: it executes the
//! simulations (in parallel across configurations, each simulation
//! single-threaded and deterministic) and returns the formatted rows/series
//! the paper reports. The `ceio-experiments` binary and the `cargo bench`
//! targets are thin wrappers over these functions.
//!
//! `quick = true` shrinks sweeps and measurement spans for CI-speed runs;
//! `quick = false` is what EXPERIMENTS.md records.

pub mod experiments;
pub mod runner;
pub mod table;
pub mod workloads;

pub use runner::{run_jobs, AnyPolicy, PolicyKind};
pub use table::Table;
