//! Plain-text table and series rendering for experiment reports.

use ceio_sim::TimeSeries;
use std::fmt::Write as _;

/// A column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a visual separator row.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(vec![]);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", hdr.join(" | "));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            if row.is_empty() {
                let _ = writeln!(out, "{}", "-".repeat(total));
                continue;
            }
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join(" | "));
        }
        out
    }
}

/// Format a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Format a ratio as the paper's "N.NNx" speedup notation.
pub fn speedup(new: f64, old: f64) -> String {
    if old <= 0.0 {
        return "-".to_string();
    }
    format!("{:.2}x", new / old)
}

/// Format nanoseconds as microseconds with two decimals (table latency).
pub fn us(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1_000.0)
}

/// Render a time series as per-window samples, bucketed to `buckets` means
/// (figures print a handful of points, not every window).
pub fn series_summary(ts: &TimeSeries, buckets: usize) -> String {
    if ts.points.is_empty() {
        return format!("{}: (no samples)", ts.name);
    }
    let per = ts.points.len().div_ceil(buckets.max(1));
    let mut parts = Vec::new();
    for chunk in ts.points.chunks(per) {
        let mean = chunk.iter().map(|&(_, v)| v).sum::<f64>() / chunk.len() as f64;
        let t_end = chunk
            .last()
            .expect("invariant: `chunks()` never yields an empty slice")
            .0;
        parts.push(format!("{:.1}ms:{:.2}", t_end.as_millis_f64(), mean));
    }
    format!("{}: [{}]", ts.name, parts.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceio_sim::Time;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["x".into(), "1".into(), "2".into()]);
        t.separator();
        t.row(vec!["longer-cell".into(), "3".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and data rows align on the separator positions.
        assert_eq!(lines[1].matches('|').count(), 2);
        assert_eq!(lines[3].matches('|').count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn speedup_notation() {
        assert_eq!(speedup(2.0, 1.0), "2.00x");
        assert_eq!(speedup(1.0, 0.0), "-");
    }

    #[test]
    fn series_buckets() {
        let mut ts = TimeSeries::new("x");
        for i in 0..10 {
            ts.push(Time(i * 1_000_000), i as f64);
        }
        let s = series_summary(&ts, 2);
        assert!(s.starts_with("x: ["));
        assert_eq!(s.matches(':').count(), 3); // name + 2 buckets
    }
}
