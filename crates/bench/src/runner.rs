//! Shared run infrastructure: uniform policy dispatch and a parallel job
//! runner.
//!
//! The host machine is generic over its `IoPolicy`; experiments need to
//! sweep policies in one loop, so [`AnyPolicy`] enum-dispatches the four
//! competitors (plus CEIO variants) behind one concrete type. Simulations
//! stay single-threaded and deterministic; parallelism is across
//! independent runs only.

use ceio_baselines::{HostCcConfig, HostCcPolicy, ShRingConfig, ShRingPolicy, UnmanagedPolicy};
use ceio_chaos::FaultPlan;
use ceio_core::{CeioConfig, CeioPolicy};
use ceio_host::{
    run_to_report, AppFactory, DrainRequest, HostConfig, HostState, IoPolicy, Machine, RunReport,
    SteerDecision,
};
use ceio_net::{FlowId, Packet, Scenario};
use ceio_sim::{Duration, Time};

/// Which policy to instantiate for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Unmanaged legacy datapath.
    Baseline,
    /// Reactive host congestion control.
    HostCc,
    /// Fixed shared receive ring.
    ShRing,
    /// Full CEIO.
    Ceio,
    /// CEIO without the fast/slow-path optimizations (Table 4 ablation).
    CeioNoOpt,
    /// CEIO with zero credits: every packet takes the slow path (Fig. 11).
    CeioSlowOnly,
}

impl PolicyKind {
    /// The four head-to-head competitors of Figs. 4/9/10 and Table 2.
    pub const COMPETITORS: [PolicyKind; 4] = [
        PolicyKind::Baseline,
        PolicyKind::HostCc,
        PolicyKind::ShRing,
        PolicyKind::Ceio,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline",
            PolicyKind::HostCc => "HostCC",
            PolicyKind::ShRing => "ShRing",
            PolicyKind::Ceio => "CEIO",
            PolicyKind::CeioNoOpt => "CEIO w/o opt",
            PolicyKind::CeioSlowOnly => "CEIO slow path",
        }
    }

    /// Instantiate the policy for a host configuration.
    pub fn build(self, host: &HostConfig) -> AnyPolicy {
        let ceio = CeioConfig {
            credit_total: host.credit_total(),
            // The credit ledger shards over the same RSS queues as the
            // host's DMA pipeline (hierarchical at num_queues > 1).
            num_queues: host.num_queues,
            ..CeioConfig::default()
        };
        match self {
            PolicyKind::Baseline => AnyPolicy::Baseline(UnmanagedPolicy),
            PolicyKind::HostCc => AnyPolicy::HostCc(HostCcPolicy::new(HostCcConfig::default())),
            PolicyKind::ShRing => {
                // ShRing sizes its ring below the DDIO partition (§2.3) —
                // the model-aware partition, so way sweeps resize it too.
                let entries = (host.mem.ddio_partition_bytes() / host.buf_bytes)
                    .saturating_sub(512)
                    .max(64);
                AnyPolicy::ShRing(ShRingPolicy::new(ShRingConfig {
                    entries,
                    mark_threshold: entries * 7 / 8,
                }))
            }
            PolicyKind::Ceio => AnyPolicy::Ceio(Box::new(CeioPolicy::new(ceio))),
            PolicyKind::CeioNoOpt => {
                AnyPolicy::Ceio(Box::new(CeioPolicy::new(ceio.without_optimizations())))
            }
            PolicyKind::CeioSlowOnly => AnyPolicy::Ceio(Box::new(CeioPolicy::new(CeioConfig {
                credit_total: 0,
                ..ceio
            }))),
        }
    }
}

/// Uniform enum dispatch over the policies under test.
pub enum AnyPolicy {
    /// Unmanaged.
    Baseline(UnmanagedPolicy),
    /// HostCC.
    HostCc(HostCcPolicy),
    /// ShRing.
    ShRing(ShRingPolicy),
    /// CEIO (any configuration). Boxed: with tracing compiled in the
    /// policy is much larger than the other variants, and it is built
    /// once per run, so the indirection is free where it matters.
    Ceio(Box<CeioPolicy>),
}

macro_rules! delegate {
    ($self:ident, $p:ident => $e:expr) => {
        match $self {
            AnyPolicy::Baseline($p) => $e,
            AnyPolicy::HostCc($p) => $e,
            AnyPolicy::ShRing($p) => $e,
            AnyPolicy::Ceio($p) => $e,
        }
    };
}

impl IoPolicy for AnyPolicy {
    fn name(&self) -> &'static str {
        delegate!(self, p => p.name())
    }
    fn on_flow_start(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        delegate!(self, p => p.on_flow_start(st, now, flow))
    }
    fn on_flow_stop(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        delegate!(self, p => p.on_flow_stop(st, now, flow))
    }
    fn steer(&mut self, st: &mut HostState, now: Time, pkt: &Packet) -> SteerDecision {
        delegate!(self, p => p.steer(st, now, pkt))
    }
    fn on_fast_drop(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        delegate!(self, p => p.on_fast_drop(st, now, flow))
    }
    fn on_batch_consumed(
        &mut self,
        st: &mut HostState,
        now: Time,
        flow: FlowId,
        fast: u32,
        slow: u32,
        msgs: u32,
    ) {
        delegate!(self, p => p.on_batch_consumed(st, now, flow, fast, slow, msgs))
    }
    fn on_driver_poll(&mut self, st: &mut HostState, now: Time, flow: FlowId) -> DrainRequest {
        delegate!(self, p => p.on_driver_poll(st, now, flow))
    }
    fn on_slow_arrived(&mut self, st: &mut HostState, now: Time, flow: FlowId, pkts: u32) {
        delegate!(self, p => p.on_slow_arrived(st, now, flow, pkts))
    }
    fn on_controller_poll(&mut self, st: &mut HostState, now: Time) {
        delegate!(self, p => p.on_controller_poll(st, now))
    }
    fn controller_interval(&self) -> Option<Duration> {
        delegate!(self, p => p.controller_interval())
    }
    fn on_queue_failed(&mut self, st: &mut HostState, now: Time, queue: ceio_nic::QueueId) {
        delegate!(self, p => p.on_queue_failed(st, now, queue))
    }
    fn on_queue_recovered(&mut self, st: &mut HostState, now: Time, queue: ceio_nic::QueueId) {
        delegate!(self, p => p.on_queue_recovered(st, now, queue))
    }
    fn fill_metrics(&self, out: &mut ceio_telemetry::SnapshotBuilder) {
        delegate!(self, p => p.fill_metrics(out))
    }
    fn scope_register(&self, rec: &mut ceio_telemetry::FlightRecorder) {
        delegate!(self, p => p.scope_register(rec))
    }
    fn scope_sample(&self, rec: &mut ceio_telemetry::FlightRecorder, now: Time) {
        delegate!(self, p => p.scope_sample(rec, now))
    }
    #[cfg(feature = "trace")]
    fn arm_trace(&mut self, cap: usize) {
        delegate!(self, p => p.arm_trace(cap))
    }
    #[cfg(feature = "chaos")]
    fn arm_chaos(&mut self, st: &mut HostState, plan: &ceio_chaos::FaultPlan) {
        delegate!(self, p => p.arm_chaos(st, plan))
    }
    #[cfg(feature = "trace")]
    fn take_trace(&mut self) -> (Vec<ceio_telemetry::TraceEvent>, u64) {
        delegate!(self, p => p.take_trace())
    }
}

/// Whether fault injection is compiled into this build. CLIs use this to
/// refuse a `--fault-plan` they could only silently ignore.
pub const CHAOS_COMPILED: bool = cfg!(feature = "chaos");

/// One experiment run: build the machine, warm up, measure, report.
pub fn run_one(
    host: HostConfig,
    kind: PolicyKind,
    scenario: Scenario,
    factory: AppFactory,
    warmup: Duration,
    measure: Duration,
) -> RunReport {
    run_one_faulted(host, kind, scenario, factory, warmup, measure, None)
}

/// [`run_one`] with an optional fault plan armed across every machine
/// layer before the run starts. Without the `chaos` feature the plan
/// cannot be applied and is ignored (callers gate on [`CHAOS_COMPILED`]).
pub fn run_one_faulted(
    host: HostConfig,
    kind: PolicyKind,
    scenario: Scenario,
    factory: AppFactory,
    warmup: Duration,
    measure: Duration,
    plan: Option<&FaultPlan>,
) -> RunReport {
    let (report, _sim) = run_one_keep_faulted(host, kind, scenario, factory, warmup, measure, plan);
    report
}

/// Variant of [`run_one`] returning the finished simulation for
/// introspection (controller stats, per-flow counters).
pub fn run_one_keep(
    host: HostConfig,
    kind: PolicyKind,
    scenario: Scenario,
    factory: AppFactory,
    warmup: Duration,
    measure: Duration,
) -> (RunReport, ceio_sim::Simulation<Machine<AnyPolicy>>) {
    run_one_keep_faulted(host, kind, scenario, factory, warmup, measure, None)
}

/// [`run_one_keep`] with an optional fault plan (see [`run_one_faulted`]).
pub fn run_one_keep_faulted(
    host: HostConfig,
    kind: PolicyKind,
    scenario: Scenario,
    factory: AppFactory,
    warmup: Duration,
    measure: Duration,
    plan: Option<&FaultPlan>,
) -> (RunReport, ceio_sim::Simulation<Machine<AnyPolicy>>) {
    run_one_scoped(host, kind, scenario, factory, warmup, measure, plan, None)
}

/// Flight-recorder arming parameters for [`run_one_scoped`].
pub struct ScopeOptions {
    /// Sampling interval in sim time.
    pub interval: Duration,
    /// Ring capacity per recorded series (drop-oldest beyond).
    pub cap: usize,
    /// SLO rules to arm, evaluated each sampling epoch.
    pub slos: Vec<ceio_telemetry::SloRule>,
    /// Also arm the event trace ring at this capacity, so alert fires
    /// land in the trace as `slo-alert` events. Ignored (with the plan
    /// caller gating on the `trace` feature) in trace-less builds.
    pub trace_cap: Option<usize>,
}

/// The full-surface run entry point: optional fault plan, optional armed
/// flight recorder. The finished simulation is returned so callers can
/// read the recorder ([`Machine::scope`]), snapshot metrics, or drain
/// traces after the run.
#[allow(clippy::too_many_arguments)]
pub fn run_one_scoped(
    host: HostConfig,
    kind: PolicyKind,
    scenario: Scenario,
    factory: AppFactory,
    warmup: Duration,
    measure: Duration,
    plan: Option<&FaultPlan>,
    scope: Option<ScopeOptions>,
) -> (RunReport, ceio_sim::Simulation<Machine<AnyPolicy>>) {
    let policy = kind.build(&host);
    let mut sim = Machine::build(host, policy, scenario, factory);
    #[cfg(feature = "chaos")]
    if let Some(p) = plan {
        // The free function also schedules the queue-health watchdog when
        // the plan carries a queue-level fault site.
        ceio_host::arm_chaos(&mut sim, p);
    }
    #[cfg(not(feature = "chaos"))]
    let _ = plan;
    if let Some(s) = scope {
        #[cfg(feature = "trace")]
        if let Some(cap) = s.trace_cap {
            sim.model.arm_trace(cap);
        }
        ceio_host::arm_scope(&mut sim, s.interval, s.cap, s.slos);
    }
    let mut report = run_to_report(&mut sim, warmup, measure);
    report.policy = kind.name().to_string();
    (report, sim)
}

/// Render a report's measurement time series as the `ceio-trace` CSV
/// document (shared by the CLI and the determinism tests so "byte
/// identical CSV" means the real output format).
pub fn series_csv(report: &RunReport) -> String {
    let mut csv =
        String::from("t_ms,involved_mpps,bypass_gbps,llc_miss_rate,fast_gbps,slow_gbps,drops\n");
    let series = [
        &report.involved_mpps_series,
        &report.bypass_gbps_series,
        &report.miss_series,
        &report.fast_gbps_series,
        &report.slow_gbps_series,
        &report.drops_series,
    ];
    let n = series.iter().map(|s| s.points.len()).min().unwrap_or(0);
    for i in 0..n {
        let (t, mpps) = series[0].points[i];
        let (_, gbps) = series[1].points[i];
        let (_, miss) = series[2].points[i];
        let (_, fast) = series[3].points[i];
        let (_, slow) = series[4].points[i];
        let (_, drops) = series[5].points[i];
        csv.push_str(&format!(
            "{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.0}\n",
            t.as_millis_f64(),
            mpps,
            gbps,
            miss,
            fast,
            slow,
            drops
        ));
    }
    csv
}

/// Run independent jobs in parallel (one OS thread each, results returned
/// in job order). Each job constructs and runs its own simulation, so
/// determinism is preserved per job.
pub fn run_jobs<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    let n = jobs.len();
    let results: std::sync::Mutex<Vec<Option<T>>> =
        std::sync::Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for (i, job) in jobs.into_iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let out = job();
                // On Err a sibling panicked while holding the lock; the
                // scope will re-raise that panic, so just drop our result.
                if let Ok(mut slots) = results.lock() {
                    slots[i] = Some(out);
                }
            });
        }
        // `std::thread::scope` joins every thread here and re-raises any
        // job panic, so all result slots are filled on normal exit.
    });
    results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("invariant: job {i} joined without a result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceio_net::{FlowClass, FlowSpec};
    use ceio_sim::Bandwidth;

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::new();
        s.start_at(
            Time::ZERO,
            FlowSpec::new(0, FlowClass::CpuInvolved, 512, 1, Bandwidth::gbps(5)),
        );
        s.build()
    }

    fn echo_factory() -> AppFactory {
        Box::new(|_| Box::new(ceio_apps::EchoApp::new()))
    }

    #[test]
    fn all_policy_kinds_build_and_run() {
        for kind in [
            PolicyKind::Baseline,
            PolicyKind::HostCc,
            PolicyKind::ShRing,
            PolicyKind::Ceio,
            PolicyKind::CeioNoOpt,
            PolicyKind::CeioSlowOnly,
        ] {
            let r = run_one(
                HostConfig::default(),
                kind,
                tiny_scenario(),
                echo_factory(),
                Duration::millis(1),
                Duration::millis(2),
            );
            assert_eq!(r.policy, kind.name());
            assert!(r.involved_mpps > 0.0, "{}: no delivery", kind.name());
        }
    }

    #[test]
    fn slow_only_ceio_uses_slow_path_exclusively() {
        let r = run_one(
            HostConfig::default(),
            PolicyKind::CeioSlowOnly,
            tiny_scenario(),
            echo_factory(),
            Duration::millis(1),
            Duration::millis(2),
        );
        assert!(r.slow_path_pkts > 0);
        assert!(r.fast_path_gbps < 1e-9);
    }

    #[test]
    fn run_jobs_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_jobs(jobs);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }
}
