//! ShRing: networking with shared receive rings (Pismenny et al., OSDI'23).
//!
//! ShRing aggregates all flows' RX buffers into one shared ring sized
//! below the LLC, so in-flight I/O data can never exceed the cache and
//! DDIO never evicts unconsumed packets. The cost (§2.3): the budget is
//! *fixed*. As the ring approaches its capacity the only safety valves are
//! triggering the network CCA (ECN marks) and, at the hard limit, dropping
//! — so ingress rate is repeatedly forced down, and a newly-arrived flow
//! (e.g. a CPU-bypass tenant) consumes budget previously available to
//! CPU-involved flows, throttling them even though the LLC itself is fine.
//!
//! Model note: the paper's artifact implements an actual multi-consumer
//! shared ring; what its evaluation (and CEIO's critique) exercises is the
//! *shared fixed capacity* and its CCA coupling, which this policy
//! enforces exactly — as a global cap across the per-flow rings — while
//! leaving per-ring mechanics to the machine. The paper configures 4096
//! entries against a 12 MB LLC; with this model's explicit 6 MB DDIO
//! partition the same "ring < cache" sizing rule gives 2560 × 2 KB = 5 MB.

use ceio_host::{HostState, IoPolicy, SteerDecision};
use ceio_net::{FlowId, Packet};
use ceio_sim::Time;
use serde::{Deserialize, Serialize};

/// ShRing tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShRingConfig {
    /// Shared ring capacity in entries; `entries × buf_bytes` must stay
    /// below the DDIO-reachable LLC capacity for the scheme to work.
    pub entries: u64,
    /// Occupancy (entries) above which arrivals are ECN-marked to push
    /// senders off before the hard limit.
    pub mark_threshold: u64,
}

impl Default for ShRingConfig {
    fn default() -> Self {
        ShRingConfig {
            entries: 2560,
            mark_threshold: 2560 * 7 / 8,
        }
    }
}

/// ShRing statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct ShRingStats {
    /// Packets admitted unmarked.
    pub admitted: u64,
    /// Packets admitted with a CCA-triggering mark.
    pub marked: u64,
    /// Packets dropped at the hard capacity limit.
    pub dropped: u64,
}

/// The ShRing policy.
pub struct ShRingPolicy {
    cfg: ShRingConfig,
    stats: ShRingStats,
}

impl ShRingPolicy {
    /// A ShRing with the given sizing.
    pub fn new(cfg: ShRingConfig) -> ShRingPolicy {
        ShRingPolicy {
            cfg,
            stats: ShRingStats::default(),
        }
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &ShRingStats {
        &self.stats
    }

    /// The configured capacity.
    pub fn config(&self) -> &ShRingConfig {
        &self.cfg
    }
}

impl IoPolicy for ShRingPolicy {
    fn name(&self) -> &'static str {
        "ShRing"
    }

    fn on_flow_start(&mut self, _: &mut HostState, _: Time, _: FlowId) {}
    fn on_flow_stop(&mut self, _: &mut HostState, _: Time, _: FlowId) {}

    fn steer(&mut self, st: &mut HostState, _now: Time, _pkt: &Packet) -> SteerDecision {
        let outstanding = st.total_ring_outstanding();
        if outstanding >= self.cfg.entries {
            // Shared ring exhausted: unavoidable loss, CCA via drop.
            self.stats.dropped += 1;
            SteerDecision::Drop { loss: true }
        } else if outstanding >= self.cfg.mark_threshold {
            // Near-full: trigger the CCA to avoid the loss (the frequent
            // trigger the paper blames for ShRing's slow ingress rate).
            self.stats.marked += 1;
            SteerDecision::FastPath { mark: true }
        } else {
            self.stats.admitted += 1;
            SteerDecision::FastPath { mark: false }
        }
    }

    fn on_batch_consumed(&mut self, _: &mut HostState, _: Time, _: FlowId, _: u32, _: u32, _: u32) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_stays_below_ddio_partition() {
        let c = ShRingConfig::default();
        assert!(c.entries * 2048 <= 6 << 20, "ring must fit the DDIO slice");
        assert!(c.mark_threshold < c.entries);
    }
}
