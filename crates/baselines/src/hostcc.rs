//! HostCC: reactive host congestion control (Agarwal et al., SIGCOMM'23).
//!
//! Deployed as a kernel module, HostCC samples host congestion signals —
//! IIO buffer occupancy and PCIe bandwidth headroom — at millisecond-free,
//! but still *reactive*, granularity. On congestion it (a) paces the NIC's
//! DMA engine down and (b) triggers the network CCA (DCTCP) by echoing
//! congestion to senders; when the signal clears it releases the throttle
//! multiplicatively.
//!
//! The model preserves the paper's critique (§2.3): the IIO occupancy only
//! rises *after* DDIO evictions have begun saturating DRAM — i.e. after
//! the LLC is already thrashing — so every reaction arrives a detection
//! interval late and the misses in that window are unavoidable.

use ceio_host::{HostState, IoPolicy, SteerDecision};
use ceio_net::{FlowId, Packet};
use ceio_sim::{Bandwidth, Duration, Time};
use serde::{Deserialize, Serialize};

/// HostCC tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostCcConfig {
    /// Signal sampling period of the kernel module. HostCC's reaction can
    /// never be faster than this (its "slow response").
    pub detect_interval: Duration,
    /// IIO occupancy fraction above which congestion is declared.
    pub iio_high: f64,
    /// IIO occupancy fraction below which congestion is cleared.
    pub iio_low: f64,
    /// Sampled-window LLC miss rate above which congestion is declared.
    /// §2.3: HostCC "is triggered by LLC misses because it relies on LLC
    /// congestion signals" — by definition the misses have happened by the
    /// time this fires.
    pub miss_high: f64,
    /// Sampled-window LLC miss rate below which congestion is cleared.
    pub miss_low: f64,
    /// Initial DMA pace installed on first congestion (fraction applied to
    /// the link rate is taken from the host config at runtime).
    pub pace_floor: Bandwidth,
    /// Multiplicative decrease applied to the pace per congested sample
    /// (numerator/denominator).
    pub decrease: (u64, u64),
    /// Multiplicative increase applied per clear sample.
    pub increase: (u64, u64),
}

impl Default for HostCcConfig {
    fn default() -> Self {
        HostCcConfig {
            detect_interval: Duration::micros(50),
            iio_high: 0.50,
            iio_low: 0.10,
            miss_high: 0.05,
            miss_low: 0.01,
            pace_floor: Bandwidth::gbps(40),
            decrease: (4, 5),
            increase: (21, 20),
        }
    }
}

/// HostCC statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct HostCcStats {
    /// Samples that found congestion.
    pub congested_samples: u64,
    /// Samples that found the signal clear.
    pub clear_samples: u64,
    /// Transitions into the congested state.
    pub congestion_events: u64,
}

/// The HostCC policy.
pub struct HostCcPolicy {
    cfg: HostCcConfig,
    congested: bool,
    pace: Option<Bandwidth>,
    last_hits: u64,
    last_misses: u64,
    stats: HostCcStats,
}

impl HostCcPolicy {
    /// A HostCC controller with the given tuning.
    pub fn new(cfg: HostCcConfig) -> HostCcPolicy {
        HostCcPolicy {
            cfg,
            congested: false,
            pace: None,
            last_hits: 0,
            last_misses: 0,
            stats: HostCcStats::default(),
        }
    }

    /// Whether HostCC currently judges the host congested.
    pub fn congested(&self) -> bool {
        self.congested
    }

    /// The currently installed DMA pace, if any.
    pub fn pace(&self) -> Option<Bandwidth> {
        self.pace
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &HostCcStats {
        &self.stats
    }
}

impl IoPolicy for HostCcPolicy {
    fn name(&self) -> &'static str {
        "HostCC"
    }

    fn on_flow_start(&mut self, _: &mut HostState, _: Time, _: FlowId) {}
    fn on_flow_stop(&mut self, _: &mut HostState, _: Time, _: FlowId) {}

    fn steer(&mut self, _st: &mut HostState, _now: Time, _pkt: &Packet) -> SteerDecision {
        // No slow path: everything goes to the legacy datapath. While the
        // module judges the host congested, it triggers the network CCA by
        // echoing congestion marks to the senders.
        SteerDecision::FastPath {
            mark: self.congested,
        }
    }

    fn on_batch_consumed(&mut self, _: &mut HostState, _: Time, _: FlowId, _: u32, _: u32, _: u32) {
    }

    fn on_controller_poll(&mut self, st: &mut HostState, _now: Time) {
        let occ = st.iio_fraction();
        // Sample the LLC miss rate over the last detection window. The
        // stats surface is the `LlcModel` trait's, so the signal is
        // model-agnostic: pool and set-associative runs feed HostCC the
        // same windowed hit/miss deltas.
        let s = st.memctrl.llc.stats();
        let (dh, dm) = (s.hits - self.last_hits, s.misses - self.last_misses);
        self.last_hits = s.hits;
        self.last_misses = s.misses;
        let miss_rate = if dh + dm == 0 {
            0.0
        } else {
            dm as f64 / (dh + dm) as f64
        };
        if occ > self.cfg.iio_high || miss_rate > self.cfg.miss_high {
            if !self.congested {
                self.congested = true;
                self.stats.congestion_events += 1;
            }
            self.stats.congested_samples += 1;
            // Tighten the DMA pace (PCIe-credit / processing-time knob).
            let current = self
                .pace
                .unwrap_or(st.cfg.net.link_bandwidth)
                .scale(self.cfg.decrease.0, self.cfg.decrease.1);
            let floored = if current < self.cfg.pace_floor {
                self.cfg.pace_floor
            } else {
                current
            };
            self.pace = Some(floored);
            st.set_dma_pace(self.pace);
        } else if occ < self.cfg.iio_low && miss_rate < self.cfg.miss_low {
            self.stats.clear_samples += 1;
            self.congested = false;
            // Release the throttle multiplicatively; drop it entirely once
            // it exceeds the link rate.
            if let Some(p) = self.pace {
                let raised = p.scale(self.cfg.increase.0, self.cfg.increase.1);
                self.pace = if raised >= st.cfg.net.link_bandwidth {
                    None
                } else {
                    Some(raised)
                };
                st.set_dma_pace(self.pace);
            }
        }
    }

    fn controller_interval(&self) -> Option<Duration> {
        Some(self.cfg.detect_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reactive_scale() {
        let c = HostCcConfig::default();
        // Detection is an order of magnitude slower than CEIO's proactive
        // per-packet admission (which needs no detection at all).
        assert!(c.detect_interval >= Duration::micros(20));
        assert!(c.iio_high > c.iio_low);
    }

    #[test]
    fn policy_starts_clear() {
        let p = HostCcPolicy::new(HostCcConfig::default());
        assert!(!p.congested());
        assert!(p.pace().is_none());
    }
}
