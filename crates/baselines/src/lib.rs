//! # ceio-baselines — the evaluation's competitive baselines (§2.3, §6.1)
//!
//! * [`HostCcPolicy`] — HostCC (SIGCOMM'23): *reactive* I/O rate control.
//!   A kernel module monitors host congestion signals (IIO buffer
//!   occupancy) and, when congestion is detected, throttles the NIC's DMA
//!   rate and triggers the network CCA. Its fundamental limitation is
//!   *slow response*: the IIO signal only rises once LLC thrashing has
//!   already saturated memory, so the misses it is meant to prevent have
//!   already happened (Fig. 4's up-to-1.9× gap from expected).
//! * [`ShRingPolicy`] — ShRing (OSDI'23): *fixed I/O capacity*. All flows
//!   share one receive ring sized below the LLC, so in-flight I/O data can
//!   never overflow the cache — but the fixed budget forces frequent CCA
//!   triggers (and drops at the hard limit) to avoid loss, slowing the
//!   network ingress rate, especially when newly-arrived bypass flows
//!   consume the shared budget (Fig. 4's up-to-1.6× rate reduction).
//! * The unmanaged legacy datapath ("Baseline" in the figures) is
//!   `ceio_host::UnmanagedPolicy`, re-exported here for one-stop imports.
//! * [`OraclePolicy`] — a non-deployable upper bound that steers by
//!   ground-truth flow class; the CEIO-vs-oracle gap isolates the cost of
//!   CEIO's behavioural inference.

#![warn(missing_docs)]

pub mod hostcc;
pub mod oracle;
pub mod shring;

pub use ceio_host::UnmanagedPolicy;
pub use hostcc::{HostCcConfig, HostCcPolicy};
pub use oracle::OraclePolicy;
pub use shring::{ShRingConfig, ShRingPolicy};
