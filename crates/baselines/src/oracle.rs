//! An oracle upper bound: the steering CEIO *infers* from network
//! behaviour, granted by fiat.
//!
//! The oracle reads each flow's ground-truth class (which no deployable
//! NIC policy can see, §3: tagging raises fairness/security concerns and
//! burdens developers): CPU-involved flows get the whole LLC credit
//! budget, CPU-bypass flows are parked on the elastic slow path outright.
//! The gap between CEIO and the oracle is the cost of *inference* — lazy
//! release plus message-size classification versus perfect knowledge.

use crate::UnmanagedPolicy;
use ceio_core::{CeioConfig, CeioPolicy};
use ceio_host::{DrainRequest, HostState, IoPolicy, SteerDecision};
use ceio_net::{FlowClass, FlowId, Packet};
use ceio_sim::{Duration, Time};

/// The oracle policy: CEIO's machinery, ground-truth steering.
pub struct OraclePolicy {
    inner: CeioPolicy,
}

impl OraclePolicy {
    /// An oracle with CEIO's credit sizing.
    pub fn new(cfg: CeioConfig) -> OraclePolicy {
        OraclePolicy {
            inner: CeioPolicy::new(cfg),
        }
    }
}

impl IoPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn on_flow_start(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        self.inner.on_flow_start(st, now, flow);
    }

    fn on_flow_stop(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        self.inner.on_flow_stop(st, now, flow);
    }

    fn steer(&mut self, st: &mut HostState, now: Time, pkt: &Packet) -> SteerDecision {
        // Ground truth the paper's controller must infer: bypass flows go
        // straight to the elastic buffer, involved flows get the credits.
        let class = st.flows.get(&pkt.flow).map(|f| f.spec.class);
        match class {
            Some(FlowClass::CpuBypass) => {
                let slow_len = st
                    .flows
                    .get(&pkt.flow)
                    .map(|f| f.slow_queue.len())
                    .unwrap_or(0);
                SteerDecision::SlowPath {
                    mark: slow_len > 32,
                }
            }
            Some(FlowClass::CpuInvolved) => self.inner.steer(st, now, pkt),
            None => SteerDecision::Drop { loss: false },
        }
    }

    fn on_fast_drop(&mut self, st: &mut HostState, now: Time, flow: FlowId) {
        self.inner.on_fast_drop(st, now, flow);
    }

    fn on_batch_consumed(
        &mut self,
        st: &mut HostState,
        now: Time,
        flow: FlowId,
        fast: u32,
        slow: u32,
        msgs: u32,
    ) {
        self.inner
            .on_batch_consumed(st, now, flow, fast, slow, msgs);
    }

    fn on_driver_poll(&mut self, st: &mut HostState, now: Time, flow: FlowId) -> DrainRequest {
        self.inner.on_driver_poll(st, now, flow)
    }

    fn on_slow_arrived(&mut self, st: &mut HostState, now: Time, flow: FlowId, pkts: u32) {
        self.inner.on_slow_arrived(st, now, flow, pkts);
    }

    fn on_controller_poll(&mut self, st: &mut HostState, now: Time) {
        self.inner.on_controller_poll(st, now);
    }

    fn controller_interval(&self) -> Option<Duration> {
        self.inner.controller_interval()
    }
}

/// Re-exported for discoverability next to the other references.
pub type Baseline = UnmanagedPolicy;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_wraps_ceio() {
        let o = OraclePolicy::new(CeioConfig::default());
        assert_eq!(o.name(), "Oracle");
        assert!(o.controller_interval().is_some());
    }
}
