//! End-to-end tests of HostCC and ShRing on the host machine, checking
//! that each reproduces both its *benefit* and its *fundamental
//! limitation* from §2.3.

use ceio_baselines::{HostCcConfig, HostCcPolicy, ShRingConfig, ShRingPolicy, UnmanagedPolicy};
use ceio_cpu::{AppWork, Application};
use ceio_host::{run_to_report, AppFactory, HostConfig, IoPolicy, Machine, RunReport};
use ceio_net::{FlowClass, FlowSpec, Packet, Scenario};
use ceio_sim::{Bandwidth, Duration, Time};

struct FixedApp(Duration);
impl Application for FixedApp {
    fn name(&self) -> &str {
        "fixed"
    }
    fn process(&mut self, _: &Packet) -> AppWork {
        AppWork::compute(self.0)
    }
}

fn app(cost_ns: u64) -> AppFactory {
    Box::new(move |_| Box::new(FixedApp(Duration::nanos(cost_ns))))
}

fn thrash_scenario() -> Scenario {
    let mut s = Scenario::new();
    for i in 0..8 {
        s.start_at(
            Time::ZERO,
            FlowSpec::new(i, FlowClass::CpuInvolved, 512, 1, Bandwidth::gbps(25)),
        );
    }
    s.build()
}

fn thrash_cfg() -> HostConfig {
    // eRPC-scale mempools: 16k buffers per flow, far beyond the 6 MB DDIO
    // partition, so the unmanaged baseline thrashes (§2.2).
    HostConfig {
        ring_entries: 16384,
        ..HostConfig::default()
    }
}

fn run<P: IoPolicy>(policy: P, cost_ns: u64) -> RunReport {
    let mut sim = Machine::build(thrash_cfg(), policy, thrash_scenario(), app(cost_ns));
    run_to_report(&mut sim, Duration::millis(2), Duration::millis(5))
}

#[test]
fn hostcc_reacts_and_improves_on_baseline() {
    let base = run(UnmanagedPolicy, 300);
    let mut sim = Machine::build(
        thrash_cfg(),
        HostCcPolicy::new(HostCcConfig::default()),
        thrash_scenario(),
        app(300),
    );
    let hostcc = run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));
    // It must actually have detected congestion and throttled.
    assert!(
        sim.model.policy.stats().congestion_events > 0,
        "IIO signal never fired"
    );
    // Benefit: better cache behaviour than unmanaged.
    assert!(
        hostcc.llc_miss_rate < base.llc_miss_rate,
        "HostCC {} vs baseline {}",
        hostcc.llc_miss_rate,
        base.llc_miss_rate
    );
}

#[test]
fn hostcc_slow_response_leaves_residual_misses() {
    let mut sim = Machine::build(
        thrash_cfg(),
        HostCcPolicy::new(HostCcConfig::default()),
        thrash_scenario(),
        app(300),
    );
    let hostcc = run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));
    // The fundamental limitation: by the time the IIO signal rises the LLC
    // is already thrashing, so HostCC can never reach CEIO's ~0% misses
    // under sustained overload (§2.3 observes ~70% for HostCC).
    assert!(
        hostcc.llc_miss_rate > 0.05,
        "reactive control cannot eliminate misses, got {}",
        hostcc.llc_miss_rate
    );
}

#[test]
fn shring_eliminates_misses_with_fixed_budget() {
    let shring = run(ShRingPolicy::new(ShRingConfig::default()), 300);
    assert!(
        shring.llc_miss_rate < 0.05,
        "ring below LLC must not thrash, got {}",
        shring.llc_miss_rate
    );
}

#[test]
fn shring_triggers_cca_and_drops_at_capacity() {
    let mut sim = Machine::build(
        thrash_cfg(),
        ShRingPolicy::new(ShRingConfig::default()),
        thrash_scenario(),
        app(300),
    );
    run_to_report(&mut sim, Duration::millis(2), Duration::millis(5));
    let stats = sim.model.policy.stats();
    assert!(
        stats.marked > 0,
        "near-full marking must fire under overload"
    );
    // Senders must have been slowed by ECN-triggered reductions.
    let reductions: u64 = sim
        .model
        .st
        .flows
        .values()
        .map(|f| f.cca.stats().ecn_reductions)
        .sum();
    assert!(reductions > 0, "CCA must have been triggered");
}

#[test]
fn shring_outstanding_never_exceeds_capacity() {
    let mut sim = Machine::build(
        thrash_cfg(),
        ShRingPolicy::new(ShRingConfig::default()),
        thrash_scenario(),
        app(300),
    );
    // Step manually, checking the global cap as an invariant.
    let horizon = Time::ZERO + Duration::millis(4);
    let cap = ShRingConfig::default().entries;
    while sim.step(horizon) {
        let outstanding = sim.model.st.total_ring_outstanding();
        assert!(
            outstanding <= cap + 1,
            "shared-ring cap violated: {outstanding} > {cap}"
        );
    }
}

#[test]
fn both_baselines_improve_throughput_over_unmanaged_under_thrash() {
    let base = run(UnmanagedPolicy, 300);
    let hostcc = run(HostCcPolicy::new(HostCcConfig::default()), 300);
    let shring = run(ShRingPolicy::new(ShRingConfig::default()), 300);
    // Fig. 4a: HostCC ~1.3x, ShRing ~1.7x over baseline. We assert the
    // ordering (shape), not the exact factors.
    assert!(
        hostcc.involved_mpps >= base.involved_mpps * 0.95,
        "HostCC {} vs base {}",
        hostcc.involved_mpps,
        base.involved_mpps
    );
    assert!(
        shring.involved_mpps >= base.involved_mpps * 0.95,
        "ShRing {} vs base {}",
        shring.involved_mpps,
        base.involved_mpps
    );
}

#[test]
fn baselines_are_deterministic() {
    let a = run(ShRingPolicy::new(ShRingConfig::default()), 300);
    let b = run(ShRingPolicy::new(ShRingConfig::default()), 300);
    assert_eq!(a.involved_mpps.to_bits(), b.involved_mpps.to_bits());
    let a = run(HostCcPolicy::new(HostCcConfig::default()), 300);
    let b = run(HostCcPolicy::new(HostCcConfig::default()), 300);
    assert_eq!(a.involved_mpps.to_bits(), b.involved_mpps.to_bits());
}
