//! Golden-file tests: the two hand-written exporters (Prometheus text
//! exposition and Chrome trace-event JSON) are compared byte-for-byte
//! against checked-in reference documents.
//!
//! Both emitters are deterministic (insertion-ordered metrics, stable
//! tie-breaking in event merges), so any byte of drift is a real format
//! change. When a change is intentional, regenerate the references with
//!
//! ```text
//! CEIO_GOLDEN_REGEN=1 cargo test -p ceio-telemetry --test golden
//! ```
//!
//! and review the diff like any other code change.

use ceio_sim::{Histogram, Time, TimeSeries};
use ceio_telemetry::{
    chrome_trace_json, json, merge_events, AuditSummary, SnapshotBuilder, TraceEvent, TraceKind,
};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the golden file `name`, or rewrite the file
/// when `CEIO_GOLDEN_REGEN` is set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("CEIO_GOLDEN_REGEN").is_some() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create golden dir");
        }
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n\
             (run with CEIO_GOLDEN_REGEN=1 to create it)",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "{name} diverged from its golden file {}\n\
         (if the format change is intentional, regenerate with \
         CEIO_GOLDEN_REGEN=1 and review the diff)",
        path.display()
    );
}

/// A fixed snapshot exercising every metric shape the builder supports:
/// plain and labeled counters, gauges, a summary with quantiles, a time
/// series, and an attached audit outcome with one violation.
fn fixture_snapshot() -> ceio_telemetry::Snapshot {
    let mut b = SnapshotBuilder::new(Time(4_000_000));
    b.counter(
        "ceio_ingress_admitted_total",
        "Packets admitted at the NIC MAC.",
        1000,
    );
    b.counter(
        "ceio_ingress_dropped_total",
        "Packets dropped at ingress.",
        7,
    );
    b.counter_with(
        "ceio_core_packets_total",
        "Packets consumed per core.",
        &[("core", "0".to_string())],
        640,
    );
    b.counter_with(
        "ceio_core_packets_total",
        "Packets consumed per core.",
        &[("core", "1".to_string())],
        360,
    );
    b.gauge("ceio_llc_miss_rate", "LLC miss rate over the run.", 0.0625);
    b.counter(
        "ceio_sim_events_total",
        "Events dispatched by the simulation engine.",
        48_000,
    );
    b.gauge(
        "ceio_sim_queue_peak",
        "High-water mark of pending events in the engine queue.",
        1536.0,
    );
    b.counter(
        "ceio_sim_timers_cancelled_total",
        "Timers cancelled before dispatch via their TimerToken.",
        230,
    );
    b.gauge_with(
        "ceio_credit_assigned",
        "Credits currently assigned to a flow.",
        &[("flow", "3".to_string())],
        96.0,
    );
    let mut h = Histogram::new();
    for v in 1..=1000u64 {
        h.record(v * 100); // 100 ns .. 100 µs, uniform.
    }
    b.summary("ceio_fast_latency_ns", "Fast-path delivery latency.", &h);
    let mut ts = TimeSeries::new("cpu-involved Mpps");
    ts.push(Time(1_000_000), 1.25);
    ts.push(Time(2_000_000), 2.5);
    ts.push(Time(3_000_000), 2.5);
    b.series(&ts);
    b.audit(AuditSummary {
        events_checked: 5000,
        invariants: vec![
            "credit-conservation".to_string(),
            "phase-exclusivity".to_string(),
        ],
        total_violations: 1,
        violations: vec!["t=1500ns phase-exclusivity: fast delivery during slow phase".to_string()],
    });
    b.finish()
}

/// A fixed event timeline: two recorder streams merged, covering instant
/// markers, a named slow-phase span, substrate (flow-less) DMA traffic,
/// and a drop.
fn fixture_events() -> (Vec<TraceEvent>, u64) {
    let ev = |at: u64, flow: Option<u32>, kind: TraceKind, value: u64| TraceEvent {
        at: Time(at),
        flow,
        kind,
        value,
    };
    let host = vec![
        ev(1_000, Some(0), TraceKind::CreditGrant, 1),
        ev(1_250, Some(0), TraceKind::DmaWriteComplete, 512),
        ev(2_000, Some(0), TraceKind::Delivery, 512),
        ev(3_000, Some(1), TraceKind::CreditDeny, 1),
        ev(3_000, Some(1), TraceKind::RuleRewriteSlow, 0),
        ev(3_000, Some(1), TraceKind::PhaseSlowEnter, 0),
        ev(3_500, Some(1), TraceKind::SlowPark, 512),
        ev(5_000, Some(1), TraceKind::SlowFetch, 8),
        ev(6_200, Some(1), TraceKind::SlowDrain, 512),
        ev(6_200, Some(1), TraceKind::PhaseSlowExit, 0),
        ev(6_200, Some(1), TraceKind::RuleRewriteFast, 2),
        ev(7_000, Some(2), TraceKind::Drop, 1500),
    ];
    let substrate = vec![
        ev(1_100, None, TraceKind::DmaWriteIssue, 512),
        ev(4_900, None, TraceKind::DmaReadIssue, 0),
        ev(5_950, None, TraceKind::DmaReadComplete, 4096),
        ev(3_400, None, TraceKind::OnboardWrite, 512),
    ];
    (merge_events(vec![host, substrate]), 2)
}

#[test]
fn prom_text_matches_golden() {
    check("snapshot.prom", &fixture_snapshot().to_prom_text());
}

#[test]
fn snapshot_json_matches_golden_and_validates() {
    let doc = fixture_snapshot().to_json();
    json::validate(&doc).expect("snapshot JSON must parse");
    check("snapshot.json", &doc);
}

#[test]
fn chrome_trace_matches_golden_and_validates() {
    let (events, dropped) = fixture_events();
    let doc = chrome_trace_json(&events, dropped);
    json::validate(&doc).expect("chrome trace JSON must parse");
    check("trace.json", &doc);
}

#[test]
fn merged_fixture_timeline_is_time_ordered() {
    let (events, _) = fixture_events();
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    // The substrate onboard-write interleaves between the host stream's
    // 3 µs burst and the 3.5 µs park.
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
    let park = kinds
        .iter()
        .position(|k| *k == "slow-park")
        .expect("park present");
    let onboard = kinds
        .iter()
        .position(|k| *k == "onboard-write")
        .expect("onboard present");
    assert!(onboard < park, "merge must interleave recorder streams");
}
