//! The unified metrics registry: one labeled, serializable snapshot.
//!
//! Every component of the simulated host keeps its own `*Stats` struct
//! (RMT, ARM, onboard memory, DMA, LLC, IIO, DRAM, CPU cores, ingress,
//! credits, controller). A [`Snapshot`] aggregates all of them — plus the
//! run's time series and, when armed, the audit report — behind one type
//! with two hand-written exporters:
//!
//! * [`Snapshot::to_prom_text`] — Prometheus text exposition (`# HELP` /
//!   `# TYPE` preambles, labeled samples, summary quantiles), scrapeable
//!   or diffable;
//! * [`Snapshot::to_json`] — a stable JSON document for programmatic
//!   consumption.
//!
//! Serialization is hand-rolled because the workspace builds offline
//! against a no-op `serde` stub; the emitters are small, deterministic
//! (insertion-ordered), and covered by golden-file tests.

use crate::json::{escape, fmt_f64};
use ceio_sim::{Histogram, Time, TimeSeries};
use std::fmt::Write as _;

/// The value of one metric sample.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(f64),
    /// Distribution summary: pre-computed quantiles plus sum and count
    /// (rendered as a Prometheus `summary`).
    Summary {
        /// `(q, value)` pairs in ascending `q` order.
        quantiles: Vec<(f64, u64)>,
        /// Sum of all recorded values.
        sum: u128,
        /// Number of recorded values.
        count: u64,
    },
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Summary { .. } => "summary",
        }
    }

    /// The sample as an integer: the count of a counter, a truncated
    /// gauge, or the observation count of a summary. Convenient for
    /// assertions and report scripts that don't care about the kind.
    pub fn as_u64(&self) -> u64 {
        match self {
            MetricValue::Counter(v) => *v,
            MetricValue::Gauge(v) => *v as u64,
            MetricValue::Summary { count, .. } => *count,
        }
    }
}

/// One metric sample: name, help text, labels, value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Prometheus-style metric name (`ceio_<component>_<what>[_total]`).
    pub name: String,
    /// One-line description (the `# HELP` text).
    pub help: &'static str,
    /// Label pairs, e.g. `[("flow", "3")]`.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: MetricValue,
}

/// Condensed audit outcome carried inside a snapshot (mirrors
/// `ceio_audit::AuditReport` without depending on that crate, keeping the
/// telemetry layer dependency-free for every other crate).
#[derive(Debug, Clone, Default)]
pub struct AuditSummary {
    /// Events the auditor inspected.
    pub events_checked: u64,
    /// Registered invariant names.
    pub invariants: Vec<String>,
    /// Total violations observed (including ones beyond the detail cap).
    pub total_violations: u64,
    /// Rendered violation records (possibly capped).
    pub violations: Vec<String>,
}

/// A complete, self-describing telemetry snapshot of one run.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulated instant the snapshot was taken.
    pub at: Time,
    /// All metric samples, in registration order.
    pub metrics: Vec<Metric>,
    /// Time series captured during the run (measurement windows).
    pub series: Vec<TimeSeries>,
    /// Audit outcome, when an auditor was armed.
    pub audit: Option<AuditSummary>,
}

impl Snapshot {
    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// `# HELP`/`# TYPE` preambles are emitted once per metric name, at
    /// its first occurrence; samples keep registration order, so output
    /// is deterministic and golden-testable. Audit violations, if any,
    /// are appended as comment lines after the samples — armed runs
    /// surface them in every export instead of dropping them.
    pub fn to_prom_text(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        for m in &self.metrics {
            let name = sanitize_metric_name(&m.name);
            if !seen.contains(&name) {
                seen.push(name.clone());
                let _ = writeln!(out, "# HELP {} {}", name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", name, m.value.type_name());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", name, prom_labels(&m.labels, None), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        name,
                        prom_labels(&m.labels, None),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Summary {
                    quantiles,
                    sum,
                    count,
                } => {
                    for (q, v) in quantiles {
                        let _ = writeln!(out, "{}{} {}", name, prom_labels(&m.labels, Some(*q)), v);
                    }
                    let _ = writeln!(out, "{}_sum{} {}", name, prom_labels(&m.labels, None), sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        name,
                        prom_labels(&m.labels, None),
                        count
                    );
                }
            }
        }
        if let Some(a) = &self.audit {
            let _ = writeln!(
                out,
                "# audit: {} invariant(s) checked over {} event(s), {} violation(s)",
                a.invariants.len(),
                a.events_checked,
                a.total_violations
            );
            for v in &a.violations {
                for line in v.lines() {
                    let _ = writeln!(out, "# audit-violation: {line}");
                }
            }
        }
        out
    }

    /// Render the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"at_ns\":{}", self.at.nanos());
        out.push_str(",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"help\":\"{}\",\"type\":\"{}\"",
                escape(&m.name),
                escape(m.help),
                m.value.type_name()
            );
            if !m.labels.is_empty() {
                out.push_str(",\"labels\":{");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
                }
                out.push('}');
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{}", fmt_f64(*v));
                }
                MetricValue::Summary {
                    quantiles,
                    sum,
                    count,
                } => {
                    out.push_str(",\"quantiles\":{");
                    for (j, (q, v)) in quantiles.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{}\":{}", fmt_f64(*q), v);
                    }
                    let _ = write!(out, "}},\"sum\":{sum},\"count\":{count}");
                }
            }
            out.push('}');
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"points\":[", escape(&s.name));
            for (j, (t, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", t.nanos(), fmt_f64(*v));
            }
            out.push_str("]}");
        }
        out.push_str("],\"audit\":");
        match &self.audit {
            None => out.push_str("null"),
            Some(a) => {
                let _ = write!(
                    out,
                    "{{\"events_checked\":{},\"total_violations\":{},\"invariants\":[",
                    a.events_checked, a.total_violations
                );
                for (i, inv) in a.invariants.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", escape(inv));
                }
                out.push_str("],\"violations\":[");
                for (i, v) in a.violations.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", escape(v));
                }
                out.push_str("]}");
            }
        }
        out.push('}');
        out
    }
}

/// Coerce a metric name into the Prometheus exposition grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every character outside that set becomes
/// `_`, and a name whose first character is a digit gains a `_` prefix.
/// Scrapers reject malformed names outright, so a snapshot carrying one
/// stray key (say, a flow tag with a dash) would otherwise poison the
/// whole export. JSON output keeps the original name — only the prom
/// format constrains the alphabet.
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Render a Prometheus label set, optionally with a `quantile` label.
fn prom_labels(labels: &[(String, String)], quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape(v));
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "quantile=\"{}\"", fmt_f64(q));
    }
    out.push('}');
    out
}

/// Incremental [`Snapshot`] construction. Components contribute their
/// counters through one funnel; the builder owns naming discipline.
#[derive(Debug)]
pub struct SnapshotBuilder {
    snap: Snapshot,
}

/// Quantiles exported for every histogram summary.
pub const SUMMARY_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

impl SnapshotBuilder {
    /// A builder for a snapshot taken at `at`.
    pub fn new(at: Time) -> SnapshotBuilder {
        SnapshotBuilder {
            snap: Snapshot {
                at,
                metrics: Vec::new(),
                series: Vec::new(),
                audit: None,
            },
        }
    }

    /// Register an unlabeled counter.
    pub fn counter(&mut self, name: &str, help: &'static str, v: u64) {
        self.counter_with(name, help, &[], v);
    }

    /// Register a labeled counter.
    pub fn counter_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, String)],
        v: u64,
    ) {
        self.snap.metrics.push(Metric {
            name: name.to_string(),
            help,
            labels: own_labels(labels),
            value: MetricValue::Counter(v),
        });
    }

    /// Register an unlabeled gauge.
    pub fn gauge(&mut self, name: &str, help: &'static str, v: f64) {
        self.gauge_with(name, help, &[], v);
    }

    /// Register a labeled gauge.
    pub fn gauge_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, String)],
        v: f64,
    ) {
        self.snap.metrics.push(Metric {
            name: name.to_string(),
            help,
            labels: own_labels(labels),
            value: MetricValue::Gauge(v),
        });
    }

    /// Register a histogram as a summary (p50/p90/p99/p99.9 + sum/count),
    /// using the histogram's single-pass quantile scan.
    pub fn summary(&mut self, name: &str, help: &'static str, h: &Histogram) {
        self.summary_with(name, help, &[], h);
    }

    /// Register a labeled histogram summary.
    pub fn summary_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, String)],
        h: &Histogram,
    ) {
        let values = h.quantiles(&SUMMARY_QUANTILES);
        let quantiles = SUMMARY_QUANTILES.iter().copied().zip(values).collect();
        self.snap.metrics.push(Metric {
            name: name.to_string(),
            help,
            labels: own_labels(labels),
            value: MetricValue::Summary {
                quantiles,
                sum: h.sum(),
                count: h.count(),
            },
        });
    }

    /// Attach a time series (cloned; the live run keeps its own).
    pub fn series(&mut self, s: &TimeSeries) {
        self.snap.series.push(s.clone());
    }

    /// Attach the audit outcome.
    pub fn audit(&mut self, a: AuditSummary) {
        self.snap.audit = Some(a);
    }

    /// Finish building.
    pub fn finish(self) -> Snapshot {
        self.snap
    }
}

fn own_labels(labels: &[(&str, String)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    fn sample() -> Snapshot {
        let mut b = SnapshotBuilder::new(Time(3_000_000));
        b.counter("ceio_dma_writes_total", "Writes issued.", 42);
        b.gauge_with(
            "ceio_flow_credits",
            "Credits currently assigned.",
            &[("flow", "3".to_string())],
            17.0,
        );
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 10);
        }
        b.summary("ceio_fast_latency_ns", "Fast-path delivery latency.", &h);
        let mut ts = TimeSeries::new("cpu-involved Mpps");
        ts.push(Time(1_000), 1.5);
        ts.push(Time(2_000), 2.5);
        b.series(&ts);
        b.finish()
    }

    #[test]
    fn prom_text_has_preambles_and_samples() {
        let text = sample().to_prom_text();
        assert!(text.contains("# HELP ceio_dma_writes_total Writes issued."));
        assert!(text.contains("# TYPE ceio_dma_writes_total counter"));
        assert!(text.contains("ceio_dma_writes_total 42"));
        assert!(text.contains("ceio_flow_credits{flow=\"3\"} 17"));
        assert!(text.contains("ceio_fast_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("ceio_fast_latency_ns_count 100"));
    }

    #[test]
    fn json_is_valid_and_contains_sections() {
        let json = sample().to_json();
        validate(&json).expect("snapshot JSON must parse");
        assert!(json.contains("\"at_ns\":3000000"));
        assert!(json.contains("\"metrics\":["));
        assert!(json.contains("\"series\":["));
        assert!(json.contains("\"audit\":null"));
    }

    #[test]
    fn audit_violations_surface_in_both_exports() {
        let mut b = SnapshotBuilder::new(Time(0));
        b.counter("ceio_audit_violations_total", "Audit violations.", 2);
        b.audit(AuditSummary {
            events_checked: 9,
            invariants: vec!["credit-conservation".to_string()],
            total_violations: 2,
            violations: vec!["t=5ns credit-conservation: Eq. 1 violated".to_string()],
        });
        let s = b.finish();
        let text = s.to_prom_text();
        assert!(text.contains("# audit: 1 invariant(s) checked over 9 event(s), 2 violation(s)"));
        assert!(text.contains("# audit-violation: t=5ns credit-conservation"));
        let json = s.to_json();
        validate(&json).expect("audit JSON must parse");
        assert!(json.contains("\"total_violations\":2"));
    }

    /// Golden pin of the prom exposition's escaping rules: per-queue
    /// labels render as `queue="k"`, label values escape quote, backslash,
    /// and newline, and metric names are coerced into the prom grammar
    /// (spaces/dots/dashes/percent → `_`, leading digit gains a `_`).
    /// Compares the whole rendering so any drift — reordering, added
    /// whitespace, changed escapes — fails loudly.
    #[test]
    fn prom_escaping_and_name_sanitization_golden() {
        let mut b = SnapshotBuilder::new(Time(0));
        b.counter_with(
            "ceio rx.drops-total",
            "Packets dropped.",
            &[("queue", "3".to_string())],
            7,
        );
        b.gauge_with(
            "9p%tile",
            "Name starts with a digit.",
            &[("path", "a\"b\\c\nd".to_string())],
            2.5,
        );
        let got = b.finish().to_prom_text();
        let want = concat!(
            "# HELP ceio_rx_drops_total Packets dropped.\n",
            "# TYPE ceio_rx_drops_total counter\n",
            "ceio_rx_drops_total{queue=\"3\"} 7\n",
            "# HELP _9p_tile Name starts with a digit.\n",
            "# TYPE _9p_tile gauge\n",
            "_9p_tile{path=\"a\\\"b\\\\c\\nd\"} 2.5\n",
        );
        assert_eq!(got, want);
    }

    /// Two distinct raw names that sanitize to the same prom name share
    /// one HELP/TYPE preamble — the dedup runs on the sanitized form, so
    /// the output never repeats a preamble for what scrapers consider a
    /// single metric family.
    #[test]
    fn preamble_dedup_uses_sanitized_names() {
        let mut b = SnapshotBuilder::new(Time(0));
        b.counter("ceio.x", "First.", 1);
        b.counter("ceio-x", "Second.", 2);
        let got = b.finish().to_prom_text();
        assert_eq!(got.matches("# HELP ceio_x").count(), 1);
        assert!(got.contains("ceio_x 1\n"));
        assert!(got.contains("ceio_x 2\n"));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let s = SnapshotBuilder::new(Time(0)).finish();
        assert_eq!(s.to_prom_text(), "");
        validate(&s.to_json()).expect("empty snapshot JSON must parse");
    }
}
