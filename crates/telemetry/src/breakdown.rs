//! Per-flow latency *breakdown*: where a packet's time went on the
//! NIC→LLC path, stage by stage.
//!
//! End-to-end latency alone cannot distinguish the paper's mechanisms —
//! a p99 regression could be credit starvation (§4.1), slow-path
//! residency (§4.2), or plain DMA backpressure. The breakdown splits the
//! path at its architectural seams and gives each [`Stage`] its own
//! [`ceio_sim::Histogram`], both aggregated and per flow.

use ceio_sim::{Duration, Histogram};
use std::collections::BTreeMap;

/// One stage of the NIC→application path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// NIC arrival → DMA issue: time queued on the NIC (staging +
    /// ingress pacing + posted-credit waits).
    NicQueue,
    /// DMA issue → host arrival: PCIe transfer latency.
    Dma,
    /// Host arrival → LLC/DRAM retire: memory-subsystem admission.
    Retire,
    /// Descriptor ready → core poll: time waiting in the SW ring for the
    /// application to pick the packet up.
    RingWait,
    /// NIC arrival → slow-path fetch: residency in on-NIC elastic memory
    /// for packets parked on the slow path (§4.2).
    SlowResidency,
}

impl Stage {
    /// Every stage, in path order.
    pub const ALL: [Stage; 5] = [
        Stage::NicQueue,
        Stage::Dma,
        Stage::Retire,
        Stage::RingWait,
        Stage::SlowResidency,
    ];

    /// Stable snake_case name used in metric labels and summaries.
    pub fn label(self) -> &'static str {
        match self {
            Stage::NicQueue => "nic_queue",
            Stage::Dma => "dma",
            Stage::Retire => "retire",
            Stage::RingWait => "ring_wait",
            Stage::SlowResidency => "slow_residency",
        }
    }
}

/// Per-stage latency histograms for one scope (a flow, or the whole run).
#[derive(Debug, Clone)]
pub struct PathBreakdown {
    stages: [Histogram; 5],
}

impl Default for PathBreakdown {
    fn default() -> Self {
        PathBreakdown::new()
    }
}

impl PathBreakdown {
    /// Empty breakdown with one histogram per stage.
    pub fn new() -> PathBreakdown {
        PathBreakdown {
            // 5 sub-bucket bits ≈ 3% relative precision: plenty for
            // nanosecond stage durations while keeping footprint small.
            stages: [
                Histogram::with_precision(5),
                Histogram::with_precision(5),
                Histogram::with_precision(5),
                Histogram::with_precision(5),
                Histogram::with_precision(5),
            ],
        }
    }

    fn idx(stage: Stage) -> usize {
        match stage {
            Stage::NicQueue => 0,
            Stage::Dma => 1,
            Stage::Retire => 2,
            Stage::RingWait => 3,
            Stage::SlowResidency => 4,
        }
    }

    /// Record one stage duration.
    #[inline]
    pub fn record(&mut self, stage: Stage, d: Duration) {
        self.stages[Self::idx(stage)].record(d.0);
    }

    /// The histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[Self::idx(stage)]
    }

    /// Total samples across all stages.
    pub fn samples(&self) -> u64 {
        self.stages.iter().map(Histogram::count).sum()
    }
}

/// Breakdown for the whole run plus one per observed flow.
#[derive(Debug, Clone, Default)]
pub struct BreakdownSet {
    /// Aggregate across every flow.
    pub total: PathBreakdown,
    /// Per-flow breakdowns, keyed by flow id (BTreeMap: deterministic
    /// iteration for stable exports).
    pub per_flow: BTreeMap<u32, PathBreakdown>,
}

impl BreakdownSet {
    /// Empty set.
    pub fn new() -> BreakdownSet {
        BreakdownSet::default()
    }

    /// Record one stage duration for `flow` (also aggregated into
    /// [`BreakdownSet::total`]; `None` flows aggregate only).
    #[inline]
    pub fn record(&mut self, flow: Option<u32>, stage: Stage, d: Duration) {
        self.total.record(stage, d);
        if let Some(f) = flow {
            self.per_flow.entry(f).or_default().record(stage, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_total_and_per_flow() {
        let mut set = BreakdownSet::new();
        set.record(Some(3), Stage::NicQueue, Duration(100));
        set.record(Some(3), Stage::Dma, Duration(250));
        set.record(Some(5), Stage::NicQueue, Duration(80));
        set.record(None, Stage::Retire, Duration(40));

        assert_eq!(set.total.samples(), 4);
        assert_eq!(set.per_flow.len(), 2);
        let f3 = &set.per_flow[&3];
        assert_eq!(f3.samples(), 2);
        assert_eq!(f3.stage(Stage::NicQueue).count(), 1);
        assert_eq!(f3.stage(Stage::Dma).count(), 1);
        assert_eq!(set.total.stage(Stage::Retire).count(), 1);
    }

    #[test]
    fn stage_labels_are_distinct() {
        let mut labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Stage::ALL.len());
    }
}
