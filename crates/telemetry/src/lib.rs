//! CEIO reproduction — unified telemetry: metrics snapshots + pipeline
//! event tracing.
//!
//! Two pillars, matching the two things a DDIO-interaction reproduction
//! must be able to show:
//!
//! 1. **Metrics registry** ([`Snapshot`], [`SnapshotBuilder`]): one
//!    labeled, serializable aggregation point for every component's
//!    `*Stats` struct and the run's [`ceio_sim::TimeSeries`], exported as
//!    Prometheus text exposition ([`Snapshot::to_prom_text`]) or JSON
//!    ([`Snapshot::to_json`]). Armed audit runs surface their
//!    [`AuditSummary`] here instead of dropping violations on the floor.
//!
//! 2. **Event tracing** ([`TraceEvent`], [`TraceRing`]): bounded
//!    drop-oldest recording of structured pipeline events (credits,
//!    steering rewrites, phase exclusivity, DMA, slow path, drops,
//!    deliveries), exported as Chrome trace-event JSON
//!    ([`chrome_trace_json`]) loadable in Perfetto. On top of the raw
//!    events, [`BreakdownSet`] splits per-flow latency into path stages.
//!
//! This crate deliberately depends only on `ceio-sim`, so every layer
//! (nic, pcie, host, core, bench) can use it without cycles. Recording is
//! opt-in twice over: components hold `Option<TraceRing>` armed at
//! runtime, and the consuming crates gate the hooks behind a `trace`
//! cargo feature so a disabled build compiles them away entirely.

#![warn(missing_docs)]

pub mod breakdown;
pub mod chrome;
pub mod event;
pub mod json;
pub mod scope;
pub mod snapshot;

pub use breakdown::{BreakdownSet, PathBreakdown, Stage};
pub use chrome::chrome_trace_json;
pub use event::{merge_events, Phase, TraceEvent, TraceKind, TraceRing};
pub use scope::{
    render_html, AlertFire, Chart, FlightRecorder, ScopeSeries, SloPredicate, SloRule,
};
pub use snapshot::{
    AuditSummary, Metric, MetricValue, Snapshot, SnapshotBuilder, SUMMARY_QUANTILES,
};
