//! Structured pipeline trace events and the bounded recording ring.
//!
//! A [`TraceEvent`] is one timestamped observation on the NIC→LLC path:
//! a credit decision, a steering-rule rewrite, a phase-exclusivity
//! transition, a DMA issue/completion, a slow-path movement, a drop, or a
//! delivery. Components record into a [`TraceRing`] — a bounded
//! **drop-oldest** buffer (a long run keeps the most recent window instead
//! of aborting or reallocating), with a dropped-record counter so exports
//! are honest about truncation.
//!
//! Recording is designed to be armed at runtime: components hold an
//! `Option<TraceRing>` that is `None` until armed, so an unarmed run costs
//! one pointer-width test per hook. With the `trace` cargo feature disabled
//! in the consuming crates, the hooks themselves compile away entirely.

use ceio_sim::Time;
use std::collections::VecDeque;

/// What happened. Each variant maps to one named Chrome-trace event (see
/// [`crate::chrome`]); the taxonomy mirrors the paper's mechanisms —
/// §4.1 credits, §4.1/Fig. 6 steering, §4.2 phase exclusivity and the
/// slow-path drain — plus the transport substrate (DMA, drops, delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A packet consumed a credit and was admitted to the fast path.
    CreditGrant,
    /// A credit request was denied (the slow-path degradation trigger).
    CreditDeny,
    /// Lazy release at a message boundary (§4.1): `value` = credits
    /// returned by the driver's head-pointer advance.
    CreditLazyRelease,
    /// Returned credits repaid the owed ledger (`value` = amount repaid
    /// to creditors instead of the releasing flow).
    CreditOwed,
    /// An inactive flow's credits were reclaimed into the free pool
    /// (`value` = amount reclaimed).
    CreditReclaim,
    /// Pool credits were granted to a flow (re-activation / re-grant;
    /// `value` = amount granted).
    CreditPoolGrant,
    /// The lease watchdog reclaimed expired grants of a flow whose lazy
    /// release never arrived (`value` = credits reclaimed).
    CreditLeaseReclaim,
    /// An injected fault: a lazy credit-release message was lost in
    /// flight (`value` = credits that failed to return).
    CreditReleaseLost,
    /// An injected fault: a lazy credit-release message was delayed
    /// (`value` = credits held back; a matching late release follows).
    CreditReleaseDelayed,
    /// The flow's RMT rule was rewritten slow→fast (`value` = RX queue).
    RuleRewriteFast,
    /// The flow's RMT rule was rewritten fast→slow.
    RuleRewriteSlow,
    /// Phase exclusivity engaged for a flow: all arrivals divert to the
    /// slow path until the parked backlog drains (§4.2). Span begin.
    PhaseSlowEnter,
    /// Phase exclusivity released: the fast path resumes. Span end.
    PhaseSlowExit,
    /// A posted DMA write was issued NIC→host (`value` = payload bytes).
    DmaWriteIssue,
    /// A DMA write retired in host memory (`value` = payload bytes).
    DmaWriteComplete,
    /// A DMA write could not be issued: no posted-write credit.
    DmaWriteStall,
    /// A non-posted DMA read request was issued host→NIC.
    DmaReadIssue,
    /// A DMA read completion landed at the host (`value` = payload bytes).
    DmaReadComplete,
    /// A DMA read could not be issued: no non-posted-read credit.
    DmaReadStall,
    /// An injected DMA fault or timeout (`value` = payload bytes of the
    /// failed transaction).
    DmaFault,
    /// A failed DMA transaction was rescheduled with backoff
    /// (`value` = backoff nanoseconds).
    DmaRetry,
    /// A DMA transaction exhausted its retry budget and its packet was
    /// dropped (`value` = payload bytes).
    DmaRetryDrop,
    /// Bytes written into on-NIC elastic memory (`value` = bytes).
    OnboardWrite,
    /// Bytes read back out of on-NIC memory toward the host.
    OnboardRead,
    /// A packet was parked on the slow path (`value` = packet bytes).
    SlowPark,
    /// A slow-path fetch batch was issued (`value` = packets fetched).
    SlowFetch,
    /// A slow-path packet was delivered to the application
    /// (`value` = packet bytes).
    SlowDrain,
    /// A packet was dropped on the receive path (`value` = packet bytes).
    Drop,
    /// A fast-path packet was delivered to the application
    /// (`value` = packet bytes).
    Delivery,
    /// The policy entered degraded drop-mode (elastic buffering
    /// unavailable; plain drop-based DDIO). Span begin.
    DegradedEnter,
    /// The policy left degraded mode (hysteresis satisfied). Span end.
    DegradedExit,
    /// An injected host-consumer pause (`value` = pause nanoseconds).
    ConsumerPause,
    /// An injected NIC ARM-core stall (`value` = stall nanoseconds).
    ArmStall,
    /// An injected RMT rule-install delay (`value` = delay nanoseconds).
    RmtDelay,
    /// An armed SLO rule fired at this sampling epoch (`value` = the
    /// rule's index in the armed rule list; see [`crate::scope`]).
    SloAlert,
    /// An injected receive-queue stall (`value` = queue index).
    QueueStall,
    /// An injected receive-queue death (`value` = queue index).
    QueueDeath,
    /// An injected link flap wedging every receive queue (`value` = flap
    /// nanoseconds).
    LinkFlap,
    /// The watchdog marked a no-progress queue Suspect
    /// (`value` = queue index).
    QueueSuspect,
    /// The watchdog failed a queue over: flows re-steer, credits
    /// quarantine (`value` = queue index).
    QueueFailed,
    /// A failed queue's in-flight work finished draining
    /// (`value` = queue index).
    QueueDrained,
    /// A failed queue re-entered service probation (`value` = queue
    /// index).
    QueueRecovering,
    /// A recovering queue proved progress and returned to `Healthy`
    /// (`value` = queue index).
    QueueRecovered,
    /// One flow's RSS steering was rewritten off a failed queue (or back
    /// home on recovery); `value` = the target queue index.
    FlowResteer,
    /// A DMA retire left LLC I/O occupancy above the DDIO partition
    /// capacity (the buffer exceeded what the partition can absorb;
    /// `value` = excess bytes).
    LlcOverCapacity,
}

/// Chrome trace-event phase for a kind: instant, span begin, or span end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A point event (`"ph": "i"`).
    Instant,
    /// A duration-span open (`"ph": "B"`).
    Begin,
    /// A duration-span close (`"ph": "E"`).
    End,
}

impl TraceKind {
    /// Stable event name, as it appears in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::CreditGrant => "credit-grant",
            TraceKind::CreditDeny => "credit-deny",
            TraceKind::CreditLazyRelease => "credit-lazy-release",
            TraceKind::CreditOwed => "credit-owed",
            TraceKind::CreditReclaim => "credit-reclaim",
            TraceKind::CreditPoolGrant => "credit-pool-grant",
            TraceKind::CreditLeaseReclaim => "credit-lease-reclaim",
            TraceKind::CreditReleaseLost => "credit-release-lost",
            TraceKind::CreditReleaseDelayed => "credit-release-delayed",
            TraceKind::RuleRewriteFast => "rule-rewrite-fast",
            TraceKind::RuleRewriteSlow => "rule-rewrite-slow",
            // Enter/exit share one name so they form a single named span
            // in Perfetto's track view.
            TraceKind::PhaseSlowEnter => "slow-phase",
            TraceKind::PhaseSlowExit => "slow-phase",
            TraceKind::DmaWriteIssue => "dma-write-issue",
            TraceKind::DmaWriteComplete => "dma-write-complete",
            TraceKind::DmaWriteStall => "dma-write-stall",
            TraceKind::DmaReadIssue => "dma-read-issue",
            TraceKind::DmaReadComplete => "dma-read-complete",
            TraceKind::DmaReadStall => "dma-read-stall",
            TraceKind::DmaFault => "dma-fault",
            TraceKind::DmaRetry => "dma-retry",
            TraceKind::DmaRetryDrop => "dma-retry-drop",
            TraceKind::OnboardWrite => "onboard-write",
            TraceKind::OnboardRead => "onboard-read",
            TraceKind::SlowPark => "slow-park",
            TraceKind::SlowFetch => "slow-fetch",
            TraceKind::SlowDrain => "slow-drain",
            TraceKind::Drop => "drop",
            TraceKind::Delivery => "delivery",
            // Enter/exit share one name: a single named span in Perfetto.
            TraceKind::DegradedEnter => "degraded-mode",
            TraceKind::DegradedExit => "degraded-mode",
            TraceKind::ConsumerPause => "consumer-pause",
            TraceKind::ArmStall => "arm-stall",
            TraceKind::RmtDelay => "rmt-delay",
            TraceKind::SloAlert => "slo-alert",
            TraceKind::QueueStall => "queue-stall",
            TraceKind::QueueDeath => "queue-death",
            TraceKind::LinkFlap => "link-flap",
            TraceKind::QueueSuspect => "queue-suspect",
            TraceKind::QueueFailed => "queue-failed",
            TraceKind::QueueDrained => "queue-drained",
            TraceKind::QueueRecovering => "queue-recovering",
            TraceKind::QueueRecovered => "queue-recovered",
            TraceKind::FlowResteer => "flow-resteer",
            TraceKind::LlcOverCapacity => "llc-over-capacity",
        }
    }

    /// How this kind renders in a Chrome trace.
    pub fn phase(self) -> Phase {
        match self {
            TraceKind::PhaseSlowEnter | TraceKind::DegradedEnter => Phase::Begin,
            TraceKind::PhaseSlowExit | TraceKind::DegradedExit => Phase::End,
            _ => Phase::Instant,
        }
    }
}

/// One timestamped pipeline observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant of the observation.
    pub at: Time,
    /// The flow involved, if attributable (substrate components such as
    /// the DMA engine see payloads, not flows).
    pub flow: Option<u32>,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific payload (bytes, credits, packets, queue index — see
    /// each [`TraceKind`] variant).
    pub value: u64,
}

/// A bounded drop-oldest ring of trace events.
///
/// The ring never grows past its capacity: pushing into a full ring evicts
/// the oldest record and counts it in [`TraceRing::dropped`]. Capacity is
/// allocated lazily on first push, so an armed-but-silent recorder costs a
/// few words.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            buf: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Record one event, evicting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    /// Number of events currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted because the ring was full.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discard all held events (the dropped counter is kept: truncation
    /// already happened and stays reportable).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// Merge event streams from several recorders into one timeline, ordered
/// by timestamp (ties keep the input order: earlier parts first, and each
/// part's own order within — `sort_by_key` is stable).
pub fn merge_events(parts: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = parts.into_iter().flatten().collect();
    all.sort_by_key(|e| e.at);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Time(at),
            flow: Some(1),
            kind,
            value: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = TraceRing::new(3);
        for i in 0..5u64 {
            r.push(ev(i, TraceKind::Delivery));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let held: Vec<u64> = r.events().iter().map(|e| e.at.0).collect();
        assert_eq!(held, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let mut r = TraceRing::new(0);
        r.push(ev(1, TraceKind::Drop));
        r.push(ev(2, TraceKind::Drop));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.capacity(), 1);
    }

    #[test]
    fn merge_orders_by_time_stably() {
        let a = vec![ev(5, TraceKind::CreditGrant), ev(9, TraceKind::Drop)];
        let b = vec![ev(5, TraceKind::CreditDeny), ev(1, TraceKind::Delivery)];
        let m = merge_events(vec![a, b]);
        let kinds: Vec<TraceKind> = m.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Delivery,
                TraceKind::CreditGrant, // ties: part a before part b
                TraceKind::CreditDeny,
                TraceKind::Drop,
            ]
        );
    }

    #[test]
    fn clear_keeps_dropped_counter() {
        let mut r = TraceRing::new(1);
        r.push(ev(1, TraceKind::Drop));
        r.push(ev(2, TraceKind::Drop));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn phase_mapping() {
        assert_eq!(TraceKind::PhaseSlowEnter.phase(), Phase::Begin);
        assert_eq!(TraceKind::PhaseSlowExit.phase(), Phase::End);
        assert_eq!(TraceKind::Delivery.phase(), Phase::Instant);
        assert_eq!(
            TraceKind::PhaseSlowEnter.label(),
            TraceKind::PhaseSlowExit.label()
        );
    }
}
