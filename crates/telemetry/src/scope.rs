//! `ceio-scope`: the sim-time flight recorder, SLO/alert engine, and
//! paper-figure report renderer.
//!
//! The CEIO paper argues with *time series* — LLC I/O occupancy climbing
//! past the DDIO capacity, goodput collapsing and recovering, slow-path
//! backlog draining under phase exclusivity — while the metrics registry
//! ([`crate::Snapshot`]) only captures end-of-run aggregates. This module
//! closes that gap with three pieces:
//!
//! 1. **[`FlightRecorder`]** — an epoch-driven sampler. The host machine
//!    schedules a scope tick every `interval` of *simulated* time; each
//!    tick records one point per registered gauge into a bounded
//!    drop-oldest ring (a long run keeps the most recent window, with an
//!    honest evicted-point counter). Gauges are either level samples
//!    ([`FlightRecorder::record`]), per-queue level samples
//!    ([`FlightRecorder::record_queue`]), or windowed deltas derived from
//!    lifetime totals ([`FlightRecorder::record_rate`],
//!    [`FlightRecorder::record_ratio`]). All bookkeeping is
//!    insertion-ordered or `BTreeMap`-keyed, so exports are deterministic
//!    and two identically-seeded processes emit byte-identical documents.
//!
//! 2. **[`SloRule`]** — declarative threshold+duration alerting evaluated
//!    in sim time. Rules parse from a `key=value` spec (the grammar the
//!    chaos fault plans use): `alert=llc-over,when=llc_occupancy_bytes,`
//!    `above=ddio_capacity_bytes,for=50us`. A rule whose predicate holds
//!    continuously for its `for=` duration fires once, stays `active`
//!    until the predicate clears, and is exported as
//!    `ceio_alert_fired_total`/`ceio_alert_active` samples.
//!
//! 3. **Reporting** — [`FlightRecorder::to_csv`] (wide, one column per
//!    gauge), snapshot integration via [`FlightRecorder::fill_metrics`]
//!    (alert counters plus every series in the JSON export), and
//!    [`render_html`]: a self-contained HTML document with inline SVG
//!    charts (no external assets) reproducing the paper-style
//!    occupancy-over-time and goodput-over-time figures.

use crate::json::fmt_f64;
use crate::snapshot::SnapshotBuilder;
use ceio_sim::{Duration, Time, TimeSeries};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// One bounded, ring-buffered time series of a sampled gauge.
#[derive(Debug, Clone)]
pub struct ScopeSeries {
    /// Series key (CSV column header; per-queue keys are `base.qN`).
    pub key: String,
    /// One-line description, carried into chart legends and help text.
    pub help: &'static str,
    points: VecDeque<(Time, f64)>,
    cap: usize,
    dropped: u64,
}

impl ScopeSeries {
    fn new(key: String, help: &'static str, cap: usize) -> ScopeSeries {
        ScopeSeries {
            key,
            help,
            points: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, at: Time, v: f64) {
        if self.points.len() >= self.cap {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back((at, v));
    }

    /// Samples currently held, oldest first.
    pub fn points(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<(Time, f64)> {
        self.points.back().copied()
    }

    /// Points evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Comparison threshold of an SLO predicate: a literal level or another
/// recorded series (compared point-for-point at each epoch).
#[derive(Debug, Clone, PartialEq)]
pub enum Threshold {
    /// A fixed literal level.
    Value(f64),
    /// The latest sample of another scope series.
    Series(String),
}

/// The breach condition of an [`SloRule`], evaluated once per epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum SloPredicate {
    /// Breaching while the watched value exceeds the threshold.
    Above(Threshold),
    /// Breaching while the watched value is under the threshold.
    Below(Threshold),
    /// Breaching while the watched value does not change between epochs
    /// (a recovery counter staying silent under injected faults).
    Silent,
}

/// One declarative threshold+duration alert rule.
///
/// Grammar (rules separated by `;`, fields by `,`):
///
/// ```text
/// alert=<name>,when=<series>,above=<level|series>,for=<dur>
/// alert=<name>,when=<series>,below=<level|series>,for=<dur>
/// alert=<name>,when=<series>,silent,for=<dur>
/// ```
///
/// Durations use the chaos-plan grammar: `ns`, `us`, `ms` suffixes or
/// bare nanoseconds. `for=0` (the default) fires on the first breaching
/// epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Alert name, used as the `alert` label of the exported counters.
    pub alert: String,
    /// Key of the watched scope series.
    pub when: String,
    /// Breach condition.
    pub pred: SloPredicate,
    /// How long the predicate must hold continuously before firing.
    pub hold: Duration,
}

/// Parse a duration literal: `500ns`, `20us`, `1ms`, or bare nanoseconds
/// (the chaos fault-plan grammar).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else {
        (s, 1)
    };
    match digits.parse::<u64>() {
        Ok(v) => Ok(Duration::nanos(v.saturating_mul(mult))),
        Err(_) => Err(format!("bad duration {s:?} (want e.g. 500ns, 20us, 1ms)")),
    }
}

fn parse_threshold(s: &str) -> Result<Threshold, String> {
    if s.is_empty() {
        return Err("empty threshold".to_string());
    }
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Threshold::Value(v)),
        _ => Ok(Threshold::Series(s.to_string())),
    }
}

impl SloRule {
    /// Parse a whole `--slo` spec (one or more `;`-separated rules).
    pub fn parse_spec(spec: &str) -> Result<Vec<SloRule>, String> {
        let mut rules = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            rules.push(SloRule::parse_one(part)?);
        }
        if rules.is_empty() {
            return Err("SLO spec contains no rules".to_string());
        }
        let mut names = BTreeSet::new();
        for r in &rules {
            if !names.insert(r.alert.clone()) {
                return Err(format!("duplicate alert name {:?}", r.alert));
            }
        }
        Ok(rules)
    }

    fn parse_one(part: &str) -> Result<SloRule, String> {
        let mut alert = None;
        let mut when = None;
        let mut pred: Option<SloPredicate> = None;
        let mut hold = Duration::ZERO;
        for field in part.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = match field.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => (field, ""),
            };
            let set_pred = |slot: &mut Option<SloPredicate>, p| {
                if slot.is_some() {
                    return Err(format!("rule {part:?}: more than one predicate"));
                }
                *slot = Some(p);
                Ok(())
            };
            match key {
                "alert" => alert = Some(value.to_string()),
                "when" => when = Some(value.to_string()),
                "above" => set_pred(&mut pred, SloPredicate::Above(parse_threshold(value)?))?,
                "below" => set_pred(&mut pred, SloPredicate::Below(parse_threshold(value)?))?,
                "silent" => set_pred(&mut pred, SloPredicate::Silent)?,
                "for" => hold = parse_duration(value)?,
                other => {
                    return Err(format!(
                        "rule {part:?}: unknown field {other:?} \
                         (want alert/when/above/below/silent/for)"
                    ))
                }
            }
        }
        let alert = alert.filter(|a| !a.is_empty()).ok_or_else(|| {
            format!("rule {part:?}: missing alert=<name> (names the exported counter)")
        })?;
        let when = when
            .filter(|w| !w.is_empty())
            .ok_or_else(|| format!("rule {part:?}: missing when=<series> (the watched gauge)"))?;
        let pred =
            pred.ok_or_else(|| format!("rule {part:?}: missing a predicate (above/below/silent)"))?;
        Ok(SloRule {
            alert,
            when,
            pred,
            hold,
        })
    }
}

/// Live evaluation state of one armed [`SloRule`].
#[derive(Debug, Clone)]
struct SloState {
    rule: SloRule,
    /// Start of the current uninterrupted breach, if any.
    breach_since: Option<Time>,
    /// Whether the alert is currently firing.
    active: bool,
    /// Lifetime fire count (breach held past `for=` transitions).
    fired: u64,
    /// Watched value at the previous epoch (for `silent`).
    last_value: Option<f64>,
}

/// One alert transition reported by [`FlightRecorder::end_epoch`] so the
/// host can emit a structured trace event at the firing instant.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertFire {
    /// Index of the rule in the armed rule list.
    pub rule: usize,
    /// Alert name.
    pub alert: String,
    /// Watched value at the firing epoch.
    pub value: f64,
}

/// The epoch-driven flight recorder: bounded time series of sampled
/// gauges plus the armed SLO rules evaluated against them.
#[derive(Debug)]
pub struct FlightRecorder {
    interval: Duration,
    cap: usize,
    series: Vec<ScopeSeries>,
    index: BTreeMap<String, usize>,
    /// Previous lifetime totals for windowed-delta gauges, keyed by the
    /// composed series key (numerator, denominator).
    last_totals: BTreeMap<String, (f64, f64)>,
    slos: Vec<SloState>,
    samples: u64,
}

impl FlightRecorder {
    /// A recorder sampling every `interval` of sim time, holding at most
    /// `cap` points per series (drop-oldest beyond that).
    pub fn new(interval: Duration, cap: usize) -> FlightRecorder {
        FlightRecorder {
            interval: Duration::nanos(interval.as_nanos().max(1)),
            cap: cap.max(1),
            series: Vec::new(),
            index: BTreeMap::new(),
            last_totals: BTreeMap::new(),
            slos: Vec::new(),
            samples: 0,
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Epochs sampled so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Arm SLO rules (replacing any armed before).
    pub fn arm_slos(&mut self, rules: Vec<SloRule>) {
        self.slos = rules
            .into_iter()
            .map(|rule| SloState {
                rule,
                breach_since: None,
                active: false,
                fired: 0,
                last_value: None,
            })
            .collect();
    }

    /// Declare a gauge up front, fixing its CSV column position. Idempotent;
    /// re-registering keeps the first help text.
    pub fn register(&mut self, key: &str, help: &'static str) {
        if !self.index.contains_key(key) {
            self.index.insert(key.to_string(), self.series.len());
            self.series
                .push(ScopeSeries::new(key.to_string(), help, self.cap));
        }
    }

    /// Declare one gauge per receive queue (`key.q0` .. `key.qN-1`).
    pub fn register_queue(&mut self, key: &str, help: &'static str, num_queues: usize) {
        for q in 0..num_queues.max(1) {
            self.register(&queue_key(key, q), help);
        }
    }

    fn series_mut(&mut self, key: &str, help: &'static str) -> &mut ScopeSeries {
        let idx = match self.index.get(key) {
            Some(&i) => i,
            None => {
                // Unregistered keys self-register (at the end of the column
                // order) rather than dropping data; the analyze gate keeps
                // registration and sampling in sync statically.
                self.index.insert(key.to_string(), self.series.len());
                self.series
                    .push(ScopeSeries::new(key.to_string(), help, self.cap));
                self.series.len() - 1
            }
        };
        &mut self.series[idx]
    }

    /// Record a level sample of gauge `key` at `now`.
    pub fn record(&mut self, key: &str, now: Time, v: f64) {
        self.series_mut(key, "").push(now, v);
    }

    /// Record a level sample of the per-queue gauge `key` for queue `q`.
    pub fn record_queue(&mut self, key: &str, q: usize, now: Time, v: f64) {
        self.record(&queue_key(key, q), now, v);
    }

    /// Record a windowed per-second rate derived from a lifetime total:
    /// the sampled value is `(total - previous_total) / interval_secs`.
    /// A total that shrank (measurement reset at warmup end) restarts the
    /// baseline, Prometheus `rate()` style. The first observation
    /// establishes the baseline and samples zero.
    pub fn record_rate(&mut self, key: &str, now: Time, total: f64) {
        let secs = self.interval.as_secs_f64();
        let last = self.last_totals.insert(key.to_string(), (total, 0.0));
        let delta = match last {
            Some((prev, _)) if total >= prev => total - prev,
            Some(_) => total, // counter reset
            None => 0.0,
        };
        self.record(key, now, delta / secs);
    }

    /// Record a windowed ratio of two lifetime totals: the sampled value
    /// is `Δnum / (Δnum + Δden)` over the epoch (zero when both deltas
    /// are zero). Used for e.g. the per-epoch LLC miss rate from lifetime
    /// hit/miss totals.
    pub fn record_ratio(&mut self, key: &str, now: Time, num_total: f64, den_total: f64) {
        let last = self
            .last_totals
            .insert(key.to_string(), (num_total, den_total));
        let (dn, dd) = match last {
            Some((pn, pd)) if num_total >= pn && den_total >= pd => {
                (num_total - pn, den_total - pd)
            }
            Some(_) => (num_total, den_total), // counter reset
            None => (0.0, 0.0),
        };
        let v = if dn + dd > 0.0 { dn / (dn + dd) } else { 0.0 };
        self.record(key, now, v);
    }

    /// Record a windowed mean of two lifetime totals: the sampled value is
    /// `Δsum / Δcount` over the epoch (zero when nothing happened). Used
    /// for e.g. the per-epoch mean eviction age from lifetime
    /// age-sum/eviction totals.
    pub fn record_mean(&mut self, key: &str, now: Time, sum_total: f64, count_total: f64) {
        let last = self
            .last_totals
            .insert(key.to_string(), (sum_total, count_total));
        let (ds, dc) = match last {
            Some((ps, pc)) if sum_total >= ps && count_total >= pc => {
                (sum_total - ps, count_total - pc)
            }
            Some(_) => (sum_total, count_total), // counter reset
            None => (0.0, 0.0),
        };
        let v = if dc > 0.0 { ds / dc } else { 0.0 };
        self.record(key, now, v);
    }

    fn latest_of(&self, key: &str) -> Option<f64> {
        self.index
            .get(key)
            .and_then(|&i| self.series[i].latest())
            .map(|(_, v)| v)
    }

    /// Close the sampling epoch at `now`: evaluate every armed SLO rule
    /// against the freshly recorded samples and return the alerts that
    /// transitioned to firing at this epoch.
    pub fn end_epoch(&mut self, now: Time) -> Vec<AlertFire> {
        self.samples += 1;
        let mut fires = Vec::new();
        for i in 0..self.slos.len() {
            let watched = self
                .index
                .get(&self.slos[i].rule.when)
                .and_then(|&s| self.series[s].latest())
                .map(|(_, v)| v);
            let threshold = match &self.slos[i].rule.pred {
                SloPredicate::Above(t) | SloPredicate::Below(t) => match t {
                    Threshold::Value(v) => Some(*v),
                    Threshold::Series(key) => self.latest_of(key),
                },
                SloPredicate::Silent => None,
            };
            let st = &mut self.slos[i];
            let breach = match (&st.rule.pred, watched) {
                (_, None) => false,
                (SloPredicate::Above(_), Some(v)) => threshold.is_some_and(|t| v > t),
                (SloPredicate::Below(_), Some(v)) => threshold.is_some_and(|t| v < t),
                (SloPredicate::Silent, Some(v)) => {
                    let unchanged = st.last_value.is_some_and(|prev| prev == v);
                    st.last_value = Some(v);
                    unchanged
                }
            };
            if breach {
                let since = *st.breach_since.get_or_insert(now);
                if !st.active && now.since(since) >= st.rule.hold {
                    st.active = true;
                    st.fired += 1;
                    fires.push(AlertFire {
                        rule: i,
                        alert: st.rule.alert.clone(),
                        value: watched.unwrap_or(0.0),
                    });
                }
            } else {
                st.breach_since = None;
                st.active = false;
            }
        }
        fires
    }

    /// Lifetime alert fires across every rule.
    pub fn total_fired(&self) -> u64 {
        self.slos.iter().map(|s| s.fired).sum()
    }

    /// `(alert name, fires, currently active)` per armed rule.
    pub fn alert_states(&self) -> Vec<(String, u64, bool)> {
        self.slos
            .iter()
            .map(|s| (s.rule.alert.clone(), s.fired, s.active))
            .collect()
    }

    /// All recorded series, in registration order.
    pub fn all_series(&self) -> &[ScopeSeries] {
        &self.series
    }

    /// Look up one series by key.
    pub fn series(&self, key: &str) -> Option<&ScopeSeries> {
        self.index.get(key).map(|&i| &self.series[i])
    }

    /// Points evicted across every series (ring-overflow truncation).
    pub fn points_dropped(&self) -> u64 {
        self.series.iter().map(|s| s.dropped).sum()
    }

    /// Contribute the recorder's state to a metrics snapshot: scope
    /// bookkeeping counters, per-alert `ceio_alert_*` samples, and every
    /// recorded series (named `scope:<key>` in the JSON export).
    pub fn fill_metrics(&self, b: &mut SnapshotBuilder) {
        b.gauge(
            "ceio_scope_interval_ns",
            "Flight-recorder sampling interval in simulated nanoseconds.",
            self.interval.as_nanos() as f64,
        );
        b.counter(
            "ceio_scope_samples_total",
            "Sampling epochs recorded by the flight recorder.",
            self.samples,
        );
        b.gauge(
            "ceio_scope_series",
            "Time series the flight recorder is tracking.",
            self.series.len() as f64,
        );
        b.counter(
            "ceio_scope_points_dropped_total",
            "Scope samples evicted by ring-buffer overflow.",
            self.points_dropped(),
        );
        b.counter(
            "ceio_alerts_fired_total",
            "SLO alert fires across every armed rule.",
            self.total_fired(),
        );
        for s in &self.slos {
            let lbl = [("alert", s.rule.alert.clone())];
            b.counter_with(
                "ceio_alert_fired_total",
                "Times this SLO rule transitioned to firing.",
                &lbl,
                s.fired,
            );
            b.gauge_with(
                "ceio_alert_active",
                "Whether this SLO rule is currently firing (1) or not (0).",
                &lbl,
                if s.active { 1.0 } else { 0.0 },
            );
        }
        for s in &self.series {
            let mut ts = TimeSeries::new(format!("scope:{}", s.key));
            for (t, v) in s.points() {
                ts.push(t, v);
            }
            b.series(&ts);
        }
    }

    /// Render every series as a wide CSV document: `t_ns` plus one column
    /// per gauge in registration order. Rows cover the union of sample
    /// instants; a series with no point at an instant leaves its cell
    /// empty. Output is deterministic (byte-identical across processes
    /// for identical runs).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.key);
        }
        out.push('\n');
        let mut instants: BTreeSet<Time> = BTreeSet::new();
        for s in &self.series {
            instants.extend(s.points().map(|(t, _)| t));
        }
        // Per-series cursor: points are chronological, so one forward
        // sweep suffices (no per-cell search).
        let mut cursors: Vec<std::iter::Peekable<_>> =
            self.series.iter().map(|s| s.points().peekable()).collect();
        for t in instants {
            let _ = write!(out, "{}", t.nanos());
            for c in cursors.iter_mut() {
                out.push(',');
                if let Some(&(pt, v)) = c.peek() {
                    if pt == t {
                        out.push_str(&fmt_f64(v));
                        c.next();
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Assemble a chart over the given series keys (missing keys are
    /// skipped so report generation never fails on a sparse run).
    pub fn chart(&self, title: &str, y_label: &str, keys: &[&str]) -> Chart {
        Chart {
            title: title.to_string(),
            y_label: y_label.to_string(),
            series: keys
                .iter()
                .filter_map(|k| self.series(k))
                .map(|s| (s.key.clone(), s.points().collect()))
                .collect(),
        }
    }
}

/// Compose the per-queue variant of a series key.
fn queue_key(key: &str, q: usize) -> String {
    format!("{key}.q{q}")
}

/// One chart of the HTML report: a titled set of labeled curves sharing
/// axes.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Chart heading.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// `(label, points)` curves.
    pub series: Vec<(String, Vec<(Time, f64)>)>,
}

/// Escape text for embedding in HTML.
fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Curve palette (SVG stroke colors), cycled per chart.
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

const SVG_W: f64 = 720.0;
const SVG_H: f64 = 260.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 14.0;
const MARGIN_B: f64 = 34.0;

fn render_chart_svg(out: &mut String, chart: &Chart) {
    let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut v_min, mut v_max) = (0.0f64, f64::NEG_INFINITY);
    for (_, pts) in &chart.series {
        for &(t, v) in pts {
            let tm = t.nanos() as f64 / 1e6; // milliseconds
            t_min = t_min.min(tm);
            t_max = t_max.max(tm);
            v_min = v_min.min(v);
            v_max = v_max.max(v);
        }
    }
    if !t_min.is_finite() || !v_max.is_finite() {
        out.push_str("<p class=\"empty\">no samples</p>\n");
        return;
    }
    if t_max <= t_min {
        t_max = t_min + 1.0;
    }
    if v_max <= v_min {
        v_max = v_min + 1.0;
    }
    v_max *= 1.05;
    let plot_w = SVG_W - MARGIN_L - MARGIN_R;
    let plot_h = SVG_H - MARGIN_T - MARGIN_B;
    let x = |tm: f64| MARGIN_L + (tm - t_min) / (t_max - t_min) * plot_w;
    let y = |v: f64| MARGIN_T + (1.0 - (v - v_min) / (v_max - v_min)) * plot_h;

    let _ = writeln!(
        out,
        "<svg viewBox=\"0 0 {SVG_W} {SVG_H}\" width=\"{SVG_W}\" height=\"{SVG_H}\" \
         role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">"
    );
    // Plot frame.
    let _ = writeln!(
        out,
        "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w:.1}\" height=\"{plot_h:.1}\" \
         fill=\"none\" stroke=\"#999\"/>"
    );
    // Axis ticks and grid lines (5 x, 4 y).
    for i in 0..=4u32 {
        let f = f64::from(i) / 4.0;
        let tm = t_min + f * (t_max - t_min);
        let xp = x(tm);
        let _ = write!(
            out,
            "<line x1=\"{xp:.1}\" y1=\"{MARGIN_T}\" x2=\"{xp:.1}\" y2=\"{:.1}\" \
             stroke=\"#eee\"/>\n<text x=\"{xp:.1}\" y=\"{:.1}\" text-anchor=\"middle\" \
             font-size=\"10\">{tm:.2}</text>\n",
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 14.0,
        );
    }
    for i in 0..=3u32 {
        let f = f64::from(i) / 3.0;
        let v = v_min + f * (v_max - v_min);
        let yp = y(v);
        let _ = write!(
            out,
            "<line x1=\"{MARGIN_L}\" y1=\"{yp:.1}\" x2=\"{:.1}\" y2=\"{yp:.1}\" \
             stroke=\"#eee\"/>\n<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" \
             font-size=\"10\">{v:.2}</text>\n",
            MARGIN_L + plot_w,
            MARGIN_L - 6.0,
            yp + 3.0,
        );
    }
    // Axis labels.
    let _ = write!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"11\">t (ms)</text>\n\
         <text x=\"12\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"11\" \
         transform=\"rotate(-90 12 {:.1})\">{}</text>\n",
        MARGIN_L + plot_w / 2.0,
        SVG_H - 4.0,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        html_escape(&chart.y_label),
    );
    // Curves.
    for (i, (label, pts)) in chart.series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for &(t, v) in pts {
            if !path.is_empty() {
                path.push(' ');
            }
            let _ = write!(path, "{:.1},{:.1}", x(t.nanos() as f64 / 1e6), y(v));
        }
        let _ = writeln!(
            out,
            "<polyline points=\"{path}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>"
        );
        // Legend row (top-right corner of the plot).
        let ly = MARGIN_T + 12.0 + 13.0 * i as f64;
        let _ = write!(
            out,
            "<line x1=\"{:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" \
             stroke=\"{color}\" stroke-width=\"2\"/>\n<text x=\"{:.1}\" y=\"{:.1}\" \
             font-size=\"10\">{}</text>\n",
            MARGIN_L + plot_w - 150.0,
            MARGIN_L + plot_w - 132.0,
            MARGIN_L + plot_w - 128.0,
            ly + 3.0,
            html_escape(label),
        );
    }
    out.push_str("</svg>\n");
}

/// Render a self-contained HTML report: run metadata, alert outcomes, and
/// one inline-SVG chart per [`Chart`]. No external assets, scripts, or
/// stylesheets — the document opens offline and archives byte-stable.
pub fn render_html(
    title: &str,
    meta: &[(String, String)],
    alerts: &[(String, u64, bool)],
    charts: &[Chart],
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{}</title>\n<style>\nbody{{font-family:sans-serif;margin:2em;\
         max-width:780px}}\nh1{{font-size:1.4em}}h2{{font-size:1.1em;margin-top:1.6em}}\n\
         table{{border-collapse:collapse}}td,th{{border:1px solid #ccc;\
         padding:2px 8px;font-size:0.9em;text-align:left}}\n\
         .firing{{color:#d62728;font-weight:bold}}.quiet{{color:#2ca02c}}\n\
         .empty{{color:#999;font-style:italic}}\n</style>\n</head>\n<body>\n<h1>{}</h1>\n",
        html_escape(title),
        html_escape(title),
    );
    if !meta.is_empty() {
        out.push_str("<h2>Run</h2>\n<table>\n");
        for (k, v) in meta {
            let _ = writeln!(
                out,
                "<tr><th>{}</th><td>{}</td></tr>",
                html_escape(k),
                html_escape(v)
            );
        }
        out.push_str("</table>\n");
    }
    out.push_str("<h2>Alerts</h2>\n");
    if alerts.is_empty() {
        out.push_str("<p class=\"empty\">no SLO rules armed</p>\n");
    } else {
        out.push_str("<table>\n<tr><th>alert</th><th>fired</th><th>state</th></tr>\n");
        for (name, fired, active) in alerts {
            let (class, state) = if *active {
                ("firing", "FIRING")
            } else if *fired > 0 {
                ("quiet", "resolved")
            } else {
                ("quiet", "ok")
            };
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td class=\"{class}\">{state}</td></tr>",
                html_escape(name),
                fired,
            );
        }
        out.push_str("</table>\n");
    }
    for chart in charts {
        let _ = writeln!(out, "<h2>{}</h2>", html_escape(&chart.title));
        render_chart_svg(&mut out, chart);
    }
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> FlightRecorder {
        FlightRecorder::new(Duration::micros(10), 1024)
    }

    #[test]
    fn record_and_ring_bound() {
        let mut r = FlightRecorder::new(Duration::micros(1), 3);
        r.register("g", "a gauge");
        for i in 0..5u64 {
            r.record("g", Time(i * 1000), i as f64);
        }
        let s = r.series("g").expect("invariant: registered above");
        assert_eq!(s.points().count(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.latest(), Some((Time(4000), 4.0)));
        assert_eq!(r.points_dropped(), 2);
    }

    #[test]
    fn rate_is_windowed_and_reset_safe() {
        let mut r = FlightRecorder::new(Duration::micros(10), 64);
        r.register("rate", "per-second");
        r.record_rate("rate", Time(10_000), 100.0);
        r.record_rate("rate", Time(20_000), 300.0);
        // Warmup reset: the total shrank; the new total is the delta.
        r.record_rate("rate", Time(30_000), 50.0);
        let pts: Vec<(Time, f64)> = r
            .series("rate")
            .expect("invariant: registered")
            .points()
            .collect();
        assert_eq!(pts[0].1, 0.0, "first sample establishes the baseline");
        assert!((pts[1].1 - 200.0 / 10e-6).abs() < 1.0);
        assert!((pts[2].1 - 50.0 / 10e-6).abs() < 1.0);
    }

    #[test]
    fn ratio_is_windowed() {
        let mut r = rec();
        r.register("miss", "miss ratio");
        r.record_ratio("miss", Time(10_000), 0.0, 0.0);
        r.record_ratio("miss", Time(20_000), 10.0, 30.0); // 10 misses, 30 hits
        r.record_ratio("miss", Time(30_000), 10.0, 30.0); // idle epoch
        let pts: Vec<(Time, f64)> = r
            .series("miss")
            .expect("invariant: registered")
            .points()
            .collect();
        assert_eq!(pts[0].1, 0.0);
        assert!((pts[1].1 - 0.25).abs() < 1e-12);
        assert_eq!(pts[2].1, 0.0, "no lookups: ratio reports zero");
    }

    #[test]
    fn queue_keys_compose() {
        let mut r = rec();
        r.register_queue("depth", "per-queue depth", 2);
        r.record_queue("depth", 0, Time(1), 3.0);
        r.record_queue("depth", 1, Time(1), 7.0);
        assert_eq!(
            r.series("depth.q0").and_then(ScopeSeries::latest),
            Some((Time(1), 3.0))
        );
        assert_eq!(
            r.series("depth.q1").and_then(ScopeSeries::latest),
            Some((Time(1), 7.0))
        );
    }

    #[test]
    fn slo_spec_parses() {
        let rules = SloRule::parse_spec(
            "alert=llc-over,when=llc_occupancy_bytes,above=ddio_capacity_bytes,for=50us;\
             alert=recovery-silent,when=dma_retry_pps,silent,for=1ms;\
             alert=goodput-floor,when=goodput_gbps,below=1.5",
        )
        .expect("invariant: spec above is well-formed");
        assert_eq!(rules.len(), 3);
        assert_eq!(
            rules[0].pred,
            SloPredicate::Above(Threshold::Series("ddio_capacity_bytes".to_string()))
        );
        assert_eq!(rules[0].hold, Duration::micros(50));
        assert_eq!(rules[1].pred, SloPredicate::Silent);
        assert_eq!(rules[2].pred, SloPredicate::Below(Threshold::Value(1.5)));
        assert_eq!(rules[2].hold, Duration::ZERO);
    }

    #[test]
    fn slo_spec_rejects_malformed() {
        for bad in [
            "",
            "when=x,above=1",                                // no alert name
            "alert=a,above=1",                               // no watched series
            "alert=a,when=x",                                // no predicate
            "alert=a,when=x,above=1,below=2",                // two predicates
            "alert=a,when=x,above=1,for=5xs",                // bad duration
            "alert=a,when=x,above=1,bogus=2",                // unknown field
            "alert=a,when=x,above=1;alert=a,when=y,above=2", // duplicate name
        ] {
            assert!(
                SloRule::parse_spec(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn alert_fires_after_hold_and_resolves() {
        let mut r = FlightRecorder::new(Duration::micros(10), 64);
        r.register("v", "watched");
        r.arm_slos(
            SloRule::parse_spec("alert=high,when=v,above=5,for=20us")
                .expect("invariant: well-formed"),
        );
        // Breach must hold for 20us = 3 epochs at 10us spacing (t, t+10, t+20).
        let mut fired_at = None;
        for e in 0..6u64 {
            let now = Time((e + 1) * 10_000);
            r.record("v", now, if e < 4 { 9.0 } else { 1.0 });
            for f in r.end_epoch(now) {
                fired_at = Some((now, f));
            }
        }
        let (at, fire) = fired_at.expect("invariant: rule must fire");
        assert_eq!(
            at,
            Time(30_000),
            "fires at the first epoch with 20us of breach"
        );
        assert_eq!(fire.alert, "high");
        assert_eq!(r.total_fired(), 1);
        let states = r.alert_states();
        assert_eq!(
            states[0],
            ("high".to_string(), 1, false),
            "resolved after clear"
        );
    }

    #[test]
    fn alert_series_threshold_and_silent() {
        let mut r = FlightRecorder::new(Duration::micros(10), 64);
        r.register("occ", "occupancy");
        r.register("cap", "capacity");
        r.register("retries", "recovery counter");
        r.arm_slos(
            SloRule::parse_spec(
                "alert=over,when=occ,above=cap;alert=stuck,when=retries,silent,for=20us",
            )
            .expect("invariant: well-formed"),
        );
        for e in 0..5u64 {
            let now = Time((e + 1) * 10_000);
            r.record("occ", now, 10.0 + e as f64);
            r.record("cap", now, 12.0);
            r.record("retries", now, 7.0); // never changes: silent
            r.end_epoch(now);
        }
        let states = r.alert_states();
        // occ crosses cap (12.0) strictly at epoch 4 (value 13).
        assert_eq!(states[0].1, 1, "series-threshold rule fired");
        assert!(states[0].2, "still breaching at the end");
        assert_eq!(states[1].1, 1, "silent rule fired after its TTL");
    }

    #[test]
    fn csv_is_wide_and_deterministic() {
        let build = || {
            let mut r = rec();
            r.register("a", "");
            r.register("b", "");
            r.record("a", Time(1000), 1.5);
            r.record("b", Time(1000), 2.0);
            r.record("a", Time(2000), 3.0);
            r.to_csv()
        };
        let csv = build();
        assert_eq!(csv, "t_ns,a,b\n1000,1.5,2\n2000,3,\n");
        assert_eq!(csv, build(), "byte-identical across builds");
    }

    #[test]
    fn fill_metrics_exports_alerts_and_series() {
        let mut r = rec();
        r.register("g", "gauge");
        r.arm_slos(
            SloRule::parse_spec("alert=always,when=g,above=-1").expect("invariant: well-formed"),
        );
        r.record("g", Time(10_000), 5.0);
        r.end_epoch(Time(10_000));
        let mut b = SnapshotBuilder::new(Time(10_000));
        r.fill_metrics(&mut b);
        let snap = b.finish();
        let prom = snap.to_prom_text();
        assert!(prom.contains("ceio_scope_samples_total 1"), "{prom}");
        assert!(
            prom.contains("ceio_alert_fired_total{alert=\"always\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("ceio_alert_active{alert=\"always\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("ceio_alerts_fired_total 1"), "{prom}");
        let json = snap.to_json();
        crate::json::validate(&json).expect("scope snapshot JSON must parse");
        assert!(json.contains("\"scope:g\""), "{json}");
    }

    #[test]
    fn html_report_is_self_contained() {
        let mut r = rec();
        r.register("llc_occupancy_bytes", "occupancy");
        r.register("ddio_capacity_bytes", "capacity");
        for e in 0..8u64 {
            let now = Time((e + 1) * 10_000);
            r.record("llc_occupancy_bytes", now, 1000.0 + 100.0 * e as f64);
            r.record("ddio_capacity_bytes", now, 1500.0);
        }
        let chart = r.chart(
            "LLC I/O occupancy vs. DDIO capacity",
            "bytes",
            &["llc_occupancy_bytes", "ddio_capacity_bytes"],
        );
        let html = render_html(
            "ceio-scope report",
            &[("seed".to_string(), "42".to_string())],
            &[("over".to_string(), 2, true)],
            &[chart],
        );
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "chart must render inline SVG");
        assert!(html.contains("<polyline"), "curves must be present");
        assert!(html.contains("LLC I/O occupancy vs. DDIO capacity"));
        assert!(html.contains("FIRING"));
        assert!(!html.contains("<script"), "no scripts");
        assert!(
            !html.contains("http://") || html.contains("xmlns"),
            "no external fetches"
        );
        // Deterministic rendering.
        let chart2 = r.chart(
            "LLC I/O occupancy vs. DDIO capacity",
            "bytes",
            &["llc_occupancy_bytes", "ddio_capacity_bytes"],
        );
        let html2 = render_html(
            "ceio-scope report",
            &[("seed".to_string(), "42".to_string())],
            &[("over".to_string(), 2, true)],
            &[chart2],
        );
        assert_eq!(html, html2);
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let r = rec();
        let html = render_html("t", &[], &[], &[r.chart("empty", "y", &["missing"])]);
        assert!(html.contains("no samples"));
    }

    #[test]
    fn parse_duration_grammar() {
        assert_eq!(parse_duration("500ns"), Ok(Duration::nanos(500)));
        assert_eq!(parse_duration("20us"), Ok(Duration::micros(20)));
        assert_eq!(parse_duration("1ms"), Ok(Duration::millis(1)));
        assert_eq!(parse_duration("42"), Ok(Duration::nanos(42)));
        assert!(parse_duration("5s").is_err());
        assert!(parse_duration("ns").is_err());
    }
}
