//! Hand-rolled JSON helpers: string escaping, finite-safe float
//! formatting, and a minimal validator.
//!
//! The workspace's `serde`/`serde_json` are no-op compatibility stubs, so
//! every exporter in this crate emits JSON by hand. These helpers keep
//! that honest: [`escape`] handles the mandatory escapes of RFC 8259,
//! [`fmt_f64`] never emits `NaN`/`inf` (which are not JSON), and
//! [`validate`] is a small recursive-descent checker used by tests and by
//! the `ceio-inspect` smoke path to assert emitted documents parse.

/// Escape a string for embedding inside a JSON string literal (without
/// the surrounding quotes). Escapes backslash, double quote, and all
/// control characters below U+0020.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON-legal number. `NaN` and infinities are not
/// representable in JSON; they render as `0`, `1e308`, and `-1e308`
/// respectively (a lossy but parseable stand-in — metric producers should
/// not emit them in the first place).
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "0".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "1e308" } else { "-1e308" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // Render integral values without a fractional tail ("3" not
        // "3.0000000"): shorter documents and stable golden files.
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        s
    }
}

/// Maximum nesting depth accepted by [`validate`]. Deeper documents are
/// rejected rather than risking checker stack overflow.
const MAX_DEPTH: usize = 64;

/// Validate that `s` is a single well-formed JSON value (object, array,
/// string, number, `true`, `false`, or `null`) with nothing but
/// whitespace after it. Returns a byte offset + message on failure.
///
/// This is a structural checker, not a parser: it builds no tree and
/// allocates nothing proportional to the input.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos, 0)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn value(b: &[u8], i: usize, depth: usize) -> Result<usize, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {i}"));
    }
    match b.get(i) {
        None => Err(format!("expected value at byte {i}, found end of input")),
        Some(b'{') => object(b, i + 1, depth + 1),
        Some(b'[') => array(b, i + 1, depth + 1),
        Some(b'"') => string(b, i + 1),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, i),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {i}")),
    }
}

fn literal(b: &[u8], i: usize, word: &[u8]) -> Result<usize, String> {
    if b.len() >= i + word.len() && &b[i..i + word.len()] == word {
        Ok(i + word.len())
    } else {
        Err(format!("malformed literal at byte {i}"))
    }
}

fn string(b: &[u8], mut i: usize) -> Result<usize, String> {
    // `i` is just past the opening quote.
    while i < b.len() {
        match b[i] {
            b'"' => return Ok(i + 1),
            b'\\' => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    if i + 6 > b.len() || !b[i + 2..i + 6].iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {i}"));
                    }
                    i += 6;
                }
                _ => return Err(format!("bad escape at byte {i}")),
            },
            c if c < 0x20 => {
                return Err(format!("raw control byte {c:#04x} in string at {i}"));
            }
            _ => i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], mut i: usize) -> Result<usize, String> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == int_start {
        return Err(format!("expected digits at byte {i}"));
    }
    // Leading zero may not be followed by more digits.
    if b[int_start] == b'0' && i > int_start + 1 {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return Err(format!("expected fraction digits at byte {i}"));
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return Err(format!("expected exponent digits at byte {i}"));
        }
    }
    Ok(i)
}

fn array(b: &[u8], i: usize, depth: usize) -> Result<usize, String> {
    let mut pos = skip_ws(b, i);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn object(b: &[u8], i: usize, depth: usize) -> Result<usize, String> {
    let mut pos = skip_ws(b, i);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        pos = string(b, pos + 1)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn fmt_f64_is_json_legal() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-0.5), "-0.5");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "1e308");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-1e308");
        for v in [3.0, -0.5, 0.125, 1e-9, 123456789.25] {
            assert!(validate(&fmt_f64(v)).is_ok(), "{v}");
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":null}"#,
            "  [ 1 , 2 ]  ",
            r#""é""#,
        ] {
            assert!(validate(doc).is_ok(), "{doc}: {:?}", validate(doc));
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "[1] [2]",
            "{\"a\" 1}",
            "+1",
        ] {
            assert!(validate(doc).is_err(), "{doc} should be rejected");
        }
    }

    #[test]
    fn validate_depth_limit() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(validate(&ok).is_ok());
    }
}
