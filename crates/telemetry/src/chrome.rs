//! Chrome trace-event JSON export, loadable in Perfetto / `chrome://tracing`.
//!
//! Each [`TraceEvent`] becomes one trace-event object. Mapping:
//!
//! - `ts` is microseconds (simulated nanoseconds / 1000, three decimals).
//! - `ph` comes from [`TraceKind::phase`]: `"i"` instants for most kinds,
//!   `"B"`/`"E"` spans for phase-exclusivity enter/exit so the slow phase
//!   renders as a named bar per flow in Perfetto's track view.
//! - `pid` is always 1 (one simulated machine); `tid` is `flow + 1`, with
//!   tid 0 reserved for non-attributable substrate events (DMA engine,
//!   on-NIC memory). `thread_name` metadata events label each track.
//! - the kind-specific payload lands in `args.value`, and truncation is
//!   reported honestly via `otherData.dropped_events`.

use crate::event::{Phase, TraceEvent};
use crate::json::escape;

fn tid_of(ev: &TraceEvent) -> u64 {
    match ev.flow {
        Some(f) => u64::from(f) + 1,
        None => 0,
    }
}

fn track_name(tid: u64) -> String {
    if tid == 0 {
        "substrate".to_string()
    } else {
        format!("flow-{}", tid - 1)
    }
}

/// Serialize events (plus the recorder's dropped-record count) as a
/// Chrome trace-event JSON document. Events should already be merged and
/// time-ordered — see [`crate::event::merge_events`].
pub fn chrome_trace_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");

    // Name each track first so Perfetto labels rows even for empty tails.
    let mut tids: Vec<u64> = events.iter().map(tid_of).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut first = true;
    for tid in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&track_name(*tid))
        ));
    }

    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        let ph = match ev.kind.phase() {
            Phase::Instant => "i",
            Phase::Begin => "B",
            Phase::End => "E",
        };
        let us_whole = ev.at.0 / 1000;
        let ns_frac = ev.at.0 % 1000;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{us_whole}.{ns_frac:03},\
             \"pid\":1,\"tid\":{}",
            escape(ev.kind.label()),
            tid_of(ev)
        ));
        if ph == "i" {
            // Instant scope: thread-local, keeps markers compact.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(&format!(",\"args\":{{\"value\":{}", ev.value));
        if let Some(f) = ev.flow {
            out.push_str(&format!(",\"flow\":{f}"));
        }
        out.push_str("}}");
    }

    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{dropped}}}}}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;
    use crate::json::validate;
    use ceio_sim::Time;

    fn ev(at: u64, flow: Option<u32>, kind: TraceKind, value: u64) -> TraceEvent {
        TraceEvent {
            at: Time(at),
            flow,
            kind,
            value,
        }
    }

    #[test]
    fn emits_valid_json() {
        let events = vec![
            ev(1_500, Some(0), TraceKind::CreditGrant, 1),
            ev(2_000, Some(0), TraceKind::PhaseSlowEnter, 0),
            ev(9_250, Some(0), TraceKind::PhaseSlowExit, 0),
            ev(500, None, TraceKind::DmaWriteIssue, 512),
        ];
        let doc = chrome_trace_json(&events, 3);
        assert!(validate(&doc).is_ok(), "{:?}", validate(&doc));
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"dropped_events\":3"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = chrome_trace_json(&[ev(1_500, Some(2), TraceKind::Delivery, 64)], 0);
        assert!(doc.contains("\"ts\":1.500"), "{doc}");
        assert!(doc.contains("\"tid\":3"), "{doc}");
        assert!(doc.contains("\"flow\":2"), "{doc}");
    }

    #[test]
    fn phase_events_form_spans() {
        let doc = chrome_trace_json(
            &[
                ev(10, Some(1), TraceKind::PhaseSlowEnter, 0),
                ev(20, Some(1), TraceKind::PhaseSlowExit, 0),
            ],
            0,
        );
        assert!(doc.contains("\"ph\":\"B\""));
        assert!(doc.contains("\"ph\":\"E\""));
        // Both share the span name.
        assert_eq!(doc.matches("\"name\":\"slow-phase\"").count(), 2);
    }

    #[test]
    fn tracks_are_named() {
        let doc = chrome_trace_json(
            &[
                ev(1, None, TraceKind::DmaReadIssue, 0),
                ev(2, Some(7), TraceKind::Delivery, 64),
            ],
            0,
        );
        assert!(doc.contains("\"name\":\"substrate\""));
        assert!(doc.contains("\"name\":\"flow-7\""));
    }

    #[test]
    fn empty_stream_is_valid() {
        let doc = chrome_trace_json(&[], 0);
        assert!(validate(&doc).is_ok());
        assert!(doc.contains("\"traceEvents\":[]"));
    }
}
