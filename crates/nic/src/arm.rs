//! The on-NIC ARM core running the CEIO runtime.
//!
//! The paper implements the flow controller and elastic buffer manager on
//! the BlueField's ARMv8 cores (§5), arguing the per-operation work —
//! table lookups, register access, DMA posting — is light enough for even
//! wimpy on-path cores. We model the core as a busy-until server so that
//! control-plane work has a measurable (and, per Fig. 11, negligible) cost
//! rather than being assumed free.

#[cfg(feature = "chaos")]
use ceio_chaos::{FaultInjector, FaultSite};
use ceio_sim::{Duration, Time};
use serde::Serialize;

/// ARM-core statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct ArmStats {
    /// Operations executed.
    pub ops: u64,
    /// Total busy nanoseconds.
    pub busy_ns: u64,
    /// Stall nanoseconds injected by an armed chaos plan (included in
    /// `busy_ns`). Zero without chaos.
    pub injected_stall_ns: u64,
}

/// A single on-NIC control core.
#[derive(Debug)]
pub struct ArmCore {
    busy_until: Time,
    stats: ArmStats,
    #[cfg(feature = "chaos")]
    injector: Option<FaultInjector>,
}

impl Default for ArmCore {
    fn default() -> Self {
        ArmCore::new()
    }
}

impl ArmCore {
    /// An idle core.
    pub fn new() -> ArmCore {
        ArmCore {
            busy_until: Time::ZERO,
            stats: ArmStats::default(),
            #[cfg(feature = "chaos")]
            injector: None,
        }
    }

    /// Arm deterministic fault injection (core stalls).
    #[cfg(feature = "chaos")]
    pub fn arm_chaos(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Per-site injection counters (empty when chaos is disarmed).
    #[cfg(feature = "chaos")]
    pub fn chaos_stats(&self) -> Option<&ceio_chaos::ChaosStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Execute one operation costing `cost`, starting no earlier than `now`
    /// and after any previous operation finishes. Returns the completion
    /// instant. An armed chaos plan may stall the core first (the stall is
    /// charged to the core's busy time, delaying this and all later ops).
    pub fn execute(&mut self, now: Time, cost: Duration) -> Time {
        #[cfg(feature = "chaos")]
        let cost = {
            let mut cost = cost;
            if let Some(inj) = self.injector.as_mut() {
                if inj.fire(FaultSite::ArmStall) {
                    let stall = inj.plan().arm_stall;
                    self.stats.injected_stall_ns += stall.as_nanos();
                    cost += stall;
                }
            }
            cost
        };
        let start = self.busy_until.max(now);
        self.busy_until = start + cost;
        self.stats.ops += 1;
        self.stats.busy_ns += cost.as_nanos();
        self.busy_until
    }

    /// Instant the core becomes idle.
    #[inline]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Utilization over an elapsed window (busy time / window), in `[0,1]`.
    pub fn utilization(&self, window: Duration) -> f64 {
        if window.as_nanos() == 0 {
            return 0.0;
        }
        (self.stats.busy_ns as f64 / window.as_nanos() as f64).min(1.0)
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &ArmStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_serialize() {
        let mut c = ArmCore::new();
        let a = c.execute(Time(0), Duration::nanos(40));
        let b = c.execute(Time(0), Duration::nanos(40));
        assert_eq!(a, Time(40));
        assert_eq!(b, Time(80));
        assert_eq!(c.stats().ops, 2);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut c = ArmCore::new();
        c.execute(Time(0), Duration::nanos(10));
        let done = c.execute(Time(1_000), Duration::nanos(10));
        assert_eq!(done, Time(1_010));
        assert_eq!(c.stats().busy_ns, 20);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn injected_stall_extends_busy_time() {
        use ceio_chaos::{FaultPlan, FaultSite};
        let mut c = ArmCore::new();
        let plan = FaultPlan::new(5).with_rate(FaultSite::ArmStall, 1.0);
        let stall = plan.arm_stall;
        c.arm_chaos(plan.injector("arm"));
        let done = c.execute(Time(0), Duration::nanos(40));
        assert_eq!(done, Time(40) + stall);
        assert_eq!(c.stats().injected_stall_ns, stall.as_nanos());
        assert_eq!(c.stats().busy_ns, 40 + stall.as_nanos());
    }

    #[test]
    fn utilization_bounded() {
        let mut c = ArmCore::new();
        c.execute(Time(0), Duration::nanos(500));
        assert!((c.utilization(Duration::nanos(1_000)) - 0.5).abs() < 1e-12);
        assert_eq!(c.utilization(Duration::ZERO), 0.0);
        assert_eq!(c.utilization(Duration::nanos(100)), 1.0);
    }
}
