//! On-NIC memory: the elastic-buffer backing store.
//!
//! BlueField-3 exposes 16 GB of software-accessible onboard DRAM (§3). CEIO
//! parks slow-path packets here instead of dropping them. The model is a
//! bandwidth server (like host DRAM) with two BF-3-specific costs the paper
//! measures in §6.4: a base latency through the internal PCIe switch, and
//! lower sustained bandwidth than host DRAM. Byte-capacity accounting lets
//! experiments verify the elastic buffer never exceeds the device.

#[cfg(feature = "chaos")]
use ceio_chaos::{FaultInjector, FaultSite};
use ceio_sim::{Bandwidth, Duration, Time};
#[cfg(feature = "trace")]
use ceio_telemetry::{TraceEvent, TraceKind, TraceRing};
use serde::Serialize;

/// On-NIC memory statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct OnboardStats {
    /// Bytes written into the elastic store.
    pub bytes_written: u64,
    /// Bytes read back out (drained to host).
    pub bytes_read: u64,
    /// Write attempts refused because capacity was exhausted.
    pub capacity_rejections: u64,
    /// Rejections injected by an armed chaos plan (a subset of
    /// `capacity_rejections`). Zero without chaos.
    pub injected_rejections: u64,
    /// Occupancy high-water mark in bytes.
    pub peak_bytes: u64,
}

/// The on-NIC DRAM model.
#[derive(Debug)]
pub struct OnboardMemory {
    capacity: u64,
    occupancy: u64,
    bandwidth: Bandwidth,
    base_latency: Duration,
    busy_until: Time,
    stats: OnboardStats,
    #[cfg(feature = "trace")]
    tracer: Option<TraceRing>,
    #[cfg(feature = "chaos")]
    injector: Option<FaultInjector>,
}

impl OnboardMemory {
    /// A store with the given capacity, bandwidth, and access latency.
    pub fn new(capacity: u64, bandwidth: Bandwidth, base_latency: Duration) -> OnboardMemory {
        OnboardMemory {
            capacity,
            occupancy: 0,
            bandwidth,
            base_latency,
            busy_until: Time::ZERO,
            stats: OnboardStats::default(),
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "chaos")]
            injector: None,
        }
    }

    /// Arm deterministic fault injection (DRAM-store exhaustion).
    #[cfg(feature = "chaos")]
    pub fn arm_chaos(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Per-site injection counters (empty when chaos is disarmed).
    #[cfg(feature = "chaos")]
    pub fn chaos_stats(&self) -> Option<&ceio_chaos::ChaosStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Arm event recording into a fresh drop-oldest ring of `cap` events.
    #[cfg(feature = "trace")]
    pub fn arm_trace(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(cap));
    }

    /// Drain recorded events (and the dropped count), if armed.
    #[cfg(feature = "trace")]
    pub fn trace_take(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.tracer.as_mut() {
            Some(r) => {
                let evs = r.events();
                let dropped = r.dropped();
                r.clear();
                (evs, dropped)
            }
            None => (Vec::new(), 0),
        }
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&mut self, at: Time, kind: TraceKind, value: u64) {
        if let Some(r) = self.tracer.as_mut() {
            r.push(TraceEvent {
                at,
                flow: None,
                kind,
                value,
            });
        }
    }

    /// Stage `bytes` into the store at `now`. Returns the retire instant, or
    /// `None` if the store is out of capacity (the packet must be dropped —
    /// with 16 GB this only happens in adversarial tests).
    pub fn write(&mut self, now: Time, bytes: u64) -> Option<Time> {
        #[cfg(feature = "chaos")]
        if let Some(inj) = self.injector.as_mut() {
            if inj.fire(FaultSite::OnboardExhaust) {
                // The store behaves as if the elastic region filled
                // mid-drain: refuse the write without mutating occupancy.
                self.stats.capacity_rejections += 1;
                self.stats.injected_rejections += 1;
                return None;
            }
        }
        if self.occupancy + bytes > self.capacity {
            self.stats.capacity_rejections += 1;
            return None;
        }
        self.occupancy += bytes;
        self.stats.bytes_written += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.occupancy);
        #[cfg(feature = "trace")]
        self.trace(now, TraceKind::OnboardWrite, bytes);
        Some(self.serve(now, bytes))
    }

    /// Read `bytes` back out (toward the host) at `now`; returns the instant
    /// the data is available at the NIC's DMA engine. Frees the capacity.
    pub fn read(&mut self, now: Time, bytes: u64) -> Time {
        debug_assert!(
            bytes <= self.occupancy,
            "onboard read of {bytes} exceeds occupancy {}",
            self.occupancy
        );
        self.occupancy = self.occupancy.saturating_sub(bytes);
        self.stats.bytes_read += bytes;
        #[cfg(feature = "trace")]
        self.trace(now, TraceKind::OnboardRead, bytes);
        self.serve(now, bytes)
    }

    fn serve(&mut self, now: Time, bytes: u64) -> Time {
        let start = self.busy_until.max(now);
        self.busy_until = start + self.bandwidth.transfer_time(bytes);
        self.busy_until + self.base_latency
    }

    /// Discard `bytes` without reading them out (flow teardown frees its
    /// parked packets; no data movement, so no bandwidth charge).
    pub fn discard(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.occupancy, "onboard discard underflow");
        self.occupancy = self.occupancy.saturating_sub(bytes);
    }

    /// Bytes currently stored.
    #[inline]
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &OnboardStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> OnboardMemory {
        // 36 GB/s, 200 ns switch penalty, tiny capacity for tests.
        OnboardMemory::new(8192, Bandwidth::gibps(36), Duration::nanos(200))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = mem();
        let w = m.write(Time(0), 2048).unwrap();
        assert!(w >= Time(0) + Duration::nanos(200));
        assert_eq!(m.occupancy(), 2048);
        let r = m.read(w, 2048);
        assert!(r > w);
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.stats().bytes_read, 2048);
    }

    #[test]
    fn capacity_enforced() {
        let mut m = mem();
        assert!(m.write(Time(0), 8192).is_some());
        assert!(m.write(Time(0), 1).is_none());
        assert_eq!(m.stats().capacity_rejections, 1);
    }

    #[test]
    fn accesses_serialize_on_bandwidth() {
        let mut m = mem();
        let a = m.write(Time(0), 4096).unwrap();
        let b = m.write(Time(0), 4096).unwrap();
        assert!(b > a, "second access queues behind the first");
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn injected_exhaustion_rejects_without_state_change() {
        use ceio_chaos::{FaultPlan, FaultSite};
        let mut m = mem();
        let plan = FaultPlan::new(3).with_rate(FaultSite::OnboardExhaust, 1.0);
        m.arm_chaos(plan.injector("onboard"));
        assert!(m.write(Time(0), 64).is_none());
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.stats().capacity_rejections, 1);
        assert_eq!(m.stats().injected_rejections, 1);
        assert_eq!(m.stats().bytes_written, 0);
        assert_eq!(
            m.chaos_stats()
                .expect("armed")
                .at(FaultSite::OnboardExhaust),
            1
        );
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut m = mem();
        m.write(Time(0), 4096);
        m.write(Time(0), 2048);
        m.read(Time(1000), 4096);
        assert_eq!(m.stats().peak_bytes, 6144);
        assert_eq!(m.occupancy(), 2048);
    }
}
