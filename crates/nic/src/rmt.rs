//! The reconfigurable match-action (RMT) flow-steering engine.
//!
//! CEIO's flow controller offloads one steering rule per flow at connection
//! establishment (§4.1, Fig. 6). The rule initially directs packets to the
//! fast path (legacy DMA); when the flow's credits exhaust, the controller
//! rewrites the rule's action to divert packets into on-NIC memory. The
//! engine exposes per-rule hit counters, which the controller polls to track
//! credit consumption — exactly the paper's control loop.

use crate::queue::QueueId;
use serde::Serialize;
use std::collections::BTreeMap;

/// Where the RMT engine steers a matched packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SteerAction {
    /// Legacy I/O: DMA to the host ring of queue `queue`.
    FastPath {
        /// Destination RX queue.
        queue: QueueId,
    },
    /// Elastic buffering: DMA into on-NIC memory (CEIO slow path).
    SlowPath,
    /// Drop the packet (no rule / admission refused).
    Drop,
}

/// Per-rule state.
#[derive(Debug, Clone)]
struct Rule {
    action: SteerAction,
    hits: u64,
    hits_at_last_poll: u64,
}

/// Engine statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct RmtStats {
    /// Lookups that matched a rule.
    pub matched: u64,
    /// Lookups that fell through to the default action.
    pub defaulted: u64,
    /// Rule-action rewrites performed.
    pub updates: u64,
    /// Rewrites that left the fast path (fast → slow/drop).
    pub rewrites_to_slow: u64,
    /// Rewrites that restored the fast path (slow/drop → fast).
    pub rewrites_to_fast: u64,
    /// Fast → fast rewrites that moved the flow to a *different* RX queue
    /// (RSS re-steer); same-queue fast → fast rewrites count only as
    /// `updates`.
    pub rewrites_queue_move: u64,
}

/// The match-action steering table, keyed by flow identifier `K`.
///
/// Keys are ordered (`BTreeMap`), so every iteration over installed rules
/// is deterministic — the simulation's replay guarantee must not depend on
/// a hash map's per-process iteration order.
#[derive(Debug)]
pub struct RmtEngine<K> {
    rules: BTreeMap<K, Rule>,
    default_action: SteerAction,
    stats: RmtStats,
}

impl<K: Ord + Clone> RmtEngine<K> {
    /// An empty table with the given default action for unmatched packets.
    pub fn new(default_action: SteerAction) -> RmtEngine<K> {
        RmtEngine {
            rules: BTreeMap::new(),
            default_action,
            stats: RmtStats::default(),
        }
    }

    /// Install (or replace) the rule for `key`.
    pub fn install(&mut self, key: K, action: SteerAction) {
        self.rules.insert(
            key,
            Rule {
                action,
                hits: 0,
                hits_at_last_poll: 0,
            },
        );
    }

    /// Remove the rule for `key`; returns whether one existed.
    pub fn remove(&mut self, key: &K) -> bool {
        self.rules.remove(key).is_some()
    }

    /// Rewrite the action of an existing rule. Returns `false` if absent.
    pub fn set_action(&mut self, key: &K, action: SteerAction) -> bool {
        match self.rules.get_mut(key) {
            Some(r) => {
                match (r.action, action) {
                    (
                        SteerAction::FastPath { queue: from },
                        SteerAction::FastPath { queue: to },
                    ) if from != to => self.stats.rewrites_queue_move += 1,
                    (SteerAction::FastPath { .. }, SteerAction::FastPath { .. }) => {}
                    (SteerAction::FastPath { .. }, _) => self.stats.rewrites_to_slow += 1,
                    (_, SteerAction::FastPath { .. }) => self.stats.rewrites_to_fast += 1,
                    _ => {}
                }
                r.action = action;
                self.stats.updates += 1;
                true
            }
            None => false,
        }
    }

    /// Current action of a rule, if installed (no hit counting).
    pub fn action(&self, key: &K) -> Option<SteerAction> {
        self.rules.get(key).map(|r| r.action)
    }

    /// Steer one packet: returns the matched rule's action (incrementing
    /// its hit counter) or the default action.
    pub fn steer(&mut self, key: &K) -> SteerAction {
        match self.rules.get_mut(key) {
            Some(r) => {
                r.hits += 1;
                self.stats.matched += 1;
                r.action
            }
            None => {
                self.stats.defaulted += 1;
                self.default_action
            }
        }
    }

    /// Lifetime hit count of a rule.
    pub fn hits(&self, key: &K) -> u64 {
        self.rules.get(key).map(|r| r.hits).unwrap_or(0)
    }

    /// Hits since the previous poll of this rule (the counter delta the
    /// flow controller consumes each polling interval).
    pub fn poll_hits(&mut self, key: &K) -> u64 {
        match self.rules.get_mut(key) {
            Some(r) => {
                let d = r.hits - r.hits_at_last_poll;
                r.hits_at_last_poll = r.hits;
                d
            }
            None => 0,
        }
    }

    /// Number of installed rules.
    #[inline]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &RmtStats {
        &self.stats
    }

    /// Iterate over installed keys in ascending key order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.rules.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(queue: usize) -> SteerAction {
        SteerAction::FastPath {
            queue: QueueId(queue),
        }
    }

    #[test]
    fn steer_matches_installed_rule() {
        let mut rmt = RmtEngine::new(SteerAction::Drop);
        rmt.install(1u64, fast(3));
        assert_eq!(rmt.steer(&1), fast(3));
        assert_eq!(rmt.steer(&2), SteerAction::Drop);
        assert_eq!(rmt.stats().matched, 1);
        assert_eq!(rmt.stats().defaulted, 1);
    }

    #[test]
    fn set_action_rewrites_in_place() {
        let mut rmt = RmtEngine::new(SteerAction::Drop);
        rmt.install(1u64, fast(0));
        assert!(rmt.set_action(&1, SteerAction::SlowPath));
        assert_eq!(rmt.steer(&1), SteerAction::SlowPath);
        assert!(!rmt.set_action(&9, SteerAction::SlowPath));
        assert_eq!(rmt.stats().updates, 1);
    }

    #[test]
    fn rewrite_direction_counters() {
        let mut rmt = RmtEngine::new(SteerAction::Drop);
        rmt.install(1u64, fast(0));
        rmt.set_action(&1, SteerAction::SlowPath);
        rmt.set_action(&1, fast(1));
        // Fast→fast queue change is neither direction: it is a queue move.
        rmt.set_action(&1, fast(2));
        assert_eq!(rmt.stats().rewrites_to_slow, 1);
        assert_eq!(rmt.stats().rewrites_to_fast, 1);
        assert_eq!(rmt.stats().rewrites_queue_move, 1);
        assert_eq!(rmt.stats().updates, 3);
    }

    #[test]
    fn queue_move_accounting() {
        let mut rmt = RmtEngine::new(SteerAction::Drop);
        rmt.install(1u64, fast(0));
        // Same-queue fast→fast rewrite: an update, not a move.
        rmt.set_action(&1, fast(0));
        assert_eq!(rmt.stats().rewrites_queue_move, 0);
        assert_eq!(rmt.stats().updates, 1);
        // Distinct-queue fast→fast rewrites count, each time.
        rmt.set_action(&1, fast(2));
        rmt.set_action(&1, fast(1));
        assert_eq!(rmt.stats().rewrites_queue_move, 2);
        // The rule keeps steering to the latest queue.
        assert_eq!(rmt.steer(&1), fast(1));
        // Leaving and re-entering the fast path is directional traffic,
        // not a move — even when the queue differs across the detour.
        rmt.set_action(&1, SteerAction::SlowPath);
        rmt.set_action(&1, fast(3));
        assert_eq!(rmt.stats().rewrites_queue_move, 2);
        assert_eq!(rmt.stats().rewrites_to_slow, 1);
        assert_eq!(rmt.stats().rewrites_to_fast, 1);
        // Slow → drop → slow never touches any fast counter.
        rmt.set_action(&1, SteerAction::Drop);
        rmt.set_action(&1, SteerAction::SlowPath);
        assert_eq!(rmt.stats().rewrites_to_slow, 2); // fast(3) → Drop above
        assert_eq!(rmt.stats().rewrites_to_fast, 1);
        assert_eq!(rmt.stats().rewrites_queue_move, 2);
        assert_eq!(rmt.stats().updates, 7);
    }

    #[test]
    fn hit_counters_and_poll_deltas() {
        let mut rmt = RmtEngine::new(SteerAction::Drop);
        rmt.install(1u64, SteerAction::SlowPath);
        for _ in 0..5 {
            rmt.steer(&1);
        }
        assert_eq!(rmt.hits(&1), 5);
        assert_eq!(rmt.poll_hits(&1), 5);
        rmt.steer(&1);
        assert_eq!(rmt.poll_hits(&1), 1);
        assert_eq!(rmt.poll_hits(&1), 0);
        assert_eq!(rmt.hits(&1), 6);
    }

    #[test]
    fn remove_uninstalls() {
        let mut rmt = RmtEngine::new(SteerAction::Drop);
        rmt.install(1u64, SteerAction::SlowPath);
        assert!(rmt.remove(&1));
        assert!(!rmt.remove(&1));
        assert_eq!(rmt.steer(&1), SteerAction::Drop);
        assert!(rmt.is_empty());
    }

    #[test]
    fn reinstall_resets_counters() {
        let mut rmt = RmtEngine::new(SteerAction::Drop);
        rmt.install(1u64, SteerAction::SlowPath);
        rmt.steer(&1);
        rmt.install(1u64, fast(0));
        assert_eq!(rmt.hits(&1), 0);
    }
}
