//! NIC parameters, defaulted to a BlueField-3-class DPU.

use ceio_sim::{Bandwidth, Duration};
use serde::{Deserialize, Serialize};

/// Configuration of the SmartNIC model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicParams {
    /// Per-queue RX descriptor ring capacity (entries).
    pub ring_entries: usize,
    /// On-NIC memory capacity (BlueField-3 carries 16 GB, §3).
    pub onboard_capacity: u64,
    /// On-NIC memory bandwidth: BlueField-3 carries DDR5 at ~80 GB/s peak;
    /// ~60 GB/s effective under the mixed write+read drain pattern. Still
    /// below host DRAM and reached through the internal PCIe switch (§6.4).
    pub onboard_bandwidth: Bandwidth,
    /// Extra access latency through the BF-3 internal PCIe switch (§6.4).
    pub onboard_base_latency: Duration,
    /// Firmware per-packet RX processing cost (descriptor fetch, steering).
    pub firmware_per_packet: Duration,
    /// ARM-core cost of one steering-table update (match-action rewrite).
    pub arm_table_update: Duration,
    /// ARM-core cost of one credit bookkeeping operation.
    pub arm_credit_op: Duration,
    /// Interval at which the on-NIC cores poll steering counters (§4.1).
    pub arm_poll_interval: Duration,
    /// Minimum gap between successive DMA descriptor issues **on one RX
    /// queue** (descriptor fetch + doorbell serialization in the queue's
    /// issue pipeline). This is the resource that multi-queue receive
    /// scales: each queue owns an independent issue pipeline, so N queues
    /// issue N descriptors per gap where one queue issues one. `ZERO`
    /// (the default) disables the gate entirely, keeping the single-queue
    /// pipeline bit-identical to the pre-sharding model.
    #[serde(default)]
    pub queue_issue_gap: Duration,
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams {
            ring_entries: 1024,
            onboard_capacity: 16 << 30,
            onboard_bandwidth: Bandwidth::gibps(60),
            onboard_base_latency: Duration::nanos(200),
            firmware_per_packet: Duration::nanos(10),
            arm_table_update: Duration::nanos(150),
            arm_credit_op: Duration::nanos(40),
            arm_poll_interval: Duration::micros(1),
            queue_issue_gap: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onboard_is_slower_than_typical_host_dram() {
        let p = NicParams::default();
        assert!(p.onboard_bandwidth < Bandwidth::gibps(160));
        assert!(p.onboard_base_latency > Duration::nanos(90));
    }
}
