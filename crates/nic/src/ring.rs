//! Fixed-capacity hardware descriptor ring.
//!
//! Producer/consumer semantics mirror real NIC rings: the producer (NIC
//! firmware or DMA engine) advances the tail as packets land; the consumer
//! (driver) advances the head as packets are handed to the application. A
//! full ring rejects pushes — the caller decides whether that is a drop
//! (legacy NIC, ShRing) or backpressure (CEIO slow path).

use serde::Serialize;
use std::collections::VecDeque;

/// Ring statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct RingStats {
    /// Entries successfully pushed.
    pub pushed: u64,
    /// Pushes rejected because the ring was full.
    pub rejected: u64,
    /// Entries popped by the consumer.
    pub popped: u64,
    /// Occupancy high-water mark.
    pub peak_occupancy: usize,
}

/// A bounded FIFO descriptor ring.
#[derive(Debug)]
pub struct HwRing<T> {
    entries: VecDeque<T>,
    capacity: usize,
    stats: RingStats,
    /// Cumulative count of entries ever pushed; serves as the HW tail
    /// pointer in the SW-ring protocol of §4.2.
    tail_seq: u64,
    /// Cumulative count of entries ever popped; the HW head pointer.
    head_seq: u64,
}

impl<T> HwRing<T> {
    /// An empty ring holding at most `capacity` entries.
    pub fn new(capacity: usize) -> HwRing<T> {
        HwRing {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            stats: RingStats::default(),
            tail_seq: 0,
            head_seq: 0,
        }
    }

    /// Push an entry; returns it back if the ring is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.entries.len() >= self.capacity {
            self.stats.rejected += 1;
            return Err(item);
        }
        self.entries.push_back(item);
        self.tail_seq += 1;
        self.stats.pushed += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.entries.len());
        Ok(())
    }

    /// Pop the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.entries.pop_front()?;
        self.head_seq += 1;
        self.stats.popped += 1;
        Some(item)
    }

    /// Peek the oldest entry without consuming it.
    pub fn peek(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ring is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots remaining.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy_fraction(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / self.capacity as f64
    }

    /// Cumulative producer (tail) pointer.
    #[inline]
    pub fn tail_seq(&self) -> u64 {
        self.tail_seq
    }

    /// Cumulative consumer (head) pointer.
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &RingStats {
        &self.stats
    }

    /// Drain all entries (used when tearing down a flow).
    pub fn drain_all(&mut self) -> Vec<T> {
        let drained: Vec<T> = self.entries.drain(..).collect();
        self.head_seq += drained.len() as u64;
        self.stats.popped += drained.len() as u64;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = HwRing::new(4);
        for i in 0..4 {
            r.try_push(i).unwrap();
        }
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn full_ring_rejects_and_returns_item() {
        let mut r = HwRing::new(2);
        r.try_push("a").unwrap();
        r.try_push("b").unwrap();
        assert_eq!(r.try_push("c"), Err("c"));
        assert!(r.is_full());
        assert_eq!(r.stats().rejected, 1);
    }

    #[test]
    fn pointers_are_cumulative() {
        let mut r = HwRing::new(2);
        r.try_push(1).unwrap();
        r.try_push(2).unwrap();
        r.pop();
        r.try_push(3).unwrap();
        assert_eq!(r.tail_seq(), 3);
        assert_eq!(r.head_seq(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = HwRing::new(2);
        r.try_push(7).unwrap();
        assert_eq!(r.peek(), Some(&7));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn occupancy_fraction_and_free() {
        let mut r = HwRing::new(4);
        r.try_push(0).unwrap();
        assert_eq!(r.free(), 3);
        assert!((r.occupancy_fraction() - 0.25).abs() < 1e-12);
        let empty: HwRing<u8> = HwRing::new(0);
        assert_eq!(empty.occupancy_fraction(), 0.0);
    }

    #[test]
    fn drain_all_advances_head() {
        let mut r = HwRing::new(4);
        for i in 0..3 {
            r.try_push(i).unwrap();
        }
        let drained = r.drain_all();
        assert_eq!(drained, vec![0, 1, 2]);
        assert_eq!(r.head_seq(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut r = HwRing::new(8);
        for i in 0..5 {
            r.try_push(i).unwrap();
        }
        r.pop();
        r.pop();
        assert_eq!(r.stats().peak_occupancy, 5);
    }
}
