//! Fixed-capacity hardware descriptor ring.
//!
//! Producer/consumer semantics mirror real NIC rings: the producer (NIC
//! firmware or DMA engine) advances the tail as packets land; the consumer
//! (driver) advances the head as packets are handed to the application. A
//! full ring rejects pushes — the caller decides whether that is a drop
//! (legacy NIC, ShRing) or backpressure (CEIO slow path).

use serde::Serialize;
use std::collections::VecDeque;

/// Ring statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct RingStats {
    /// Configured capacity (descriptor count), so exported stats are
    /// self-describing: occupancy numbers can be judged without having to
    /// consult the ring that produced them.
    pub capacity: usize,
    /// Entries successfully pushed.
    pub pushed: u64,
    /// Pushes rejected because the ring was full.
    pub rejected: u64,
    /// Entries popped by the consumer.
    pub popped: u64,
    /// Occupancy high-water mark.
    pub peak_occupancy: usize,
}

/// A bounded FIFO descriptor ring.
#[derive(Debug)]
pub struct HwRing<T> {
    entries: VecDeque<T>,
    capacity: usize,
    stats: RingStats,
    /// Cumulative count of entries ever pushed; serves as the HW tail
    /// pointer in the SW-ring protocol of §4.2.
    tail_seq: u64,
    /// Cumulative count of entries ever popped; the HW head pointer.
    head_seq: u64,
}

impl<T> HwRing<T> {
    /// An empty ring holding at most `capacity` entries.
    ///
    /// The *logical* capacity is exactly `capacity`; only the *eager
    /// allocation* is clamped to 4096 slots so that simulations configured
    /// with huge rings (e.g. 1 M descriptors, common in scalability
    /// sweeps) do not reserve gigabytes up front. Rings that actually fill
    /// beyond 4096 entries grow on demand — pushes are never rejected by
    /// this clamp, only by `capacity` itself.
    pub fn new(capacity: usize) -> HwRing<T> {
        HwRing {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            stats: RingStats {
                capacity,
                ..RingStats::default()
            },
            tail_seq: 0,
            head_seq: 0,
        }
    }

    /// Push an entry; returns it back if the ring is full.
    ///
    /// Bookkeeping (tail pointer, statistics) is updated strictly *after*
    /// the entry is stored, so a panic inside `VecDeque` growth (allocation
    /// failure) can never leave the pointers claiming an entry that was
    /// not actually enqueued.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.entries.len() >= self.capacity {
            self.stats.rejected += 1;
            return Err(item);
        }
        self.entries.push_back(item);
        self.tail_seq += 1;
        self.stats.pushed += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.entries.len());
        debug_assert!(
            self.entries.len() <= self.capacity,
            "HwRing occupancy exceeded capacity"
        );
        debug_assert!(self.head_seq <= self.tail_seq, "head_seq passed tail_seq");
        Ok(())
    }

    /// Pop the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.entries.pop_front()?;
        self.head_seq += 1;
        self.stats.popped += 1;
        debug_assert!(self.head_seq <= self.tail_seq, "head_seq passed tail_seq");
        Some(item)
    }

    /// Peek the oldest entry without consuming it.
    pub fn peek(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ring is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots remaining.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy_fraction(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / self.capacity as f64
    }

    /// Cumulative producer (tail) pointer.
    #[inline]
    pub fn tail_seq(&self) -> u64 {
        self.tail_seq
    }

    /// Cumulative consumer (head) pointer.
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &RingStats {
        &self.stats
    }

    /// Drain all entries (used when tearing down a flow).
    pub fn drain_all(&mut self) -> Vec<T> {
        let drained: Vec<T> = self.entries.drain(..).collect();
        self.head_seq += drained.len() as u64;
        self.stats.popped += drained.len() as u64;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = HwRing::new(4);
        for i in 0..4 {
            r.try_push(i).unwrap();
        }
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn full_ring_rejects_and_returns_item() {
        let mut r = HwRing::new(2);
        r.try_push("a").unwrap();
        r.try_push("b").unwrap();
        assert_eq!(r.try_push("c"), Err("c"));
        assert!(r.is_full());
        assert_eq!(r.stats().rejected, 1);
    }

    #[test]
    fn pointers_are_cumulative() {
        let mut r = HwRing::new(2);
        r.try_push(1).unwrap();
        r.try_push(2).unwrap();
        r.pop();
        r.try_push(3).unwrap();
        assert_eq!(r.tail_seq(), 3);
        assert_eq!(r.head_seq(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = HwRing::new(2);
        r.try_push(7).unwrap();
        assert_eq!(r.peek(), Some(&7));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn occupancy_fraction_and_free() {
        let mut r = HwRing::new(4);
        r.try_push(0).unwrap();
        assert_eq!(r.free(), 3);
        assert!((r.occupancy_fraction() - 0.25).abs() < 1e-12);
        let empty: HwRing<u8> = HwRing::new(0);
        assert_eq!(empty.occupancy_fraction(), 0.0);
    }

    #[test]
    fn drain_all_advances_head() {
        let mut r = HwRing::new(4);
        for i in 0..3 {
            r.try_push(i).unwrap();
        }
        let drained = r.drain_all();
        assert_eq!(drained, vec![0, 1, 2]);
        assert_eq!(r.head_seq(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn drain_all_on_empty_ring_is_inert() {
        let mut r: HwRing<u8> = HwRing::new(4);
        assert!(r.drain_all().is_empty());
        assert_eq!(r.head_seq(), 0);
        assert_eq!(r.tail_seq(), 0);
        assert_eq!(r.stats().popped, 0);
        // A second drain of the same ring is equally inert.
        assert!(r.drain_all().is_empty());
        assert_eq!(r.stats().popped, 0);
    }

    #[test]
    fn drain_all_stats_and_seq_stay_consistent() {
        let mut r = HwRing::new(2);
        r.try_push(1).unwrap();
        r.try_push(2).unwrap();
        // A rejected push must not perturb the pointers the drain settles.
        assert_eq!(r.try_push(3), Err(3));
        assert_eq!(r.pop(), Some(1));
        let drained = r.drain_all();
        assert_eq!(drained, vec![2]);
        // popped counts both the pop and the drain; head catches tail.
        assert_eq!(r.stats().popped, 2);
        assert_eq!(r.stats().pushed, 2);
        assert_eq!(r.stats().rejected, 1);
        assert_eq!(r.head_seq(), r.tail_seq());
        assert_eq!(r.head_seq(), 2);
        // The ring remains usable: seqs keep accumulating across the drain.
        r.try_push(4).unwrap();
        assert_eq!(r.tail_seq(), 3);
        assert_eq!(r.pop(), Some(4));
        assert_eq!(r.head_seq(), 3);
        assert_eq!(r.stats().peak_occupancy, 2);
    }

    #[test]
    fn stats_carry_capacity() {
        let r: HwRing<u8> = HwRing::new(128);
        assert_eq!(r.stats().capacity, 128);
        // The 4096 clamp bounds pre-allocation only: a huge ring still
        // reports (and enforces) its full logical capacity.
        let big: HwRing<u8> = HwRing::new(1 << 20);
        assert_eq!(big.stats().capacity, 1 << 20);
        assert_eq!(big.capacity(), 1 << 20);
    }

    #[test]
    fn logical_capacity_exceeds_prealloc_clamp() {
        let mut r = HwRing::new(5000);
        for i in 0..5000 {
            assert!(r.try_push(i).is_ok(), "push {i} rejected below capacity");
        }
        assert_eq!(r.try_push(5000), Err(5000));
        assert_eq!(r.len(), 5000);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut r = HwRing::new(8);
        for i in 0..5 {
            r.try_push(i).unwrap();
        }
        r.pop();
        r.pop();
        assert_eq!(r.stats().peak_occupancy, 5);
    }
}
