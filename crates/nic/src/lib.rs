//! # ceio-nic — SmartNIC model
//!
//! Models the BlueField-3-class SmartNIC that CEIO is implemented on (§5):
//!
//! * [`ring`] — fixed-capacity hardware descriptor rings with
//!   producer/consumer pointers; the legacy fast-path RX rings, the CEIO
//!   slow-path ring, and ShRing's shared ring are all instances.
//! * [`rmt`] — the reconfigurable match-action (RMT) flow-steering engine:
//!   per-flow rules with updatable actions and hit counters, exactly the
//!   interface CEIO's flow controller programs (§4.1, Fig. 6).
//! * [`queue`] — RX queue identity ([`QueueId`]) and the RSS flow-hash
//!   shard function ([`rss_queue`]) that spreads flows over N receive
//!   queues while preserving per-flow order within a shard.
//! * [`onboard`] — the on-NIC DRAM used for elastic buffering: a bandwidth
//!   server with the internal-PCIe-switch penalty the paper measures
//!   (§6.4), plus byte-capacity accounting.
//! * [`arm`] — the on-NIC ARM core that runs the CEIO runtime: a busy-until
//!   server charging per-operation costs for table updates and credit
//!   management, so control-plane overhead is visible in results (Fig. 11
//!   shows it is negligible — our model lets us verify that, not assume it).

#![warn(missing_docs)]

pub mod arm;
pub mod onboard;
pub mod params;
pub mod queue;
pub mod ring;
pub mod rmt;

pub use arm::ArmCore;
pub use onboard::OnboardMemory;
pub use params::NicParams;
pub use queue::{rss_queue, QueueId};
pub use ring::HwRing;
pub use rmt::{RmtEngine, SteerAction};
