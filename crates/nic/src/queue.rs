//! RX queue identity and RSS flow-hash sharding.
//!
//! A multi-queue NIC spreads flows across N receive queues with a hash of
//! the flow identity (receive-side scaling). All packets of one flow hash
//! to one queue, so per-flow ordering is preserved within its shard while
//! distinct flows fan out across queues — the substrate CEIO §5 assumes
//! underneath its per-flow RMT rules, and what IOCA/A4-style per-queue
//! cache management needs to scale on multi-core receivers.

use serde::{Deserialize, Serialize};

/// Identity of one RX queue (newtype so a queue index can never be
/// confused with a core index or a flow id at an API boundary).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct QueueId(pub usize);

impl QueueId {
    /// Queue 0 — the only queue of a single-queue NIC.
    pub const ZERO: QueueId = QueueId(0);

    /// The queue's index into per-queue arrays.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for QueueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// RSS: map a flow identity onto one of `num_queues` RX queues.
///
/// The hash is a splitmix64-style finalizer — cheap, stateless, and
/// avalanching, standing in for the Toeplitz hash real NICs use. The
/// properties the pipeline relies on:
///
/// * **deterministic** — the same flow always lands on the same queue, so
///   per-flow packet order is preserved within its shard;
/// * **degenerate at 1** — `num_queues <= 1` always yields queue 0, which
///   is what makes the single-queue pipeline bit-identical to the
///   pre-sharding monolith;
/// * **spreading** — nearby flow ids scatter across queues rather than
///   clumping (pinned by tests below).
#[must_use]
pub fn rss_queue(flow: u32, num_queues: usize) -> QueueId {
    if num_queues <= 1 {
        return QueueId::ZERO;
    }
    let mut x = u64::from(flow).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    QueueId((x % num_queues as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_queue_is_always_zero() {
        for f in 0..64 {
            assert_eq!(rss_queue(f, 1), QueueId::ZERO);
            assert_eq!(rss_queue(f, 0), QueueId::ZERO);
        }
    }

    #[test]
    fn hash_is_deterministic() {
        for f in 0..64 {
            assert_eq!(rss_queue(f, 4), rss_queue(f, 4));
        }
    }

    #[test]
    fn eight_flows_cover_four_queues() {
        // The standard contended workload runs 8 flows; RSS must actually
        // fan them out or the scaling experiment measures nothing.
        for n in [2usize, 4] {
            let mut seen = vec![false; n];
            for f in 0..8 {
                seen[rss_queue(f, n).index()] = true;
            }
            assert!(
                seen.iter().all(|&s| s),
                "8 flows must cover all {n} queues, got {seen:?}"
            );
        }
    }

    #[test]
    fn shard_is_in_range() {
        for n in 1..=16usize {
            for f in 0..256 {
                assert!(rss_queue(f, n).index() < n.max(1));
            }
        }
    }

    #[test]
    fn display_and_index_agree() {
        let q = QueueId(3);
        assert_eq!(q.to_string(), "3");
        assert_eq!(q.index(), 3);
    }
}
