//! CPU parameters, defaulted to the paper's Xeon Silver 4309Y cores pinned
//! one per flow, polling DPDK-style.

use ceio_sim::Duration;
use serde::{Deserialize, Serialize};

/// Configuration of the CPU model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuParams {
    /// Per-packet driver overhead: descriptor parse, ring bookkeeping,
    /// buffer accounting. Paid per packet regardless of app.
    pub per_packet_overhead: Duration,
    /// Re-poll delay after an empty poll.
    pub poll_interval: Duration,
    /// Maximum packets taken per poll (DPDK burst).
    pub batch_size: usize,
    /// Cost of the head-pointer MMIO update after a batch completes.
    pub head_update: Duration,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            per_packet_overhead: Duration::nanos(25),
            poll_interval: Duration::nanos(200),
            batch_size: 32,
            head_update: Duration::nanos(50),
        }
    }
}
