//! # ceio-cpu — host CPU model
//!
//! Models the CPU side of stage ⑤ in Fig. 2: dedicated cores polling RX
//! rings (DPDK-style, §2.3 pins one core per I/O flow) and handing payloads
//! to applications.
//!
//! * [`CpuCore`] — a busy-until execution timeline per core with
//!   busy/packet accounting. The *memory* portion of packet processing (LLC
//!   hit vs DRAM miss) is charged by the host machine through `ceio-mem`;
//!   the core charges only compute.
//! * [`Application`] — the consumer interface: given a received packet,
//!   report the compute time, copy bytes, and response bytes it generates.
//!   `ceio-apps` implements the paper's workloads against this trait.
//! * [`CpuParams`] — polling cadence and batch size (DPDK burst of 32).

#![warn(missing_docs)]

pub mod app;
pub mod core;
pub mod params;

pub use app::{AppWork, Application};
pub use core::{CoreStats, CpuCore};
pub use params::CpuParams;
