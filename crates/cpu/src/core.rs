//! A polling CPU core's execution timeline.

use ceio_sim::{Duration, Time};
use serde::Serialize;

/// Per-core statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct CoreStats {
    /// Packets fully processed by this core.
    pub packets: u64,
    /// Busy nanoseconds (compute + charged memory stalls).
    pub busy_ns: u64,
    /// Polls that found no work.
    pub empty_polls: u64,
    /// Polls that found work.
    pub productive_polls: u64,
}

/// One host core, pinned to an I/O flow (or a ring set).
#[derive(Debug, Default)]
pub struct CpuCore {
    busy_until: Time,
    stats: CoreStats,
}

impl CpuCore {
    /// An idle core.
    pub fn new() -> CpuCore {
        CpuCore::default()
    }

    /// Charge `work` of execution starting no earlier than `start`; returns
    /// the completion instant. Used for both compute and memory-stall time
    /// (the core is equally unavailable during either).
    pub fn run(&mut self, start: Time, work: Duration) -> Time {
        let begin = self.busy_until.max(start);
        self.busy_until = begin + work;
        self.stats.busy_ns += work.as_nanos();
        self.busy_until
    }

    /// Record a completed packet.
    #[inline]
    pub fn count_packet(&mut self) {
        self.stats.packets += 1;
    }

    /// Record a poll outcome.
    #[inline]
    pub fn count_poll(&mut self, productive: bool) {
        if productive {
            self.stats.productive_polls += 1;
        } else {
            self.stats.empty_polls += 1;
        }
    }

    /// Instant the core becomes idle.
    #[inline]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Busy fraction over an observation window.
    pub fn utilization(&self, window: Duration) -> f64 {
        if window.as_nanos() == 0 {
            return 0.0;
        }
        (self.stats.busy_ns as f64 / window.as_nanos() as f64).min(1.0)
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_serializes_on_the_core() {
        let mut c = CpuCore::new();
        let a = c.run(Time(0), Duration::nanos(100));
        let b = c.run(Time(50), Duration::nanos(100));
        assert_eq!(a, Time(100));
        assert_eq!(b, Time(200), "second batch waits for the first");
    }

    #[test]
    fn idle_time_not_charged() {
        let mut c = CpuCore::new();
        c.run(Time(0), Duration::nanos(10));
        c.run(Time(1_000), Duration::nanos(10));
        assert_eq!(c.stats().busy_ns, 20);
        assert_eq!(c.busy_until(), Time(1_010));
    }

    #[test]
    fn poll_accounting() {
        let mut c = CpuCore::new();
        c.count_poll(true);
        c.count_poll(false);
        c.count_poll(false);
        assert_eq!(c.stats().productive_polls, 1);
        assert_eq!(c.stats().empty_polls, 2);
    }

    #[test]
    fn utilization_clamped() {
        let mut c = CpuCore::new();
        c.run(Time(0), Duration::nanos(800));
        assert!((c.utilization(Duration::nanos(1_000)) - 0.8).abs() < 1e-12);
        assert_eq!(c.utilization(Duration::nanos(100)), 1.0);
        assert_eq!(c.utilization(Duration::ZERO), 0.0);
    }
}
