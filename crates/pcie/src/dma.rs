//! The PCIe DMA engine: credit-limited outstanding transfers over a
//! [`PcieLink`].
//!
//! Writes (NIC→host packet uploads) are posted: they consume a write credit
//! when issued and release it when the host memory controller retires the
//! data. Reads (host→NIC slow-path fetches) are non-posted: a request TLP
//! travels to the NIC, the data is fetched there, and a completion travels
//! back. Credit exhaustion models the PCIe-credit starvation of §2.2.

use crate::link::{Direction, PcieLink};
use crate::params::PcieParams;
use ceio_sim::Time;
#[cfg(feature = "trace")]
use ceio_telemetry::{TraceEvent, TraceKind, TraceRing};
use serde::Serialize;

/// Why a DMA could not be issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// All posted-write credits are in flight.
    NoWriteCredit,
    /// All non-posted-read credits are in flight.
    NoReadCredit,
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::NoWriteCredit => write!(f, "no PCIe write credits available"),
            DmaError::NoReadCredit => write!(f, "no PCIe read credits available"),
        }
    }
}

impl std::error::Error for DmaError {}

/// Engine statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct DmaStats {
    /// Writes issued.
    pub writes: u64,
    /// Reads issued.
    pub reads: u64,
    /// Write attempts rejected for lack of credits.
    pub write_stalls: u64,
    /// Read attempts rejected for lack of credits.
    pub read_stalls: u64,
}

/// The DMA engine. Owns the link; the host machine owns the engine.
#[derive(Debug)]
pub struct DmaEngine {
    /// The underlying full-duplex link (public: stats & direct transfers).
    pub link: PcieLink,
    inflight_writes: u32,
    inflight_reads: u32,
    stats: DmaStats,
    #[cfg(feature = "trace")]
    tracer: Option<TraceRing>,
}

impl DmaEngine {
    /// An engine over a fresh link with the given parameters.
    pub fn new(params: PcieParams) -> DmaEngine {
        DmaEngine {
            link: PcieLink::new(params),
            inflight_writes: 0,
            inflight_reads: 0,
            stats: DmaStats::default(),
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Arm event recording into a fresh drop-oldest ring of `cap` events.
    #[cfg(feature = "trace")]
    pub fn arm_trace(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(cap));
    }

    /// Drain recorded events (and the dropped count), if armed.
    #[cfg(feature = "trace")]
    pub fn trace_take(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.tracer.as_mut() {
            Some(r) => {
                let evs = r.events();
                let dropped = r.dropped();
                r.clear();
                (evs, dropped)
            }
            None => (Vec::new(), 0),
        }
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&mut self, at: Time, kind: TraceKind, value: u64) {
        if let Some(r) = self.tracer.as_mut() {
            r.push(TraceEvent {
                at,
                // The engine sees payloads, not flows.
                flow: None,
                kind,
                value,
            });
        }
    }

    /// Issue a posted DMA write of `payload` bytes toward the host.
    /// Returns the instant the data arrives at the host IIO buffer.
    pub fn try_write(&mut self, now: Time, payload: u64) -> Result<Time, DmaError> {
        if self.inflight_writes >= self.link.params().max_inflight_writes {
            self.stats.write_stalls += 1;
            #[cfg(feature = "trace")]
            self.trace(now, TraceKind::DmaWriteStall, payload);
            return Err(DmaError::NoWriteCredit);
        }
        self.inflight_writes += 1;
        self.stats.writes += 1;
        #[cfg(feature = "trace")]
        self.trace(now, TraceKind::DmaWriteIssue, payload);
        Ok(self.link.transfer(now, Direction::ToHost, payload))
    }

    /// The host retired a previously issued write: release its credit.
    pub fn complete_write(&mut self) {
        debug_assert!(self.inflight_writes > 0, "write completion underflow");
        self.inflight_writes = self.inflight_writes.saturating_sub(1);
    }

    /// Issue a non-posted DMA read request (host→NIC). Returns the instant
    /// the request arrives at the NIC; the caller models the NIC-side fetch
    /// and then calls [`DmaEngine::read_completion`].
    pub fn try_read_request(&mut self, now: Time) -> Result<Time, DmaError> {
        if self.inflight_reads >= self.link.params().max_inflight_reads {
            self.stats.read_stalls += 1;
            #[cfg(feature = "trace")]
            self.trace(now, TraceKind::DmaReadStall, 0);
            return Err(DmaError::NoReadCredit);
        }
        self.inflight_reads += 1;
        self.stats.reads += 1;
        #[cfg(feature = "trace")]
        self.trace(now, TraceKind::DmaReadIssue, 0);
        // A read request TLP carries no payload.
        Ok(self.link.transfer(now, Direction::ToNic, 0))
    }

    /// The NIC returns `payload` bytes of read completion starting at
    /// `nic_time`; returns the instant the data lands at the host and
    /// releases the read credit.
    pub fn read_completion(&mut self, nic_time: Time, payload: u64) -> Time {
        debug_assert!(self.inflight_reads > 0, "read completion underflow");
        self.inflight_reads = self.inflight_reads.saturating_sub(1);
        #[cfg(feature = "trace")]
        self.trace(nic_time, TraceKind::DmaReadComplete, payload);
        self.link.transfer(nic_time, Direction::ToHost, payload)
    }

    /// An MMIO doorbell write from CPU to NIC: returns the instant it is
    /// visible at the NIC (the CPU itself is only stalled `mmio_write`).
    pub fn doorbell(&mut self, now: Time) -> Time {
        self.link.transfer(now, Direction::ToNic, 8)
    }

    /// Outstanding posted writes.
    #[inline]
    pub fn inflight_writes(&self) -> u32 {
        self.inflight_writes
    }

    /// Outstanding non-posted reads.
    #[inline]
    pub fn inflight_reads(&self) -> u32 {
        self.inflight_reads
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &DmaStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(max_writes: u32, max_reads: u32) -> DmaEngine {
        DmaEngine::new(PcieParams {
            max_inflight_writes: max_writes,
            max_inflight_reads: max_reads,
            ..PcieParams::default()
        })
    }

    #[test]
    fn write_consumes_and_completion_releases_credit() {
        let mut e = engine(1, 1);
        assert!(e.try_write(Time(0), 2048).is_ok());
        assert_eq!(e.inflight_writes(), 1);
        assert_eq!(e.try_write(Time(0), 2048), Err(DmaError::NoWriteCredit));
        e.complete_write();
        assert!(e.try_write(Time(10_000), 2048).is_ok());
        assert_eq!(e.stats().write_stalls, 1);
    }

    #[test]
    fn read_round_trip_pays_both_directions() {
        let mut e = engine(8, 8);
        let at_nic = e.try_read_request(Time(0)).unwrap();
        assert!(at_nic >= Time(0) + e.link.params().propagation);
        let at_host = e.read_completion(at_nic, 2048);
        assert!(at_host > at_nic + e.link.params().propagation);
        assert_eq!(e.inflight_reads(), 0);
    }

    #[test]
    fn read_credits_enforced() {
        let mut e = engine(8, 2);
        e.try_read_request(Time(0)).unwrap();
        e.try_read_request(Time(0)).unwrap();
        assert_eq!(e.try_read_request(Time(0)), Err(DmaError::NoReadCredit));
        assert_eq!(e.stats().read_stalls, 1);
    }

    #[test]
    fn doorbell_travels_to_nic() {
        let mut e = engine(8, 8);
        let at_nic = e.doorbell(Time(0));
        assert!(at_nic >= Time(0) + e.link.params().propagation);
    }

    #[test]
    fn writes_serialize_on_shared_direction() {
        let mut e = engine(64, 8);
        let a = e.try_write(Time(0), 4096).unwrap();
        let b = e.try_write(Time(0), 4096).unwrap();
        assert!(b > a, "second write must queue behind the first");
    }
}
