//! The PCIe DMA engine: credit-limited outstanding transfers over a
//! [`PcieLink`].
//!
//! Writes (NIC→host packet uploads) are posted: they consume a write credit
//! when issued and release it when the host memory controller retires the
//! data. Reads (host→NIC slow-path fetches) are non-posted: a request TLP
//! travels to the NIC, the data is fetched there, and a completion travels
//! back. Credit exhaustion models the PCIe-credit starvation of §2.2.

use crate::link::{Direction, PcieLink};
use crate::params::PcieParams;
#[cfg(feature = "chaos")]
use ceio_chaos::{FaultInjector, FaultSite};
use ceio_sim::Time;
#[cfg(feature = "trace")]
use ceio_telemetry::{TraceEvent, TraceKind, TraceRing};
use serde::Serialize;

/// Why a DMA could not be issued.
///
/// The credit variants are structural back-pressure (they resolve when
/// in-flight transactions retire); the fault/timeout variants are
/// link-level failures, only ever produced when a chaos [`FaultInjector`]
/// is armed — callers must retry them with backoff or surface them in
/// stats, never discard them silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// All posted-write credits are in flight.
    NoWriteCredit,
    /// All non-posted-read credits are in flight.
    NoReadCredit,
    /// A posted write failed at the link level (injected fault).
    WriteFault,
    /// A posted write timed out before the link accepted it (injected).
    WriteTimeout,
    /// A non-posted read request failed at the link level (injected).
    ReadFault,
    /// A non-posted read request timed out (injected).
    ReadTimeout,
}

impl DmaError {
    /// Credit exhaustion: resolves by itself when in-flight transactions
    /// retire, so the caller should wait for a completion, not back off.
    #[inline]
    pub fn is_credit_stall(self) -> bool {
        matches!(self, DmaError::NoWriteCredit | DmaError::NoReadCredit)
    }

    /// A transient link failure that warrants bounded retry with backoff.
    #[inline]
    pub fn is_transient_fault(self) -> bool {
        !self.is_credit_stall()
    }
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::NoWriteCredit => write!(f, "no PCIe write credits available"),
            DmaError::NoReadCredit => write!(f, "no PCIe read credits available"),
            DmaError::WriteFault => write!(f, "posted DMA write failed (injected link fault)"),
            DmaError::WriteTimeout => write!(f, "posted DMA write timed out (injected)"),
            DmaError::ReadFault => write!(f, "DMA read request failed (injected link fault)"),
            DmaError::ReadTimeout => write!(f, "DMA read request timed out (injected)"),
        }
    }
}

impl std::error::Error for DmaError {}

/// Engine statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct DmaStats {
    /// Writes issued.
    pub writes: u64,
    /// Reads issued.
    pub reads: u64,
    /// Write attempts rejected for lack of credits.
    pub write_stalls: u64,
    /// Read attempts rejected for lack of credits.
    pub read_stalls: u64,
    /// Injected write failures (faults + timeouts). Zero without chaos.
    pub write_faults: u64,
    /// Injected read failures (faults + timeouts). Zero without chaos.
    pub read_faults: u64,
}

/// The DMA engine. Owns the link; the host machine owns the engine.
///
/// The write side is multiplexed over **channels** — one per RX queue in a
/// multi-queue receive pipeline. All channels share the one physical link
/// (transfers still serialize on [`PcieLink`] wire occupancy and the
/// link-wide posted-credit budget); what a channel owns is its *slice* of
/// the posted-write credits, so one congested queue cannot starve the
/// descriptor issue of its siblings. With a single channel (the default)
/// the slice is the whole budget and the engine behaves exactly like the
/// pre-multiplexed model.
#[derive(Debug)]
pub struct DmaEngine {
    /// The underlying full-duplex link (public: stats & direct transfers).
    pub link: PcieLink,
    inflight_writes: u32,
    inflight_reads: u32,
    /// Outstanding posted writes per channel.
    chan_inflight: Vec<u32>,
    /// Per-channel posted-credit slice (`ceil(link budget / channels)`).
    chan_cap: u32,
    stats: DmaStats,
    #[cfg(feature = "trace")]
    tracer: Option<TraceRing>,
    #[cfg(feature = "chaos")]
    injector: Option<FaultInjector>,
}

impl DmaEngine {
    /// An engine over a fresh link with the given parameters.
    pub fn new(params: PcieParams) -> DmaEngine {
        let cap = params.max_inflight_writes;
        DmaEngine {
            link: PcieLink::new(params),
            inflight_writes: 0,
            inflight_reads: 0,
            chan_inflight: vec![0],
            chan_cap: cap,
            stats: DmaStats::default(),
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "chaos")]
            injector: None,
        }
    }

    /// Partition the posted-write credit budget across `n` channels (one
    /// per RX queue). Each channel may keep at most `ceil(budget / n)`
    /// writes in flight; the link-wide budget stays enforced on top, so
    /// the slices over-subscribe gracefully rather than strand credits to
    /// rounding. Reconfiguring clears per-channel in-flight accounting —
    /// call it at build time, before any traffic.
    pub fn set_write_channels(&mut self, n: usize) {
        let n = n.max(1);
        debug_assert_eq!(
            self.inflight_writes, 0,
            "invariant: channel layout must not change under in-flight writes"
        );
        let budget = self.link.params().max_inflight_writes;
        self.chan_inflight = vec![0; n];
        self.chan_cap = budget.div_ceil(n as u32).max(1);
    }

    /// Number of write channels.
    #[inline]
    pub fn write_channels(&self) -> usize {
        self.chan_inflight.len()
    }

    /// Per-channel posted-credit slice.
    #[inline]
    pub fn channel_write_cap(&self) -> u32 {
        self.chan_cap
    }

    /// Arm deterministic fault injection on this engine.
    #[cfg(feature = "chaos")]
    pub fn arm_chaos(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Per-site injection counters (empty when chaos is disarmed).
    #[cfg(feature = "chaos")]
    pub fn chaos_stats(&self) -> Option<&ceio_chaos::ChaosStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Evaluate the write-side fault sites for one issue attempt.
    #[cfg(feature = "chaos")]
    #[inline]
    fn inject_write_fault(&mut self) -> Option<DmaError> {
        let inj = self.injector.as_mut()?;
        if inj.fire(FaultSite::DmaWriteFault) {
            return Some(DmaError::WriteFault);
        }
        if inj.fire(FaultSite::DmaWriteTimeout) {
            return Some(DmaError::WriteTimeout);
        }
        None
    }

    /// Evaluate the read-side fault sites for one issue attempt.
    #[cfg(feature = "chaos")]
    #[inline]
    fn inject_read_fault(&mut self) -> Option<DmaError> {
        let inj = self.injector.as_mut()?;
        if inj.fire(FaultSite::DmaReadFault) {
            return Some(DmaError::ReadFault);
        }
        if inj.fire(FaultSite::DmaReadTimeout) {
            return Some(DmaError::ReadTimeout);
        }
        None
    }

    /// Arm event recording into a fresh drop-oldest ring of `cap` events.
    #[cfg(feature = "trace")]
    pub fn arm_trace(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(cap));
    }

    /// Drain recorded events (and the dropped count), if armed.
    #[cfg(feature = "trace")]
    pub fn trace_take(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.tracer.as_mut() {
            Some(r) => {
                let evs = r.events();
                let dropped = r.dropped();
                r.clear();
                (evs, dropped)
            }
            None => (Vec::new(), 0),
        }
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&mut self, at: Time, kind: TraceKind, value: u64) {
        if let Some(r) = self.tracer.as_mut() {
            r.push(TraceEvent {
                at,
                // The engine sees payloads, not flows.
                flow: None,
                kind,
                value,
            });
        }
    }

    /// Issue a posted DMA write of `payload` bytes toward the host on
    /// channel 0 (the single-queue entry point).
    /// Returns the instant the data arrives at the host IIO buffer.
    pub fn try_write(&mut self, now: Time, payload: u64) -> Result<Time, DmaError> {
        self.try_write_on(0, now, payload)
    }

    /// Issue a posted DMA write of `payload` bytes toward the host on
    /// write channel `ch`. Fails with [`DmaError::NoWriteCredit`] when
    /// either the link-wide budget or the channel's slice is exhausted.
    pub fn try_write_on(&mut self, ch: usize, now: Time, payload: u64) -> Result<Time, DmaError> {
        debug_assert!(ch < self.chan_inflight.len(), "write channel out of range");
        let ch = ch.min(self.chan_inflight.len() - 1);
        if self.inflight_writes >= self.link.params().max_inflight_writes
            || self.chan_inflight[ch] >= self.chan_cap
        {
            self.stats.write_stalls += 1;
            #[cfg(feature = "trace")]
            self.trace(now, TraceKind::DmaWriteStall, payload);
            return Err(DmaError::NoWriteCredit);
        }
        #[cfg(feature = "chaos")]
        if let Some(err) = self.inject_write_fault() {
            // The link rejected the transaction: no credit consumed.
            self.stats.write_faults += 1;
            #[cfg(feature = "trace")]
            self.trace(now, TraceKind::DmaFault, payload);
            return Err(err);
        }
        self.inflight_writes += 1;
        self.chan_inflight[ch] += 1;
        self.stats.writes += 1;
        #[cfg(feature = "trace")]
        self.trace(now, TraceKind::DmaWriteIssue, payload);
        Ok(self.link.transfer(now, Direction::ToHost, payload))
    }

    /// The host retired a previously issued channel-0 write: release its
    /// credit.
    pub fn complete_write(&mut self) {
        self.complete_write_on(0);
    }

    /// The host retired a previously issued write on channel `ch`:
    /// release its credit back to both the channel slice and the
    /// link-wide budget.
    pub fn complete_write_on(&mut self, ch: usize) {
        debug_assert!(ch < self.chan_inflight.len(), "write channel out of range");
        let ch = ch.min(self.chan_inflight.len() - 1);
        debug_assert!(self.inflight_writes > 0, "write completion underflow");
        debug_assert!(
            self.chan_inflight[ch] > 0,
            "write completion underflow on channel"
        );
        self.inflight_writes = self.inflight_writes.saturating_sub(1);
        self.chan_inflight[ch] = self.chan_inflight[ch].saturating_sub(1);
    }

    /// Issue a non-posted DMA read request (host→NIC). Returns the instant
    /// the request arrives at the NIC; the caller models the NIC-side fetch
    /// and then calls [`DmaEngine::read_completion`].
    pub fn try_read_request(&mut self, now: Time) -> Result<Time, DmaError> {
        if self.inflight_reads >= self.link.params().max_inflight_reads {
            self.stats.read_stalls += 1;
            #[cfg(feature = "trace")]
            self.trace(now, TraceKind::DmaReadStall, 0);
            return Err(DmaError::NoReadCredit);
        }
        #[cfg(feature = "chaos")]
        if let Some(err) = self.inject_read_fault() {
            self.stats.read_faults += 1;
            #[cfg(feature = "trace")]
            self.trace(now, TraceKind::DmaFault, 0);
            return Err(err);
        }
        self.inflight_reads += 1;
        self.stats.reads += 1;
        #[cfg(feature = "trace")]
        self.trace(now, TraceKind::DmaReadIssue, 0);
        // A read request TLP carries no payload.
        Ok(self.link.transfer(now, Direction::ToNic, 0))
    }

    /// The NIC returns `payload` bytes of read completion starting at
    /// `nic_time`; returns the instant the data lands at the host and
    /// releases the read credit.
    pub fn read_completion(&mut self, nic_time: Time, payload: u64) -> Time {
        debug_assert!(self.inflight_reads > 0, "read completion underflow");
        self.inflight_reads = self.inflight_reads.saturating_sub(1);
        #[cfg(feature = "trace")]
        self.trace(nic_time, TraceKind::DmaReadComplete, payload);
        self.link.transfer(nic_time, Direction::ToHost, payload)
    }

    /// An MMIO doorbell write from CPU to NIC: returns the instant it is
    /// visible at the NIC (the CPU itself is only stalled `mmio_write`).
    pub fn doorbell(&mut self, now: Time) -> Time {
        self.link.transfer(now, Direction::ToNic, 8)
    }

    /// Outstanding posted writes.
    #[inline]
    pub fn inflight_writes(&self) -> u32 {
        self.inflight_writes
    }

    /// Outstanding posted writes on channel `ch` (0 when out of range).
    #[inline]
    pub fn inflight_writes_on(&self, ch: usize) -> u32 {
        self.chan_inflight.get(ch).copied().unwrap_or(0)
    }

    /// Outstanding non-posted reads.
    #[inline]
    pub fn inflight_reads(&self) -> u32 {
        self.inflight_reads
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &DmaStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(max_writes: u32, max_reads: u32) -> DmaEngine {
        DmaEngine::new(PcieParams {
            max_inflight_writes: max_writes,
            max_inflight_reads: max_reads,
            ..PcieParams::default()
        })
    }

    #[test]
    fn write_consumes_and_completion_releases_credit() {
        let mut e = engine(1, 1);
        assert!(e.try_write(Time(0), 2048).is_ok());
        assert_eq!(e.inflight_writes(), 1);
        assert_eq!(e.try_write(Time(0), 2048), Err(DmaError::NoWriteCredit));
        e.complete_write();
        assert!(e.try_write(Time(10_000), 2048).is_ok());
        assert_eq!(e.stats().write_stalls, 1);
    }

    #[test]
    fn read_round_trip_pays_both_directions() {
        let mut e = engine(8, 8);
        let at_nic = e.try_read_request(Time(0)).unwrap();
        assert!(at_nic >= Time(0) + e.link.params().propagation);
        let at_host = e.read_completion(at_nic, 2048);
        assert!(at_host > at_nic + e.link.params().propagation);
        assert_eq!(e.inflight_reads(), 0);
    }

    #[test]
    fn read_credits_enforced() {
        let mut e = engine(8, 2);
        e.try_read_request(Time(0)).unwrap();
        e.try_read_request(Time(0)).unwrap();
        assert_eq!(e.try_read_request(Time(0)), Err(DmaError::NoReadCredit));
        assert_eq!(e.stats().read_stalls, 1);
    }

    #[test]
    fn doorbell_travels_to_nic() {
        let mut e = engine(8, 8);
        let at_nic = e.doorbell(Time(0));
        assert!(at_nic >= Time(0) + e.link.params().propagation);
    }

    #[test]
    fn writes_serialize_on_shared_direction() {
        let mut e = engine(64, 8);
        let a = e.try_write(Time(0), 4096).unwrap();
        let b = e.try_write(Time(0), 4096).unwrap();
        assert!(b > a, "second write must queue behind the first");
    }

    #[test]
    fn single_channel_matches_unchanneled_behavior() {
        // The default engine is one channel whose slice is the whole
        // budget: try_write/complete_write are channel 0 and the stall
        // point is exactly the link-wide cap, as before multiplexing.
        let mut e = engine(2, 1);
        assert_eq!(e.write_channels(), 1);
        assert_eq!(e.channel_write_cap(), 2);
        assert!(e.try_write(Time(0), 64).is_ok());
        assert!(e.try_write_on(0, Time(0), 64).is_ok());
        assert_eq!(e.try_write(Time(0), 64), Err(DmaError::NoWriteCredit));
        assert_eq!(e.inflight_writes_on(0), 2);
        e.complete_write();
        e.complete_write_on(0);
        assert_eq!(e.inflight_writes(), 0);
        assert_eq!(e.inflight_writes_on(0), 0);
    }

    #[test]
    fn channel_slices_partition_the_write_budget() {
        let mut e = engine(4, 1);
        e.set_write_channels(2);
        assert_eq!(e.channel_write_cap(), 2);
        // Fill channel 0's slice: its third write stalls...
        assert!(e.try_write_on(0, Time(0), 64).is_ok());
        assert!(e.try_write_on(0, Time(0), 64).is_ok());
        assert_eq!(e.try_write_on(0, Time(0), 64), Err(DmaError::NoWriteCredit));
        // ...while channel 1 still issues from its own slice.
        assert!(e.try_write_on(1, Time(0), 64).is_ok());
        assert_eq!(e.inflight_writes(), 3);
        assert_eq!(e.inflight_writes_on(0), 2);
        assert_eq!(e.inflight_writes_on(1), 1);
        // Completion on channel 0 reopens only channel 0's slice.
        e.complete_write_on(0);
        assert!(e.try_write_on(0, Time(1_000), 64).is_ok());
        assert_eq!(e.stats().write_stalls, 1);
    }

    #[test]
    fn link_budget_caps_oversubscribed_slices() {
        // ceil(4/3) = 2 per channel: slices sum to 6, but the link-wide
        // budget of 4 still rules.
        let mut e = engine(4, 1);
        e.set_write_channels(3);
        assert_eq!(e.channel_write_cap(), 2);
        for ch in 0..2 {
            assert!(e.try_write_on(ch, Time(0), 64).is_ok());
            assert!(e.try_write_on(ch, Time(0), 64).is_ok());
        }
        assert_eq!(e.inflight_writes(), 4);
        assert_eq!(e.try_write_on(2, Time(0), 64), Err(DmaError::NoWriteCredit));
    }

    #[test]
    fn error_taxonomy_is_partitioned() {
        use DmaError::*;
        for e in [NoWriteCredit, NoReadCredit] {
            assert!(e.is_credit_stall() && !e.is_transient_fault());
        }
        for e in [WriteFault, WriteTimeout, ReadFault, ReadTimeout] {
            assert!(e.is_transient_fault() && !e.is_credit_stall());
            assert!(!e.to_string().is_empty());
        }
    }

    #[cfg(feature = "chaos")]
    mod chaos {
        use super::*;
        use ceio_chaos::{FaultPlan, FaultSite};

        #[test]
        fn injected_write_fault_consumes_no_credit_and_counts() {
            let mut e = engine(4, 4);
            let plan = FaultPlan::new(7).with_rate(FaultSite::DmaWriteFault, 1.0);
            e.arm_chaos(plan.injector("dma"));
            assert_eq!(e.try_write(Time(0), 2048), Err(DmaError::WriteFault));
            assert_eq!(e.inflight_writes(), 0, "fault must not leak a credit");
            assert_eq!(e.stats().write_faults, 1);
            assert_eq!(e.stats().writes, 0);
            let cs = e.chaos_stats().expect("armed");
            assert_eq!(cs.at(FaultSite::DmaWriteFault), 1);
        }

        #[test]
        fn injected_read_timeout_surfaces_as_error() {
            let mut e = engine(4, 4);
            let plan = FaultPlan::new(7).with_rate(FaultSite::DmaReadTimeout, 1.0);
            e.arm_chaos(plan.injector("dma"));
            assert_eq!(e.try_read_request(Time(0)), Err(DmaError::ReadTimeout));
            assert_eq!(e.inflight_reads(), 0);
            assert_eq!(e.stats().read_faults, 1);
        }

        #[test]
        fn fault_schedule_is_deterministic() {
            let plan = FaultPlan::new(99).with_rate(FaultSite::DmaWriteFault, 0.5);
            let run = || {
                let mut e = engine(1024, 8);
                e.arm_chaos(plan.injector("dma"));
                (0..256)
                    .map(|i| e.try_write(Time(i), 64).is_ok())
                    .collect::<Vec<bool>>()
            };
            assert_eq!(run(), run());
        }

        #[test]
        fn credit_stall_still_wins_over_injection() {
            // Exhaust credits first: the stall path must be unchanged by
            // an armed injector (no draw, no double counting).
            let mut e = engine(1, 8);
            let plan = FaultPlan::new(7);
            e.arm_chaos(plan.injector("dma"));
            assert!(e.try_write(Time(0), 64).is_ok());
            assert_eq!(e.try_write(Time(0), 64), Err(DmaError::NoWriteCredit));
            assert_eq!(e.stats().write_stalls, 1);
            assert_eq!(e.stats().write_faults, 0);
        }
    }
}
