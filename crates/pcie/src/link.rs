//! Full-duplex PCIe link: one FIFO serialization server per direction plus
//! a fixed propagation delay.

use crate::params::PcieParams;
use crate::tlp;
use ceio_sim::{Duration, Time};
use serde::Serialize;

/// Transfer direction over the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// NIC → host (inbound DMA writes, read completions to host).
    ToHost,
    /// Host → NIC (doorbells, DMA read requests, descriptor fetches).
    ToNic,
}

/// Per-direction statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct LinkStats {
    /// Payload bytes moved.
    pub payload_bytes: u64,
    /// Wire bytes moved (payload + TLP overhead).
    pub wire_bytes: u64,
    /// Transfers performed.
    pub transfers: u64,
}

#[derive(Debug, Default)]
struct DirState {
    busy_until: Time,
    stats: LinkStats,
}

/// The PCIe link between NIC and host.
#[derive(Debug)]
pub struct PcieLink {
    params: PcieParams,
    to_host: DirState,
    to_nic: DirState,
}

impl PcieLink {
    /// A link with the given parameters, idle at time zero.
    pub fn new(params: PcieParams) -> PcieLink {
        PcieLink {
            params,
            to_host: DirState::default(),
            to_nic: DirState::default(),
        }
    }

    /// The configuration of this link.
    #[inline]
    pub fn params(&self) -> &PcieParams {
        &self.params
    }

    fn dir_mut(&mut self, d: Direction) -> &mut DirState {
        match d {
            Direction::ToHost => &mut self.to_host,
            Direction::ToNic => &mut self.to_nic,
        }
    }

    /// Serialize `payload` bytes in direction `d` starting no earlier than
    /// `now`; returns the arrival instant at the far side (serialization
    /// complete + propagation).
    pub fn transfer(&mut self, now: Time, d: Direction, payload: u64) -> Time {
        let wire = tlp::wire_bytes(
            payload,
            self.params.max_payload_size,
            self.params.tlp_overhead,
        );
        let ser = self.params.bandwidth.transfer_time(wire);
        let prop = self.params.propagation;
        let dir = self.dir_mut(d);
        let start = dir.busy_until.max(now);
        dir.busy_until = start + ser;
        dir.stats.payload_bytes += payload;
        dir.stats.wire_bytes += wire;
        dir.stats.transfers += 1;
        dir.busy_until + prop
    }

    /// Serialization backlog in direction `d` relative to `now`.
    pub fn backlog(&self, now: Time, d: Direction) -> Duration {
        let dir = match d {
            Direction::ToHost => &self.to_host,
            Direction::ToNic => &self.to_nic,
        };
        dir.busy_until.since(now)
    }

    /// Read-only statistics for direction `d`.
    pub fn stats(&self, d: Direction) -> &LinkStats {
        match d {
            Direction::ToHost => &self.to_host.stats,
            Direction::ToNic => &self.to_nic.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> PcieLink {
        PcieLink::new(PcieParams::default())
    }

    #[test]
    fn transfer_includes_serialization_and_propagation() {
        let mut l = link();
        let arrive = l.transfer(Time(0), Direction::ToHost, 2048);
        let wire = tlp::wire_bytes(2048, 256, 24);
        let expect = Time(0) + l.params().bandwidth.transfer_time(wire) + l.params().propagation;
        assert_eq!(arrive, expect);
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let a = l.transfer(Time(0), Direction::ToHost, 1 << 20);
        let b = l.transfer(Time(0), Direction::ToNic, 64);
        // The huge inbound transfer must not delay the doorbell.
        assert!(b < a);
        assert_eq!(l.stats(Direction::ToNic).transfers, 1);
        assert_eq!(l.stats(Direction::ToHost).transfers, 1);
    }

    #[test]
    fn same_direction_serializes_fifo() {
        let mut l = link();
        let a = l.transfer(Time(0), Direction::ToHost, 4096);
        let b = l.transfer(Time(0), Direction::ToHost, 4096);
        assert!(b > a);
        // Exactly one extra serialization interval apart.
        let wire = tlp::wire_bytes(4096, 256, 24);
        assert_eq!(b.since(a), l.params().bandwidth.transfer_time(wire));
    }

    #[test]
    fn backlog_tracks_busy_time() {
        let mut l = link();
        assert_eq!(l.backlog(Time(0), Direction::ToHost), Duration::ZERO);
        l.transfer(Time(0), Direction::ToHost, 1 << 20);
        assert!(l.backlog(Time(0), Direction::ToHost) > Duration::ZERO);
    }

    #[test]
    fn wire_bytes_accounted() {
        let mut l = link();
        l.transfer(Time(0), Direction::ToHost, 2048);
        let s = l.stats(Direction::ToHost);
        assert_eq!(s.payload_bytes, 2048);
        assert_eq!(s.wire_bytes, 2048 + 8 * 24);
    }
}
