//! Transaction Layer Packet sizing.
//!
//! A DMA payload is segmented into Max-Payload-Size chunks, each paying the
//! TLP header/framing overhead. This makes small-packet transfers
//! proportionally more expensive on the wire — one ingredient of the §6.3
//! observation that large packets amortize per-packet overheads.

/// Wire bytes consumed by transferring `payload` bytes, given the link's
/// max payload size and per-TLP overhead.
///
/// Zero-byte payloads still cost one TLP (e.g. a zero-length read probe).
pub fn wire_bytes(payload: u64, max_payload_size: u64, tlp_overhead: u64) -> u64 {
    let mps = max_payload_size.max(1);
    let tlps = if payload == 0 {
        1
    } else {
        payload.div_ceil(mps)
    };
    payload + tlps * tlp_overhead
}

/// Number of TLPs a payload splits into.
pub fn tlp_count(payload: u64, max_payload_size: u64) -> u64 {
    let mps = max_payload_size.max(1);
    if payload == 0 {
        1
    } else {
        payload.div_ceil(mps)
    }
}

/// Wire efficiency of a payload: payload bytes / wire bytes, in `(0, 1]`.
pub fn efficiency(payload: u64, max_payload_size: u64, tlp_overhead: u64) -> f64 {
    if payload == 0 {
        return 0.0;
    }
    payload as f64 / wire_bytes(payload, max_payload_size, tlp_overhead) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tlp_for_small_payload() {
        assert_eq!(wire_bytes(64, 256, 24), 64 + 24);
        assert_eq!(tlp_count(64, 256), 1);
    }

    #[test]
    fn exact_boundary_is_one_tlp() {
        assert_eq!(tlp_count(256, 256), 1);
        assert_eq!(wire_bytes(256, 256, 24), 256 + 24);
    }

    #[test]
    fn large_payload_segments() {
        // 2048 B at 256 MPS = 8 TLPs.
        assert_eq!(tlp_count(2048, 256), 8);
        assert_eq!(wire_bytes(2048, 256, 24), 2048 + 8 * 24);
    }

    #[test]
    fn zero_payload_costs_one_tlp() {
        assert_eq!(wire_bytes(0, 256, 24), 24);
        assert_eq!(tlp_count(0, 256), 1);
    }

    #[test]
    fn efficiency_improves_with_size() {
        let small = efficiency(64, 256, 24);
        let large = efficiency(4096, 256, 24);
        assert!(small < large);
        assert!(large > 0.9);
        assert_eq!(efficiency(0, 256, 24), 0.0);
    }

    #[test]
    fn degenerate_mps_guarded() {
        // mps = 0 treated as 1; must not panic or divide by zero.
        assert_eq!(tlp_count(3, 0), 3);
    }
}
