//! PCIe parameters, defaulted to the paper's testbed: PCIe 5.0 ×16 between a
//! BlueField-3 and the host (§2.3).

use ceio_sim::{Bandwidth, Duration};
use serde::{Deserialize, Serialize};

/// Configuration of the PCIe interconnect model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcieParams {
    /// Effective per-direction bandwidth after encoding/DLLP overheads.
    /// PCIe 5.0 ×16 raw is 64 GB/s; ~55 GB/s is the practical ceiling.
    pub bandwidth: Bandwidth,
    /// Max TLP payload size in bytes (typical x86 server: 256 B).
    pub max_payload_size: u64,
    /// Per-TLP header + framing overhead in bytes (TLP header, sequence,
    /// LCRC, framing ≈ 24 B).
    pub tlp_overhead: u64,
    /// One-way propagation/pipeline latency (switching, flit buffering).
    pub propagation: Duration,
    /// Maximum outstanding DMA writes (posted-write credits).
    pub max_inflight_writes: u32,
    /// Maximum outstanding DMA reads (non-posted credits).
    pub max_inflight_reads: u32,
    /// Latency of an MMIO register write (doorbell) as seen by the CPU.
    pub mmio_write: Duration,
    /// Latency of an MMIO register read as seen by the CPU.
    pub mmio_read: Duration,
}

impl Default for PcieParams {
    fn default() -> Self {
        PcieParams {
            bandwidth: Bandwidth::gibps(55),
            max_payload_size: 256,
            tlp_overhead: 24,
            propagation: Duration::nanos(350),
            max_inflight_writes: 256,
            max_inflight_reads: 64,
            mmio_write: Duration::nanos(100),
            mmio_read: Duration::nanos(400),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_to_cpu_round_trip_matches_cited_range() {
        // §3 cites up to 1000 ns for data traversal over PCIe; our one-way
        // propagation keeps a read round trip (2 propagations + MMIO) within
        // that order of magnitude.
        let p = PcieParams::default();
        let rt = p.propagation + p.propagation + p.mmio_write;
        assert!(rt.as_nanos() >= 700 && rt.as_nanos() <= 1100, "{rt}");
    }
}
