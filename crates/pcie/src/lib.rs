//! # ceio-pcie — PCIe interconnect model
//!
//! Models the NIC↔host PCIe path of Fig. 2 (stages ①–②):
//!
//! * [`tlp`] — Transaction Layer Packet segmentation: payloads are split
//!   into Max-Payload-Size chunks, each carrying header/framing overhead, so
//!   small packets cost proportionally more wire bytes.
//! * [`PcieLink`] — full-duplex serialization servers (one per direction)
//!   with propagation delay. The NIC→host traversal plus host-side retire is
//!   the ~1 µs the paper cites for slow-path accesses (§3).
//! * [`DmaEngine`] — credit-limited outstanding-DMA tracking. When host-side
//!   retirement is slow, write credits exhaust and the engine stalls — the
//!   §2.2 mechanism that blocks CPU-bypass flows behind CPU-involved misses.
//!   MMIO doorbell costs model the driver's pointer updates (§4.2).

#![warn(missing_docs)]

pub mod dma;
pub mod link;
pub mod params;
pub mod tlp;

pub use dma::{DmaEngine, DmaError};
pub use link::{Direction, LinkStats, PcieLink};
pub use params::PcieParams;
pub use tlp::wire_bytes;
