//! DRAM as a FIFO bandwidth server with base load latency.
//!
//! Every byte that moves to or from DRAM — DDIO evictions, CPU miss fills,
//! bypass DMA writes, application copies — serializes through this server.
//! Under load the queue grows and effective access latency rises beyond the
//! unloaded 90 ns, which is exactly the §2.2 mechanism by which LLC misses
//! slow *both* flow classes: CPU-involved flows stall on miss fills, and
//! CPU-bypass flows lose the memory bandwidth those fills consume.

use ceio_sim::{Bandwidth, Counter, Duration, Time};
use serde::Serialize;

/// Statistics exported by the DRAM model.
#[derive(Debug, Default, Clone, Serialize)]
pub struct DramStats {
    /// Total bytes served (reads + writes).
    pub bytes_served: u64,
    /// Total requests served.
    pub requests: u64,
    /// Sum of queueing delays (ns) across requests, for mean-delay reporting.
    pub queueing_ns_sum: u64,
}

impl DramStats {
    /// Mean queueing delay per request.
    pub fn mean_queueing(&self) -> Duration {
        match self.queueing_ns_sum.checked_div(self.requests) {
            Some(mean) => Duration::nanos(mean),
            None => Duration::ZERO,
        }
    }
}

/// The DRAM bandwidth server.
#[derive(Debug)]
pub struct Dram {
    bandwidth: Bandwidth,
    base_latency: Duration,
    busy_until: Time,
    stats: DramStats,
    busy_accum: Counter,
}

impl Dram {
    /// A server with the given aggregate bandwidth and unloaded latency.
    pub fn new(bandwidth: Bandwidth, base_latency: Duration) -> Dram {
        Dram {
            bandwidth,
            base_latency,
            busy_until: Time::ZERO,
            stats: DramStats::default(),
            busy_accum: Counter::new(),
        }
    }

    /// Enqueue a transfer of `bytes` at time `now`; returns the completion
    /// instant (data available / write retired).
    ///
    /// FIFO service: the transfer starts when the channel frees up, occupies
    /// it for `bytes / bandwidth`, and the requester additionally pays the
    /// base load latency.
    pub fn request(&mut self, now: Time, bytes: u64) -> Time {
        let start = self.busy_until.max(now);
        let queueing = start.since(now);
        let service = self.bandwidth.transfer_time(bytes);
        self.busy_until = start + service;
        self.stats.bytes_served += bytes;
        self.stats.requests += 1;
        self.stats.queueing_ns_sum += queueing.as_nanos();
        self.busy_accum.add(service.as_nanos());
        self.busy_until + self.base_latency
    }

    /// Completion time the *next* request issued at `now` would see, without
    /// issuing it (used by admission decisions).
    pub fn probe(&self, now: Time, bytes: u64) -> Time {
        let start = self.busy_until.max(now);
        start + self.bandwidth.transfer_time(bytes) + self.base_latency
    }

    /// Instant at which the server becomes idle.
    #[inline]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Current backlog relative to `now`.
    pub fn backlog(&self, now: Time) -> Duration {
        self.busy_until.since(now)
    }

    /// Fraction of `[window_start, now]` the server was busy, given the
    /// busy-time accumulated since the last call (coarse utilization).
    pub fn utilization_since(&mut self, window: Duration) -> f64 {
        let busy = self.busy_accum.take_delta();
        if window.as_nanos() == 0 {
            return 0.0;
        }
        (busy as f64 / window.as_nanos() as f64).min(1.0)
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        // 100 GB/s, 90 ns base latency: 1000 B serves in 10 ns.
        Dram::new(Bandwidth::gibps(100), Duration::nanos(90))
    }

    #[test]
    fn unloaded_request_pays_base_latency_plus_service() {
        let mut d = dram();
        let done = d.request(Time(0), 1000);
        assert_eq!(done, Time(10 + 90));
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let mut d = dram();
        let a = d.request(Time(0), 1000);
        let b = d.request(Time(0), 1000);
        assert_eq!(a, Time(100));
        // Second request waits for the first's 10 ns of service.
        assert_eq!(b, Time(110));
        assert_eq!(d.stats().requests, 2);
        assert_eq!(d.stats().queueing_ns_sum, 10);
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut d = dram();
        d.request(Time(0), 1000);
        let done = d.request(Time(1_000), 1000);
        assert_eq!(done, Time(1_100));
        assert_eq!(d.backlog(Time(1_000)), Duration::nanos(10));
    }

    #[test]
    fn probe_does_not_mutate() {
        let d = dram();
        let p = d.probe(Time(0), 1000);
        assert_eq!(p, Time(100));
        assert_eq!(d.stats().requests, 0);
        assert_eq!(d.busy_until(), Time::ZERO);
    }

    #[test]
    fn sustained_overload_grows_backlog_linearly() {
        let mut d = dram();
        // Offer 2000 B every 10 ns = 200 GB/s against 100 GB/s capacity.
        for i in 0..100u64 {
            d.request(Time(i * 10), 2000);
        }
        // Each request adds 20 ns service but only 10 ns elapse: backlog
        // grows ~10 ns per request.
        let backlog = d.backlog(Time(990));
        assert!(backlog >= Duration::nanos(900), "backlog {backlog}");
    }

    #[test]
    fn mean_queueing_reported() {
        let mut d = dram();
        d.request(Time(0), 1000);
        d.request(Time(0), 1000);
        d.request(Time(0), 1000);
        // Delays: 0, 10, 20 -> mean 10.
        assert_eq!(d.stats().mean_queueing(), Duration::nanos(10));
    }
}
