//! Occupancy-LRU model of the DDIO-reachable LLC partition.
//!
//! The paper's LLC pathology is entirely an *occupancy* phenomenon: DDIO
//! writes allocate into a fixed slice of the LLC (typically 2 ways); once the
//! volume of in-flight, not-yet-consumed I/O data exceeds that slice, newly
//! arriving packets evict older unconsumed ones to DRAM, and the CPU later
//! misses on them (§2.2). A set-indexed model adds nothing for 2 KB buffers
//! that span 32 sets each, so we model the partition as a single LRU pool of
//! variable-size buffer entries with byte-accurate occupancy.

use std::collections::BTreeMap;

use serde::Serialize;

/// Identifier of one I/O buffer resident in (or evicted from) the LLC.
///
/// The host machine allocates these densely; the LLC only needs them to be
/// unique among in-flight buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct BufferId(pub u64);

/// Counters exported by the LLC model.
#[derive(Debug, Default, Clone, Serialize)]
pub struct LlcStats {
    /// DMA insertions into the I/O partition.
    pub insertions: u64,
    /// CPU lookups that found the buffer resident.
    pub hits: u64,
    /// CPU lookups that missed (buffer evicted or never cached).
    pub misses: u64,
    /// Buffers evicted by later insertions before being consumed.
    pub evictions: u64,
    /// Bytes evicted to DRAM.
    pub evicted_bytes: u64,
    /// DMA writes that bypassed the cache entirely (DDIO disabled): the
    /// line went straight to DRAM without allocating in the partition.
    pub bypasses: u64,
    /// Insertions that left the partition above capacity: the incoming
    /// buffer was larger than the space evictable around it, so occupancy
    /// exceeded capacity with no victim left to evict. Previously this
    /// state was silent; scope/SLO rules key off this counter.
    pub over_capacity_events: u64,
    /// Buffers evicted by the application antagonist stream rather than by
    /// competing I/O (set-associative model only; always zero for the pool).
    pub app_evictions: u64,
    /// Sum over evictions of the victim's age (recency-sequence delta at
    /// eviction time). Mean eviction age = `eviction_age_sum / evictions`;
    /// a shrinking mean means buffers are being churned out younger.
    pub eviction_age_sum: u64,
}

impl LlcStats {
    /// Miss rate over all CPU lookups, in `[0, 1]`; zero when no lookups.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    bytes: u64,
}

/// The DDIO-reachable LLC partition: an LRU pool of I/O buffer entries.
#[derive(Debug)]
pub struct IoLlc {
    capacity_bytes: u64,
    occupancy_bytes: u64,
    next_seq: u64,
    /// BufferId -> entry metadata (ordered, so any future iteration is
    /// deterministic; lookups are O(log n) on a map that stays small).
    entries: BTreeMap<BufferId, Entry>,
    /// LRU order: recency sequence -> BufferId (smallest = oldest).
    order: BTreeMap<u64, BufferId>,
    stats: LlcStats,
}

impl IoLlc {
    /// A pool with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> IoLlc {
        IoLlc {
            capacity_bytes,
            occupancy_bytes: 0,
            next_seq: 0,
            entries: BTreeMap::new(),
            order: BTreeMap::new(),
            stats: LlcStats::default(),
        }
    }

    /// Bytes currently resident.
    #[inline]
    pub fn occupancy(&self) -> u64 {
        self.occupancy_bytes
    }

    /// Configured capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of resident buffers.
    #[inline]
    pub fn resident_count(&self) -> usize {
        self.entries.len()
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Whether a buffer is currently resident (no statistics side effects).
    #[inline]
    pub fn contains(&self, id: BufferId) -> bool {
        self.entries.contains_key(&id)
    }

    /// DDIO insertion of a DMA-written buffer. Returns the buffers evicted
    /// (oldest first) to make room; their consumers will miss to DRAM.
    ///
    /// Inserting an id that is already resident refreshes its recency and
    /// size (a buffer reused for a new packet).
    pub fn insert(&mut self, id: BufferId, bytes: u64) -> Vec<BufferId> {
        self.stats.insertions += 1;
        if let Some(old) = self.entries.remove(&id) {
            self.order.remove(&old.seq);
            self.occupancy_bytes -= old.bytes;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(id, Entry { seq, bytes });
        self.order.insert(seq, id);
        self.occupancy_bytes += bytes;

        let mut evicted = Vec::new();
        while self.occupancy_bytes > self.capacity_bytes && self.entries.len() > 1 {
            // Evict the least recently written/used entry, but never the one
            // just inserted (DDIO always lands the incoming line).
            let (&oldest_seq, &victim) = self
                .order
                .iter()
                .next()
                .expect("invariant: occupancy > 0 implies `order` is non-empty");
            if victim == id {
                break;
            }
            self.order.remove(&oldest_seq);
            let e = self
                .entries
                .remove(&victim)
                .expect("invariant: `order` and `entries` index the same set of buffers");
            self.occupancy_bytes -= e.bytes;
            self.stats.evictions += 1;
            self.stats.evicted_bytes += e.bytes;
            self.stats.eviction_age_sum += self.next_seq - oldest_seq;
            evicted.push(victim);
        }
        if self.occupancy_bytes > self.capacity_bytes {
            // Nothing left to evict around the incoming buffer: it alone
            // exceeds the partition. Make the state visible instead of
            // silently reporting occupancy > capacity.
            self.stats.over_capacity_events += 1;
        }
        evicted
    }

    /// CPU lookup of a buffer: records a hit (refreshing recency) or a miss.
    /// Returns `true` on hit.
    pub fn lookup(&mut self, id: BufferId) -> bool {
        match self.entries.get(&id).map(|e| e.seq) {
            Some(seq) => {
                self.stats.hits += 1;
                // Refresh recency.
                self.order.remove(&seq);
                let new_seq = self.next_seq;
                self.next_seq += 1;
                self.order.insert(new_seq, id);
                self.entries
                    .get_mut(&id)
                    .expect("invariant: entry was present in the `Some` arm above")
                    .seq = new_seq;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Remove a buffer the CPU has finished consuming (ownership returned to
    /// the buffer pool). No-op if already evicted.
    pub fn consume(&mut self, id: BufferId) {
        if let Some(e) = self.entries.remove(&id) {
            self.order.remove(&e.seq);
            self.occupancy_bytes -= e.bytes;
        }
    }

    /// A DMA write that bypasses the cache (DDIO disabled): the buffer goes
    /// straight to DRAM and never becomes resident. Only the counter moves;
    /// the later CPU lookup will record the compulsory miss.
    pub fn bypass(&mut self, bytes: u64) {
        let _ = bytes; // pool model has no line-granular accounting
        self.stats.bypasses += 1;
    }

    /// Reset statistics (keeps contents).
    pub fn clear_stats(&mut self) {
        self.stats = LlcStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<BufferId> {
        v.iter().map(|&i| BufferId(i)).collect()
    }

    #[test]
    fn fills_to_capacity_without_eviction() {
        let mut llc = IoLlc::new(8192);
        for i in 0..4 {
            assert!(llc.insert(BufferId(i), 2048).is_empty());
        }
        assert_eq!(llc.occupancy(), 8192);
        assert_eq!(llc.stats().evictions, 0);
    }

    #[test]
    fn overflow_evicts_lru_first() {
        let mut llc = IoLlc::new(4096);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(2), 2048);
        let evicted = llc.insert(BufferId(3), 2048);
        assert_eq!(evicted, ids(&[1]));
        assert!(llc.contains(BufferId(2)));
        assert!(llc.contains(BufferId(3)));
        assert_eq!(llc.occupancy(), 4096);
    }

    #[test]
    fn lookup_refreshes_recency() {
        let mut llc = IoLlc::new(4096);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(2), 2048);
        assert!(llc.lookup(BufferId(1))); // 1 becomes most recent
        let evicted = llc.insert(BufferId(3), 2048);
        assert_eq!(evicted, ids(&[2]), "2 is now LRU");
    }

    #[test]
    fn miss_recorded_for_evicted_buffer() {
        let mut llc = IoLlc::new(2048);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(2), 2048); // evicts 1
        assert!(!llc.lookup(BufferId(1)));
        assert!(llc.lookup(BufferId(2)));
        let s = llc.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 1));
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn consume_frees_occupancy() {
        let mut llc = IoLlc::new(4096);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(2), 2048);
        llc.consume(BufferId(1));
        assert_eq!(llc.occupancy(), 2048);
        // Room again: no eviction.
        assert!(llc.insert(BufferId(3), 2048).is_empty());
    }

    #[test]
    fn consume_after_eviction_is_noop() {
        let mut llc = IoLlc::new(2048);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(2), 2048);
        llc.consume(BufferId(1)); // already evicted
        assert_eq!(llc.occupancy(), 2048);
    }

    #[test]
    fn reinserting_same_id_refreshes_without_double_count() {
        let mut llc = IoLlc::new(4096);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(1), 2048);
        assert_eq!(llc.occupancy(), 2048);
        assert_eq!(llc.resident_count(), 1);
    }

    #[test]
    fn never_evicts_incoming_buffer() {
        // Oversized buffer relative to capacity: stays resident alone.
        let mut llc = IoLlc::new(1024);
        let evicted = llc.insert(BufferId(1), 4096);
        assert!(evicted.is_empty());
        assert!(llc.contains(BufferId(1)));
    }

    #[test]
    fn over_capacity_insert_is_counted() {
        let mut llc = IoLlc::new(1024);
        llc.insert(BufferId(1), 4096);
        assert_eq!(llc.stats().over_capacity_events, 1);
        // Evicting everything else and still not fitting also counts.
        let mut llc = IoLlc::new(4096);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(2), 8192);
        assert_eq!(llc.stats().over_capacity_events, 1);
        assert_eq!(llc.stats().evictions, 1);
    }

    #[test]
    fn within_capacity_insert_is_not_over_capacity() {
        let mut llc = IoLlc::new(4096);
        llc.insert(BufferId(1), 2048);
        llc.insert(BufferId(2), 2048);
        llc.insert(BufferId(3), 2048); // evicts 1, fits fine
        assert_eq!(llc.stats().over_capacity_events, 0);
    }

    #[test]
    fn bypass_counts_without_residency() {
        let mut llc = IoLlc::new(4096);
        llc.bypass(2048);
        llc.bypass(2048);
        assert_eq!(llc.stats().bypasses, 2);
        assert_eq!(llc.occupancy(), 0);
        assert_eq!(llc.resident_count(), 0);
    }

    #[test]
    fn eviction_age_accumulates() {
        let mut llc = IoLlc::new(2048);
        llc.insert(BufferId(1), 2048); // seq 0
        llc.insert(BufferId(2), 2048); // seq 1; evicts 1 (age = 2 - 0)
        assert_eq!(llc.stats().eviction_age_sum, 2);
        assert_eq!(llc.stats().evictions, 1);
    }

    #[test]
    fn steady_state_overflow_miss_rate_is_high() {
        // Producer inserts 2x faster than consumer reads: half the buffers
        // get evicted before consumption -> miss rate approaches the
        // overflow fraction. Shape check for the Fig. 9 baseline (~88%).
        let mut llc = IoLlc::new(16 * 2048);
        for next_read in 0..10_000u64 {
            llc.insert(BufferId(2 * next_read), 2048);
            llc.insert(BufferId(2 * next_read + 1), 2048);
            // Consumer keeps up with half the rate.
            llc.lookup(BufferId(next_read));
            llc.consume(BufferId(next_read));
        }
        assert!(
            llc.stats().miss_rate() > 0.45,
            "rate {}",
            llc.stats().miss_rate()
        );
    }
}
