//! The Integrated I/O (IIO) buffer.
//!
//! PCIe DMA writes land here (Fig. 2, stage ②) and the memory controller
//! drains them into the LLC or DRAM (stage ③). Two roles in the
//! reproduction:
//!
//! 1. **Backpressure**: when the buffer is full the PCIe DMA engine stalls —
//!    the §2.2 mechanism by which slow host-side draining exhausts PCIe
//!    credits and blocks CPU-bypass flows.
//! 2. **Congestion signal**: HostCC's kernel module monitors IIO occupancy;
//!    by the time occupancy is visibly elevated, the LLC is already
//!    thrashing — the "slow response" limitation (§2.3).

use serde::Serialize;

/// Statistics exported by the IIO buffer.
#[derive(Debug, Default, Clone, Serialize)]
pub struct IioStats {
    /// Accepted pushes.
    pub accepted: u64,
    /// Rejected pushes (buffer full: PCIe stall).
    pub rejected: u64,
    /// High-water mark of occupancy in bytes.
    pub peak_bytes: u64,
}

/// Byte-accounted occupancy buffer between the PCIe DMA engine and the
/// memory controller.
#[derive(Debug)]
pub struct IioBuffer {
    capacity_bytes: u64,
    occupancy_bytes: u64,
    stats: IioStats,
}

impl IioBuffer {
    /// A buffer with the given capacity.
    pub fn new(capacity_bytes: u64) -> IioBuffer {
        IioBuffer {
            capacity_bytes,
            occupancy_bytes: 0,
            stats: IioStats::default(),
        }
    }

    /// Attempt to stage `bytes` of an inbound DMA write. Returns `false`
    /// (and counts a stall) when the buffer cannot hold them.
    pub fn try_push(&mut self, bytes: u64) -> bool {
        if self.occupancy_bytes + bytes > self.capacity_bytes {
            self.stats.rejected += 1;
            return false;
        }
        self.occupancy_bytes += bytes;
        self.stats.accepted += 1;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.occupancy_bytes);
        true
    }

    /// Drain `bytes` after the memory controller has retired them.
    pub fn pop(&mut self, bytes: u64) {
        debug_assert!(
            bytes <= self.occupancy_bytes,
            "IIO drain of {bytes} exceeds occupancy {}",
            self.occupancy_bytes
        );
        self.occupancy_bytes = self.occupancy_bytes.saturating_sub(bytes);
    }

    /// Current occupancy in bytes.
    #[inline]
    pub fn occupancy(&self) -> u64 {
        self.occupancy_bytes
    }

    /// Occupancy as a fraction of capacity, in `[0, 1]`.
    pub fn occupancy_fraction(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.occupancy_bytes as f64 / self.capacity_bytes as f64
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &IioStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_capacity() {
        let mut iio = IioBuffer::new(4096);
        assert!(iio.try_push(2048));
        assert!(iio.try_push(2048));
        assert!(!iio.try_push(1));
        assert_eq!(iio.stats().accepted, 2);
        assert_eq!(iio.stats().rejected, 1);
    }

    #[test]
    fn pop_frees_space() {
        let mut iio = IioBuffer::new(2048);
        assert!(iio.try_push(2048));
        iio.pop(2048);
        assert!(iio.try_push(2048));
        assert_eq!(iio.occupancy(), 2048);
    }

    #[test]
    fn occupancy_fraction_tracks() {
        let mut iio = IioBuffer::new(1000);
        iio.try_push(250);
        assert!((iio.occupancy_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(IioBuffer::new(0).occupancy_fraction(), 0.0);
    }

    #[test]
    fn peak_high_water_mark() {
        let mut iio = IioBuffer::new(4096);
        iio.try_push(1000);
        iio.try_push(3000);
        iio.pop(4000);
        iio.try_push(100);
        assert_eq!(iio.stats().peak_bytes, 4000);
    }
}
