//! Set-associative, way-partitioned LLC model.
//!
//! The pool model in [`crate::llc`] captures the occupancy pathology but not
//! its *way-level* cause: on the paper's evaluation machine DDIO can allocate
//! into only 6 of the 12 LLC ways (§4.1), and CEIO sizes its credit pool from
//! that DDIO-reachable slice. This model makes the geometry explicit:
//! `S` sets × `W` ways of 64-byte lines, with the first `ddio_ways` ways of
//! every set forming the DDIO partition. I/O buffers span `ceil(bytes/64)`
//! consecutive sets (one line per set, like a physically contiguous 2 KB
//! buffer striding the index bits) and evict LRU-within-set when a set's DDIO
//! ways are full.
//!
//! The remaining `total_ways - ddio_ways` ways belong to a deterministic
//! application "antagonist" stream: every I/O insertion advances it by
//! `app_lines_per_insert` line touches at pseudo-random sets. By default it
//! stays inside its own partition and is invisible to I/O; configuring
//! `app_overlap_ways > 0` lets it allocate into the top of the DDIO partition
//! as well, evicting I/O buffers (counted in `LlcStats::app_evictions`) —
//! the I/O-vs-application contention that way-partitioning schemes such as
//! IOCA and A4 exist to arbitrate.
//!
//! Determinism: set choice uses a pure multiplicative hash (SplitMix64
//! finalizer) of the buffer id / antagonist cursor — no ambient state, so
//! identical traces produce identical placements on every run.
//!
//! Equivalence with the pool: with 1 set, `ddio_bytes / 64` DDIO ways, the
//! antagonist disabled, and line-multiple buffer sizes, victim selection
//! degenerates to "evict the globally least-recent buffer, whole buffers at
//! a time, never the incoming one" — exactly the pool's loop, including the
//! oversized-buffer over-capacity edge. A proptest pins this.

use std::collections::BTreeMap;

use crate::llc::{BufferId, LlcStats};
use crate::model::WayOccupancy;

/// Cache-line granularity of the set-associative model, in bytes.
pub const LINE_BYTES: u64 = 64;

/// Geometry and antagonist knobs for [`SetAssocLlc`], derived from
/// `MemParams` via [`crate::MemParams::set_assoc_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAssocParams {
    /// Number of sets (`llc_total_bytes / (total_ways * 64)`).
    pub sets: usize,
    /// Associativity of each set.
    pub total_ways: usize,
    /// Ways `[0, ddio_ways)` of every set form the DDIO partition.
    pub ddio_ways: usize,
    /// Antagonist line touches per I/O insertion (0 disables it).
    pub app_lines_per_insert: u32,
    /// How many of the *top* DDIO ways the antagonist may also allocate
    /// into. 0 keeps the partitions disjoint (pure way-partitioning).
    pub app_overlap_ways: usize,
}

/// What currently owns one way of one set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    /// Never filled, or freed by consume/eviction.
    Empty,
    /// A line of the application antagonist stream, with its touch recency.
    App { touch: u64 },
    /// One line of a resident I/O buffer.
    Io(BufferId),
}

/// Per-buffer residency record.
#[derive(Debug, Clone)]
struct BufEntry {
    /// Buffer-level recency (refreshed on lookup, like the pool model).
    seq: u64,
    /// Full buffer size in bytes (occupancy is attributed whole-buffer).
    bytes: u64,
    /// Flattened `set * total_ways + way` indices of the lines held.
    slots: Vec<u32>,
}

/// SplitMix64 finalizer: a pure bijective mixer, fine under the determinism
/// rules (no ambient state).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The way-partitioned set-associative LLC.
#[derive(Debug)]
pub struct SetAssocLlc {
    p: SetAssocParams,
    /// `sets * total_ways` slots, set-major.
    slots: Vec<Owner>,
    entries: BTreeMap<BufferId, BufEntry>,
    next_seq: u64,
    /// Antagonist position: hashed to pick its next victim set.
    app_cursor: u64,
    occupancy_bytes: u64,
    /// I/O lines currently resident in each way (index = way).
    way_io_lines: Vec<u64>,
    /// Antagonist lines currently resident in each way.
    way_app_lines: Vec<u64>,
    stats: LlcStats,
}

impl SetAssocLlc {
    /// Build an empty cache with the given geometry.
    ///
    /// Geometry must be sane (`validate` on `MemParams` enforces this before
    /// construction in the normal path).
    pub fn new(p: SetAssocParams) -> SetAssocLlc {
        assert!(p.sets >= 1, "invariant: at least one set");
        assert!(
            p.ddio_ways >= 1 && p.ddio_ways <= p.total_ways,
            "invariant: 1 <= ddio_ways <= total_ways"
        );
        assert!(
            p.app_overlap_ways <= p.ddio_ways,
            "invariant: overlap cannot exceed the DDIO partition"
        );
        let slots = vec![Owner::Empty; p.sets * p.total_ways];
        let ways = p.total_ways;
        SetAssocLlc {
            p,
            slots,
            entries: BTreeMap::new(),
            next_seq: 0,
            app_cursor: 0,
            occupancy_bytes: 0,
            way_io_lines: vec![0; ways],
            way_app_lines: vec![0; ways],
            stats: LlcStats::default(),
        }
    }

    /// Bytes of I/O buffers currently resident.
    #[inline]
    pub fn occupancy(&self) -> u64 {
        self.occupancy_bytes
    }

    /// DDIO partition capacity in bytes (`sets * ddio_ways * 64`).
    #[inline]
    pub fn capacity(&self) -> u64 {
        (self.p.sets as u64) * (self.p.ddio_ways as u64) * LINE_BYTES
    }

    /// Number of resident I/O buffers.
    #[inline]
    pub fn resident_count(&self) -> usize {
        self.entries.len()
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Whether a buffer is currently resident (no statistics side effects).
    #[inline]
    pub fn contains(&self, id: BufferId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Per-way line counts for telemetry.
    pub fn way_occupancy(&self) -> WayOccupancy {
        WayOccupancy {
            io_lines: self.way_io_lines.clone(),
            app_lines: self.way_app_lines.clone(),
        }
    }

    /// The configured geometry.
    #[inline]
    pub fn params(&self) -> &SetAssocParams {
        &self.p
    }

    #[inline]
    fn slot_index(&self, set: usize, way: usize) -> usize {
        set * self.p.total_ways + way
    }

    /// Free all lines of a resident buffer; returns its entry. No eviction
    /// statistics — callers decide whether this is a consume or an eviction.
    fn release(&mut self, id: BufferId) -> Option<BufEntry> {
        let e = self.entries.remove(&id)?;
        for &si in &e.slots {
            let si = si as usize;
            debug_assert!(matches!(self.slots[si], Owner::Io(b) if b == id));
            self.slots[si] = Owner::Empty;
            self.way_io_lines[si % self.p.total_ways] -= 1;
        }
        self.occupancy_bytes -= e.bytes;
        Some(e)
    }

    /// Evict a resident buffer whole (all its lines, possibly in other
    /// sets), with statistics.
    fn evict(&mut self, victim: BufferId, by_app: bool, out: &mut Vec<BufferId>) {
        let e = self
            .release(victim)
            .expect("invariant: eviction victim is resident");
        self.stats.evictions += 1;
        self.stats.evicted_bytes += e.bytes;
        self.stats.eviction_age_sum += self.next_seq - e.seq;
        if by_app {
            self.stats.app_evictions += 1;
        }
        out.push(victim);
    }

    /// Recency of the owner of one slot, for LRU comparison. `None` means
    /// the slot must not be chosen (owned by the protected buffer).
    fn owner_recency(&self, si: usize, protect: Option<BufferId>) -> Option<u64> {
        match self.slots[si] {
            Owner::Empty => Some(0),
            Owner::App { touch } => Some(touch),
            Owner::Io(b) => {
                if protect == Some(b) {
                    None
                } else {
                    Some(
                        self.entries
                            .get(&b)
                            .expect("invariant: slot owners are resident")
                            .seq,
                    )
                }
            }
        }
    }

    /// Claim one way in `set` within ways `[lo, hi)`: an empty way if one
    /// exists, else the LRU owner's way after evicting that owner. Returns
    /// the claimed slot index, or `None` if every candidate way is owned by
    /// `protect` (the incoming buffer — DDIO never self-evicts).
    fn claim_way(
        &mut self,
        set: usize,
        lo: usize,
        hi: usize,
        protect: Option<BufferId>,
        by_app: bool,
        out: &mut Vec<BufferId>,
    ) -> Option<usize> {
        for way in lo..hi {
            if self.slots[self.slot_index(set, way)] == Owner::Empty {
                return Some(self.slot_index(set, way));
            }
        }
        let mut victim: Option<(u64, usize)> = None;
        for way in lo..hi {
            let si = self.slot_index(set, way);
            if let Some(rec) = self.owner_recency(si, protect) {
                if victim.is_none_or(|(best, _)| rec < best) {
                    victim = Some((rec, way));
                }
            }
        }
        let (_, way) = victim?;
        let si = self.slot_index(set, way);
        match self.slots[si] {
            Owner::App { .. } => {
                self.way_app_lines[way] -= 1;
                self.slots[si] = Owner::Empty;
            }
            // Whole-buffer eviction frees this slot (and possibly others).
            Owner::Io(b) => self.evict(b, by_app, out),
            // Unreachable: empty ways were claimed before victim selection.
            Owner::Empty => {}
        }
        debug_assert_eq!(self.slots[si], Owner::Empty);
        Some(si)
    }

    /// Advance the antagonist by `app_lines_per_insert` line touches. Each
    /// touch lands in a hashed set, in ways
    /// `[ddio_ways - app_overlap_ways, total_ways)` — its own partition plus
    /// any configured overlap into the DDIO slice.
    fn advance_app(&mut self, out: &mut Vec<BufferId>) {
        let lo = self.p.ddio_ways - self.p.app_overlap_ways;
        let hi = self.p.total_ways;
        if lo >= hi {
            return; // antagonist has no ways at all
        }
        for _ in 0..self.p.app_lines_per_insert {
            let set = (mix(self.app_cursor) as usize) % self.p.sets;
            self.app_cursor = self.app_cursor.wrapping_add(1);
            let touch = self.next_seq;
            self.next_seq += 1;
            let si = self
                .claim_way(set, lo, hi, None, true, out)
                .expect("invariant: no protected buffer, so a victim always exists");
            self.slots[si] = Owner::App { touch };
            self.way_app_lines[si % self.p.total_ways] += 1;
        }
    }

    /// DDIO insertion of a DMA-written buffer: `ceil(bytes/64)` lines at
    /// consecutive sets from a hashed base. Returns evicted buffers (the
    /// antagonist's victims first, then LRU-within-set victims in placement
    /// order); their consumers will miss to DRAM.
    ///
    /// Inserting an id that is already resident refreshes its recency and
    /// size (a buffer reused for a new packet), exactly like the pool model.
    pub fn insert(&mut self, id: BufferId, bytes: u64) -> Vec<BufferId> {
        self.stats.insertions += 1;
        let mut evicted = Vec::new();
        self.advance_app(&mut evicted);
        self.release(id);
        let seq = self.next_seq;
        self.next_seq += 1;
        let lines = bytes.div_ceil(LINE_BYTES).max(1);
        let base = mix(id.0) as usize % self.p.sets;
        let mut held = Vec::with_capacity(lines as usize);
        let mut overflowed = false;
        for i in 0..lines {
            let set = (base + i as usize) % self.p.sets;
            match self.claim_way(set, 0, self.p.ddio_ways, Some(id), false, &mut evicted) {
                Some(si) => {
                    self.slots[si] = Owner::Io(id);
                    self.way_io_lines[si % self.p.total_ways] += 1;
                    held.push(si as u32);
                }
                // Every DDIO way of this set is already held by the incoming
                // buffer itself: it wraps the index space. The line logically
                // lands but cannot be tracked — the buffer exceeds what the
                // partition can hold, mirroring the pool's oversized edge.
                None => overflowed = true,
            }
        }
        if overflowed {
            self.stats.over_capacity_events += 1;
        }
        self.occupancy_bytes += bytes;
        self.entries.insert(
            id,
            BufEntry {
                seq,
                bytes,
                slots: held,
            },
        );
        evicted
    }

    /// CPU lookup of a buffer: records a hit (refreshing buffer-level
    /// recency) or a miss. Returns `true` on hit.
    pub fn lookup(&mut self, id: BufferId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                self.stats.hits += 1;
                e.seq = self.next_seq;
                self.next_seq += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Remove a buffer the CPU has finished consuming (ownership returned
    /// to the buffer pool). No-op if already evicted.
    pub fn consume(&mut self, id: BufferId) {
        self.release(id);
    }

    /// A DMA write that bypasses the cache (DDIO disabled): straight to
    /// DRAM, never resident. Only the counter moves.
    pub fn bypass(&mut self, bytes: u64) {
        let _ = bytes;
        self.stats.bypasses += 1;
    }

    /// Reset statistics (keeps contents).
    pub fn clear_stats(&mut self) {
        self.stats = LlcStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(sets: usize, total_ways: usize, ddio_ways: usize) -> SetAssocLlc {
        SetAssocLlc::new(SetAssocParams {
            sets,
            total_ways,
            ddio_ways,
            app_lines_per_insert: 0,
            app_overlap_ways: 0,
        })
    }

    #[test]
    fn capacity_counts_only_ddio_ways() {
        let llc = small(16, 12, 6);
        assert_eq!(llc.capacity(), 16 * 6 * 64);
    }

    #[test]
    fn buffer_spans_consecutive_sets() {
        let mut llc = small(64, 4, 2);
        // 2 KB buffer = 32 lines = 32 distinct sets, one line each.
        assert!(llc.insert(BufferId(7), 2048).is_empty());
        let occ = llc.way_occupancy();
        assert_eq!(occ.io_lines.iter().sum::<u64>(), 32);
        assert_eq!(
            occ.io_lines[2] + occ.io_lines[3],
            0,
            "non-DDIO ways untouched"
        );
        assert_eq!(llc.occupancy(), 2048);
    }

    #[test]
    fn lru_within_set_evicts_oldest_whole_buffer() {
        // 1 set, 2 DDIO ways of one line each: third single-line insert
        // evicts the oldest.
        let mut llc = small(1, 4, 2);
        llc.insert(BufferId(1), 64);
        llc.insert(BufferId(2), 64);
        let ev = llc.insert(BufferId(3), 64);
        assert_eq!(ev, vec![BufferId(1)]);
        assert!(llc.contains(BufferId(2)) && llc.contains(BufferId(3)));
        assert_eq!(llc.stats().evictions, 1);
        assert_eq!(llc.stats().evicted_bytes, 64);
    }

    #[test]
    fn lookup_refreshes_recency() {
        let mut llc = small(1, 4, 2);
        llc.insert(BufferId(1), 64);
        llc.insert(BufferId(2), 64);
        assert!(llc.lookup(BufferId(1)));
        let ev = llc.insert(BufferId(3), 64);
        assert_eq!(ev, vec![BufferId(2)], "2 is now LRU");
    }

    #[test]
    fn eviction_in_one_set_frees_lines_in_others() {
        // 4 sets, 1 DDIO way: a 256-byte buffer (4 lines) fills every set.
        // A single-line insert evicts it whole, freeing all 4 sets.
        let mut llc = small(4, 2, 1);
        llc.insert(BufferId(1), 256);
        let ev = llc.insert(BufferId(2), 64);
        assert_eq!(ev, vec![BufferId(1)]);
        assert_eq!(llc.way_occupancy().io_lines[0], 1);
        assert_eq!(llc.occupancy(), 64);
    }

    #[test]
    fn oversized_buffer_flags_over_capacity() {
        // 2 sets x 1 DDIO way = 128 B capacity; a 256 B buffer wraps and
        // collides with itself.
        let mut llc = small(2, 2, 1);
        let ev = llc.insert(BufferId(1), 256);
        assert!(ev.is_empty(), "never evicts the incoming buffer");
        assert!(llc.contains(BufferId(1)));
        assert_eq!(llc.stats().over_capacity_events, 1);
        assert!(llc.occupancy() > llc.capacity());
    }

    #[test]
    fn consume_frees_all_lines() {
        let mut llc = small(8, 4, 2);
        llc.insert(BufferId(1), 512);
        llc.consume(BufferId(1));
        assert_eq!(llc.occupancy(), 0);
        assert_eq!(llc.way_occupancy().io_lines.iter().sum::<u64>(), 0);
        assert_eq!(llc.resident_count(), 0);
    }

    #[test]
    fn antagonist_stays_in_own_partition_without_overlap() {
        let mut llc = SetAssocLlc::new(SetAssocParams {
            sets: 16,
            total_ways: 4,
            ddio_ways: 2,
            app_lines_per_insert: 8,
            app_overlap_ways: 0,
        });
        for i in 0..64 {
            llc.insert(BufferId(i), 64);
        }
        let occ = llc.way_occupancy();
        assert_eq!(occ.app_lines[0] + occ.app_lines[1], 0);
        assert!(occ.app_lines[2] + occ.app_lines[3] > 0);
        assert_eq!(llc.stats().app_evictions, 0);
    }

    #[test]
    fn overlapping_antagonist_evicts_io() {
        let mut llc = SetAssocLlc::new(SetAssocParams {
            sets: 4,
            total_ways: 4,
            ddio_ways: 2,
            app_lines_per_insert: 8,
            app_overlap_ways: 2,
        });
        let mut evicted_total = 0;
        for i in 0..256 {
            evicted_total += llc.insert(BufferId(i), 64).len() as u64;
        }
        assert!(
            llc.stats().app_evictions > 0,
            "overlapping antagonist must evict I/O buffers"
        );
        assert!(evicted_total >= llc.stats().app_evictions);
        // Attribution: every app eviction is also a plain eviction.
        assert!(llc.stats().evictions >= llc.stats().app_evictions);
    }

    #[test]
    fn reinserting_same_id_refreshes_without_double_count() {
        let mut llc = small(8, 4, 2);
        llc.insert(BufferId(1), 512);
        llc.insert(BufferId(1), 512);
        assert_eq!(llc.occupancy(), 512);
        assert_eq!(llc.resident_count(), 1);
        assert_eq!(llc.way_occupancy().io_lines.iter().sum::<u64>(), 8);
    }

    #[test]
    fn bypass_counts_without_residency() {
        let mut llc = small(8, 4, 2);
        llc.bypass(2048);
        assert_eq!(llc.stats().bypasses, 1);
        assert_eq!(llc.occupancy(), 0);
    }

    #[test]
    fn fewer_ddio_ways_evict_earlier() {
        // Same insert trace; the 2-way cache must evict strictly more than
        // the 6-way cache — the monotone trend the ddio experiment sweeps.
        let trace: Vec<(u64, u64)> = (0..128).map(|i| (i, 256)).collect();
        let mut narrow = small(32, 8, 2);
        let mut wide = small(32, 8, 6);
        for &(id, bytes) in &trace {
            narrow.insert(BufferId(id), bytes);
            wide.insert(BufferId(id), bytes);
        }
        assert!(narrow.stats().evictions > wide.stats().evictions);
    }
}
