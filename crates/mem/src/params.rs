//! Memory hierarchy parameters, defaulted to the paper's testbed (§2.3/§4.1):
//! Intel Xeon Silver 4309Y — 12 MB LLC, 6 of 12 ways reachable by DDIO,
//! DDR4-3200 on 8 channels, 2 KB I/O buffers.

use ceio_sim::{Bandwidth, Duration};
use serde::{Deserialize, Serialize};

use crate::setassoc::{SetAssocParams, LINE_BYTES};

/// Which LLC model backs the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LlcModelKind {
    /// Seed flat LRU byte pool over the DDIO partition. The default —
    /// golden CSVs are pinned against this model.
    #[default]
    Pool,
    /// Way-partitioned set-associative model ([`crate::SetAssocLlc`]):
    /// S sets × `total_ways` ways of 64-byte lines, with a configurable
    /// DDIO slice and an application antagonist in the remaining ways.
    SetAssoc,
}

/// Configuration of the host memory hierarchy model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemParams {
    /// Total LLC size in bytes (sets the set count of the set-associative
    /// model; reporting-only for the pool, whose I/O slice is `ddio_bytes`).
    pub llc_total_bytes: u64,
    /// DDIO-reachable LLC partition in bytes *for the pool model*. With
    /// 2 KB buffers this yields the paper's `C_total = 3000` credits
    /// (Eq. 1). The set-associative model derives its partition from
    /// `ddio_ways / total_ways` instead — see [`MemParams::ddio_partition_bytes`].
    pub ddio_bytes: u64,
    /// LLC hit load-to-use latency.
    pub llc_hit_latency: Duration,
    /// DRAM base load latency (unloaded).
    pub dram_base_latency: Duration,
    /// Aggregate DRAM bandwidth across all channels.
    pub dram_bandwidth: Bandwidth,
    /// IIO buffer capacity in bytes (PCIe write-pending staging).
    pub iio_capacity_bytes: u64,
    /// Whether DDIO is enabled (DMA writes allocate into the LLC). When
    /// false every DMA write bypasses the cache straight to DRAM, counted
    /// in `LlcStats::bypasses`.
    pub ddio_enabled: bool,
    /// LLC associativity: total ways per set (§4.1 testbed: 12).
    #[serde(default = "default_total_ways")]
    pub total_ways: u32,
    /// Ways per set reachable by DDIO (§4.1 testbed: 6 of 12).
    #[serde(default = "default_ddio_ways")]
    pub ddio_ways: u32,
    /// Which LLC model to build. `Pool` (default) preserves seed behaviour
    /// bit-for-bit; `SetAssoc` enables the way-partitioned model.
    #[serde(default)]
    pub llc_model: LlcModelKind,
    /// Set-associative model only: application antagonist line touches per
    /// I/O insertion (0 disables the antagonist entirely).
    #[serde(default = "default_app_lines_per_insert")]
    pub app_lines_per_insert: u32,
    /// Set-associative model only: how many of the top DDIO ways the
    /// antagonist may also allocate into. 0 (default) keeps the application
    /// and I/O partitions disjoint.
    #[serde(default)]
    pub app_overlap_ways: u32,
}

fn default_total_ways() -> u32 {
    12
}

fn default_ddio_ways() -> u32 {
    6
}

fn default_app_lines_per_insert() -> u32 {
    4
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            llc_total_bytes: 12 << 20,
            // 6 of 12 ways for DDIO, as configured in §4.1.
            ddio_bytes: 6 << 20,
            llc_hit_latency: Duration::nanos(20),
            dram_base_latency: Duration::nanos(90),
            // 8 × DDR4-3200 is ≈204 GB/s peak, but the I/O path issues
            // scattered buffer-grain reads/writes (miss fills, DDIO
            // eviction writebacks, payload copies) whose effective
            // bandwidth is a fraction of peak — the "poor scalability of
            // concurrent DRAM accesses" of §2.2. 64 GB/s effective makes a
            // fully thrashing 200 Gbps receive path (writebacks + miss
            // fills ≈ 50 GB/s) saturate memory, which is what backs
            // pressure into the IIO buffer and produces HostCC's signal.
            dram_bandwidth: Bandwidth::gibps(64),
            // Typical IIO write-pending capacity is tens of KB; 128 KB keeps
            // the HostCC signal responsive without being instantaneous.
            iio_capacity_bytes: 128 << 10,
            ddio_enabled: true,
            total_ways: default_total_ways(),
            ddio_ways: default_ddio_ways(),
            llc_model: LlcModelKind::default(),
            app_lines_per_insert: default_app_lines_per_insert(),
            app_overlap_ways: 0,
        }
    }
}

impl MemParams {
    /// Bytes of LLC the DDIO partition spans under the selected model: the
    /// raw `ddio_bytes` slice for the pool, or the way-proportional slice
    /// `llc_total_bytes * ddio_ways / total_ways` for the set-associative
    /// model. This is the `Size_LLC` that enters Eq. 1, so changing
    /// `ddio_ways` re-derives the credit total automatically.
    pub fn ddio_partition_bytes(&self) -> u64 {
        match self.llc_model {
            LlcModelKind::Pool => self.ddio_bytes,
            LlcModelKind::SetAssoc => {
                (self.llc_total_bytes / u64::from(self.total_ways).max(1))
                    * u64::from(self.ddio_ways)
            }
        }
    }

    /// The paper's credit total for a given I/O buffer size (Eq. 1):
    /// `C_total = Size_LLC / Size_buf` over the DDIO partition of the
    /// selected model.
    pub fn credit_total(&self, buf_size: u64) -> u64 {
        self.ddio_partition_bytes() / buf_size.max(1)
    }

    /// Number of sets of the set-associative geometry
    /// (`llc_total_bytes / (total_ways * 64)`).
    pub fn sets(&self) -> u64 {
        self.llc_total_bytes / (u64::from(self.total_ways).max(1) * LINE_BYTES)
    }

    /// The set-associative construction parameters this config describes.
    pub fn set_assoc_params(&self) -> SetAssocParams {
        SetAssocParams {
            sets: self.sets() as usize,
            total_ways: self.total_ways as usize,
            ddio_ways: self.ddio_ways as usize,
            app_lines_per_insert: self.app_lines_per_insert,
            app_overlap_ways: self.app_overlap_ways as usize,
        }
    }

    /// Reject geometries the models cannot represent. Called from
    /// `HostConfig::validate`, and by the CLIs before building a machine.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_ways == 0 {
            return Err("mem.total_ways must be >= 1".to_string());
        }
        if self.ddio_ways == 0 {
            return Err(
                "mem.ddio_ways must be >= 1 (disable DDIO with ddio_enabled instead)".to_string(),
            );
        }
        if self.ddio_ways > self.total_ways {
            return Err(format!(
                "mem.ddio_ways ({}) must be <= mem.total_ways ({})",
                self.ddio_ways, self.total_ways
            ));
        }
        if self.app_overlap_ways > self.ddio_ways {
            return Err(format!(
                "mem.app_overlap_ways ({}) must be <= mem.ddio_ways ({})",
                self.app_overlap_ways, self.ddio_ways
            ));
        }
        if self.llc_model == LlcModelKind::SetAssoc && self.sets() == 0 {
            return Err(format!(
                "mem.llc_total_bytes ({}) too small for {} ways of {}-byte lines",
                self.llc_total_bytes, self.total_ways, LINE_BYTES
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_credit_total() {
        // §4.1: 6 MB DDIO partition / 2 KB buffers = 3000 credits.
        let p = MemParams::default();
        assert_eq!(p.credit_total(2048), 3072); // 6 MiB vs paper's 6 MB: 3072
    }

    #[test]
    fn credit_total_guards_zero_buf() {
        let p = MemParams::default();
        assert_eq!(p.credit_total(0), p.ddio_bytes);
    }

    #[test]
    fn setassoc_partition_matches_pool_at_default_geometry() {
        // 12 MiB * 6/12 ways == the pool's 6 MiB slice: switching models at
        // the default geometry does not change Eq. 1's input.
        let pool = MemParams::default();
        let sa = MemParams {
            llc_model: LlcModelKind::SetAssoc,
            ..MemParams::default()
        };
        assert_eq!(pool.ddio_partition_bytes(), sa.ddio_partition_bytes());
        assert_eq!(sa.credit_total(2048), 3072);
    }

    #[test]
    fn credit_total_scales_with_ddio_ways() {
        let mk = |ways: u32| MemParams {
            llc_model: LlcModelKind::SetAssoc,
            ddio_ways: ways,
            ..MemParams::default()
        };
        // 12 MiB / 12 ways = 1 MiB per way; 2 KB buffers = 512 credits/way.
        assert_eq!(mk(2).credit_total(2048), 1024);
        assert_eq!(mk(4).credit_total(2048), 2048);
        assert_eq!(mk(6).credit_total(2048), 3072);
        assert_eq!(mk(8).credit_total(2048), 4096);
    }

    #[test]
    fn default_geometry_sets() {
        // 12 MiB / (12 ways * 64 B) = 16384 sets.
        assert_eq!(MemParams::default().sets(), 16384);
    }

    #[test]
    fn validate_rejects_nonsense_geometry() {
        let base = MemParams::default;
        assert!(base().validate().is_ok());
        let p = MemParams {
            ddio_ways: 0,
            ..base()
        };
        assert!(p.validate().is_err());
        let p = MemParams {
            ddio_ways: 13,
            ..base()
        };
        assert!(p.validate().is_err());
        let p = MemParams {
            total_ways: 0,
            ..base()
        };
        assert!(p.validate().is_err());
        let p = MemParams {
            app_overlap_ways: 7,
            ..base()
        };
        assert!(p.validate().is_err());
        let p = MemParams {
            llc_model: LlcModelKind::SetAssoc,
            llc_total_bytes: 64,
            ..base()
        };
        assert!(p.validate().is_err());
    }
}
