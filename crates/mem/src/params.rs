//! Memory hierarchy parameters, defaulted to the paper's testbed (§2.3/§4.1):
//! Intel Xeon Silver 4309Y — 12 MB LLC, 6 of 12 ways reachable by DDIO,
//! DDR4-3200 on 8 channels, 2 KB I/O buffers.

use ceio_sim::{Bandwidth, Duration};
use serde::{Deserialize, Serialize};

/// Configuration of the host memory hierarchy model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemParams {
    /// Total LLC size in bytes (reporting only; I/O uses `ddio_bytes`).
    pub llc_total_bytes: u64,
    /// DDIO-reachable LLC partition in bytes. With 2 KB buffers this yields
    /// the paper's `C_total = 3000` credits (Eq. 1).
    pub ddio_bytes: u64,
    /// LLC hit load-to-use latency.
    pub llc_hit_latency: Duration,
    /// DRAM base load latency (unloaded).
    pub dram_base_latency: Duration,
    /// Aggregate DRAM bandwidth across all channels.
    pub dram_bandwidth: Bandwidth,
    /// IIO buffer capacity in bytes (PCIe write-pending staging).
    pub iio_capacity_bytes: u64,
    /// Whether DDIO is enabled (DMA writes allocate into the LLC).
    pub ddio_enabled: bool,
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            llc_total_bytes: 12 << 20,
            // 6 of 12 ways for DDIO, as configured in §4.1.
            ddio_bytes: 6 << 20,
            llc_hit_latency: Duration::nanos(20),
            dram_base_latency: Duration::nanos(90),
            // 8 × DDR4-3200 is ≈204 GB/s peak, but the I/O path issues
            // scattered buffer-grain reads/writes (miss fills, DDIO
            // eviction writebacks, payload copies) whose effective
            // bandwidth is a fraction of peak — the "poor scalability of
            // concurrent DRAM accesses" of §2.2. 64 GB/s effective makes a
            // fully thrashing 200 Gbps receive path (writebacks + miss
            // fills ≈ 50 GB/s) saturate memory, which is what backs
            // pressure into the IIO buffer and produces HostCC's signal.
            dram_bandwidth: Bandwidth::gibps(64),
            // Typical IIO write-pending capacity is tens of KB; 128 KB keeps
            // the HostCC signal responsive without being instantaneous.
            iio_capacity_bytes: 128 << 10,
            ddio_enabled: true,
        }
    }
}

impl MemParams {
    /// The paper's credit total for a given I/O buffer size (Eq. 1):
    /// `C_total = Size_LLC / Size_buf` over the DDIO partition.
    pub fn credit_total(&self, buf_size: u64) -> u64 {
        self.ddio_bytes / buf_size.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_credit_total() {
        // §4.1: 6 MB DDIO partition / 2 KB buffers = 3000 credits.
        let p = MemParams::default();
        assert_eq!(p.credit_total(2048), 3072); // 6 MiB vs paper's 6 MB: 3072
    }

    #[test]
    fn credit_total_guards_zero_buf() {
        let p = MemParams::default();
        assert_eq!(p.credit_total(0), p.ddio_bytes);
    }
}
