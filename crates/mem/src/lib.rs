//! # ceio-mem — host memory hierarchy model
//!
//! Models the three host-side memory components on the NIC→CPU data path of
//! CEIO (Fig. 2 of the paper):
//!
//! * [`IioBuffer`] — the Integrated I/O buffer that PCIe writes land in
//!   before the memory controller drains them (stage ②→③). Its occupancy is
//!   the congestion signal HostCC monitors.
//! * [`IoLlc`] / [`SetAssocLlc`] — two models of the DDIO-reachable LLC
//!   partition behind the [`LlcModel`] trait. The pool ([`IoLlc`], default)
//!   is an occupancy-LRU pool of I/O buffers: in-flight I/O bytes beyond its
//!   capacity evict the least-recently-written buffers to DRAM *before the
//!   CPU reads them* — the premature-eviction pathology that all of §2.2 is
//!   about. The set-associative model ([`SetAssocLlc`]) adds the way-level
//!   cause: S sets × W ways with a DDIO-reachable slice of `ddio_ways` ways
//!   (§4.1: 6 of 12) and a deterministic application antagonist contending
//!   for the rest.
//! * [`Dram`] — a FIFO bandwidth server with a base load latency; CPU misses
//!   and DDIO evictions contend here for the same bandwidth, reproducing the
//!   §2.2 observation that misses burn memory bandwidth needed by CPU-bypass
//!   flows.
//!
//! [`MemoryController`] glues the three together and is the single entry
//! point the host machine uses for DMA writes and CPU reads.

#![warn(missing_docs)]

pub mod dram;
pub mod iio;
pub mod llc;
pub mod memctrl;
pub mod model;
pub mod params;
pub mod setassoc;

pub use dram::Dram;
pub use iio::IioBuffer;
pub use llc::{BufferId, IoLlc, LlcStats};
pub use memctrl::{CpuReadOutcome, DmaWriteOutcome, MemoryController};
pub use model::{Llc, LlcModel, WayOccupancy};
pub use params::{LlcModelKind, MemParams};
pub use setassoc::{SetAssocLlc, SetAssocParams, LINE_BYTES};
