//! The [`LlcModel`] seam: one interface over the two LLC models.
//!
//! The memory controller (and everything above it: DMA retire, CPU
//! consume, HostCC's miss signal, telemetry, scope) talks to the LLC only
//! through this surface, so the pool model and the set-associative model
//! are interchangeable per run. The pool stays the default — existing
//! golden CSVs are byte-identical by construction because default-config
//! runs never construct a [`SetAssocLlc`].
//!
//! [`Llc`] is an enum rather than a boxed trait object so the controller
//! keeps `Debug`, avoids an allocation per machine, and lets call sites
//! use inherent methods without importing the trait.

use crate::llc::{BufferId, IoLlc, LlcStats};
use crate::params::{LlcModelKind, MemParams};
use crate::setassoc::SetAssocLlc;

/// Per-way line counts, reported by models that track way geometry.
///
/// Index = way. The DDIO partition is ways `[0, ddio_ways)`; I/O lines
/// outside it never occur, and application lines inside it only occur when
/// the antagonist is configured to overlap.
#[derive(Debug, Clone, Default)]
pub struct WayOccupancy {
    /// Resident I/O buffer lines per way.
    pub io_lines: Vec<u64>,
    /// Resident application (antagonist) lines per way.
    pub app_lines: Vec<u64>,
}

/// Behaviour every LLC model provides to the memory controller.
pub trait LlcModel {
    /// DDIO insertion of a DMA-written buffer; returns the buffers evicted
    /// to make room (their consumers will miss to DRAM).
    fn insert(&mut self, id: BufferId, bytes: u64) -> Vec<BufferId>;
    /// CPU lookup: hit (refreshing recency) or miss. `true` on hit.
    fn lookup(&mut self, id: BufferId) -> bool;
    /// Remove a consumed buffer; no-op if already evicted.
    fn consume(&mut self, id: BufferId);
    /// A DMA write routed around the cache (DDIO disabled).
    fn bypass(&mut self, bytes: u64);
    /// Whether a buffer is resident (no statistics side effects).
    fn contains(&self, id: BufferId) -> bool;
    /// Bytes of I/O buffers currently resident.
    fn occupancy(&self) -> u64;
    /// Capacity of the DDIO-reachable partition in bytes.
    fn capacity(&self) -> u64;
    /// Number of resident I/O buffers.
    fn resident_count(&self) -> usize;
    /// Read-only statistics.
    fn stats(&self) -> &LlcStats;
    /// Reset statistics (keeps contents).
    fn clear_stats(&mut self);
    /// Per-way occupancy, for models with way geometry; `None` for the
    /// flat pool.
    fn way_occupancy(&self) -> Option<WayOccupancy> {
        None
    }
}

impl LlcModel for IoLlc {
    fn insert(&mut self, id: BufferId, bytes: u64) -> Vec<BufferId> {
        IoLlc::insert(self, id, bytes)
    }
    fn lookup(&mut self, id: BufferId) -> bool {
        IoLlc::lookup(self, id)
    }
    fn consume(&mut self, id: BufferId) {
        IoLlc::consume(self, id);
    }
    fn bypass(&mut self, bytes: u64) {
        IoLlc::bypass(self, bytes);
    }
    fn contains(&self, id: BufferId) -> bool {
        IoLlc::contains(self, id)
    }
    fn occupancy(&self) -> u64 {
        IoLlc::occupancy(self)
    }
    fn capacity(&self) -> u64 {
        IoLlc::capacity(self)
    }
    fn resident_count(&self) -> usize {
        IoLlc::resident_count(self)
    }
    fn stats(&self) -> &LlcStats {
        IoLlc::stats(self)
    }
    fn clear_stats(&mut self) {
        IoLlc::clear_stats(self);
    }
}

impl LlcModel for SetAssocLlc {
    fn insert(&mut self, id: BufferId, bytes: u64) -> Vec<BufferId> {
        SetAssocLlc::insert(self, id, bytes)
    }
    fn lookup(&mut self, id: BufferId) -> bool {
        SetAssocLlc::lookup(self, id)
    }
    fn consume(&mut self, id: BufferId) {
        SetAssocLlc::consume(self, id);
    }
    fn bypass(&mut self, bytes: u64) {
        SetAssocLlc::bypass(self, bytes);
    }
    fn contains(&self, id: BufferId) -> bool {
        SetAssocLlc::contains(self, id)
    }
    fn occupancy(&self) -> u64 {
        SetAssocLlc::occupancy(self)
    }
    fn capacity(&self) -> u64 {
        SetAssocLlc::capacity(self)
    }
    fn resident_count(&self) -> usize {
        SetAssocLlc::resident_count(self)
    }
    fn stats(&self) -> &LlcStats {
        SetAssocLlc::stats(self)
    }
    fn clear_stats(&mut self) {
        SetAssocLlc::clear_stats(self);
    }
    fn way_occupancy(&self) -> Option<WayOccupancy> {
        Some(SetAssocLlc::way_occupancy(self))
    }
}

/// The LLC model selected by [`MemParams::llc_model`].
#[derive(Debug)]
pub enum Llc {
    /// Seed flat LRU byte pool over the DDIO partition (default).
    Pool(IoLlc),
    /// Way-partitioned set-associative model with app contention.
    SetAssoc(Box<SetAssocLlc>),
}

/// Forward one method to whichever variant is live.
macro_rules! delegate {
    ($self:ident, $m:ident $(, $arg:expr)*) => {
        match $self {
            Llc::Pool(l) => l.$m($($arg),*),
            Llc::SetAssoc(l) => l.$m($($arg),*),
        }
    };
}

impl Llc {
    /// Build the model `p` selects, sized from `p`'s geometry.
    pub fn from_params(p: &MemParams) -> Llc {
        match p.llc_model {
            LlcModelKind::Pool => Llc::Pool(IoLlc::new(p.ddio_bytes)),
            LlcModelKind::SetAssoc => {
                Llc::SetAssoc(Box::new(SetAssocLlc::new(p.set_assoc_params())))
            }
        }
    }

    /// See [`LlcModel::insert`].
    pub fn insert(&mut self, id: BufferId, bytes: u64) -> Vec<BufferId> {
        delegate!(self, insert, id, bytes)
    }
    /// See [`LlcModel::lookup`].
    pub fn lookup(&mut self, id: BufferId) -> bool {
        delegate!(self, lookup, id)
    }
    /// See [`LlcModel::consume`].
    pub fn consume(&mut self, id: BufferId) {
        delegate!(self, consume, id)
    }
    /// See [`LlcModel::bypass`].
    pub fn bypass(&mut self, bytes: u64) {
        delegate!(self, bypass, bytes)
    }
    /// See [`LlcModel::contains`].
    pub fn contains(&self, id: BufferId) -> bool {
        delegate!(self, contains, id)
    }
    /// See [`LlcModel::occupancy`].
    pub fn occupancy(&self) -> u64 {
        delegate!(self, occupancy)
    }
    /// See [`LlcModel::capacity`].
    pub fn capacity(&self) -> u64 {
        delegate!(self, capacity)
    }
    /// See [`LlcModel::resident_count`].
    pub fn resident_count(&self) -> usize {
        delegate!(self, resident_count)
    }
    /// See [`LlcModel::stats`].
    pub fn stats(&self) -> &LlcStats {
        delegate!(self, stats)
    }
    /// See [`LlcModel::clear_stats`].
    pub fn clear_stats(&mut self) {
        delegate!(self, clear_stats)
    }
    /// Per-way occupancy when the live model has way geometry.
    pub fn way_occupancy(&self) -> Option<WayOccupancy> {
        match self {
            Llc::Pool(_) => None,
            Llc::SetAssoc(l) => Some(l.way_occupancy()),
        }
    }
    /// Bytes by which I/O occupancy currently exceeds the partition
    /// capacity (0 when within bounds) — the scope series behind the
    /// over-capacity SLO.
    pub fn over_capacity_bytes(&self) -> u64 {
        self.occupancy().saturating_sub(self.capacity())
    }
}

impl LlcModel for Llc {
    fn insert(&mut self, id: BufferId, bytes: u64) -> Vec<BufferId> {
        Llc::insert(self, id, bytes)
    }
    fn lookup(&mut self, id: BufferId) -> bool {
        Llc::lookup(self, id)
    }
    fn consume(&mut self, id: BufferId) {
        Llc::consume(self, id);
    }
    fn bypass(&mut self, bytes: u64) {
        Llc::bypass(self, bytes);
    }
    fn contains(&self, id: BufferId) -> bool {
        Llc::contains(self, id)
    }
    fn occupancy(&self) -> u64 {
        Llc::occupancy(self)
    }
    fn capacity(&self) -> u64 {
        Llc::capacity(self)
    }
    fn resident_count(&self) -> usize {
        Llc::resident_count(self)
    }
    fn stats(&self) -> &LlcStats {
        Llc::stats(self)
    }
    fn clear_stats(&mut self) {
        Llc::clear_stats(self);
    }
    fn way_occupancy(&self) -> Option<WayOccupancy> {
        Llc::way_occupancy(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_params() -> MemParams {
        MemParams::default()
    }

    fn setassoc_params() -> MemParams {
        MemParams {
            llc_model: LlcModelKind::SetAssoc,
            ..MemParams::default()
        }
    }

    #[test]
    fn default_params_build_the_pool() {
        let llc = Llc::from_params(&pool_params());
        assert!(matches!(llc, Llc::Pool(_)));
        assert!(llc.way_occupancy().is_none());
    }

    #[test]
    fn setassoc_selection_builds_way_model() {
        let llc = Llc::from_params(&setassoc_params());
        assert!(matches!(llc, Llc::SetAssoc(_)));
        let occ = llc.way_occupancy().expect("way geometry present");
        assert_eq!(occ.io_lines.len(), 12);
    }

    #[test]
    fn pool_and_setassoc_default_capacity_agree() {
        // 12 MiB / 12 ways * 6 DDIO ways == the pool's 6 MiB ddio_bytes:
        // credit derivation is unchanged under the default geometry.
        let pool = Llc::from_params(&pool_params());
        let sa = Llc::from_params(&setassoc_params());
        assert_eq!(pool.capacity(), sa.capacity());
    }

    #[test]
    fn dispatch_reaches_the_live_model() {
        let mut llc = Llc::from_params(&setassoc_params());
        llc.insert(BufferId(1), 2048);
        assert!(llc.contains(BufferId(1)));
        assert_eq!(llc.occupancy(), 2048);
        llc.bypass(64);
        assert_eq!(llc.stats().bypasses, 1);
        llc.consume(BufferId(1));
        assert_eq!(llc.occupancy(), 0);
        llc.clear_stats();
        assert_eq!(llc.stats().insertions, 0);
    }

    #[test]
    fn over_capacity_bytes_tracks_excess() {
        let mut llc = Llc::Pool(IoLlc::new(1024));
        assert_eq!(llc.over_capacity_bytes(), 0);
        llc.insert(BufferId(1), 4096);
        assert_eq!(llc.over_capacity_bytes(), 3072);
    }
}
