//! The memory controller: single entry point tying IIO, LLC, and DRAM
//! together for the host machine.
//!
//! Responsibilities (Fig. 2, stage ③ plus the CPU-side accesses of stage ⑤):
//!
//! * Retire inbound DMA writes from the IIO buffer into the LLC (DDIO on)
//!   or DRAM (DDIO off), charging DRAM bandwidth for every DDIO eviction.
//! * Serve CPU reads of I/O buffers: LLC hit at hit latency, miss at DRAM
//!   latency including queueing.
//! * Serve application memory traffic (copies) through the same DRAM server
//!   so copies contend with miss fills, reproducing the LineFS copy-miss
//!   interaction of §6.4.

use crate::dram::Dram;
use crate::iio::IioBuffer;
use crate::llc::BufferId;
use crate::model::Llc;
use crate::params::MemParams;
use ceio_sim::Time;

/// Result of retiring one DMA write.
#[derive(Debug, Clone)]
pub struct DmaWriteOutcome {
    /// Instant the write is retired (descriptor can complete).
    pub completion: Time,
    /// Buffers evicted from the DDIO partition by this insertion.
    pub evicted: Vec<BufferId>,
    /// Whether the write could not be staged (IIO full). When `true` the
    /// DMA engine must retry; `completion` is meaningless.
    pub stalled: bool,
}

/// Result of one CPU read of an I/O buffer.
#[derive(Debug, Clone, Copy)]
pub struct CpuReadOutcome {
    /// Instant the data is available to the core.
    pub ready: Time,
    /// Whether the read hit in the LLC.
    pub hit: bool,
}

/// The host memory controller model.
#[derive(Debug)]
pub struct MemoryController {
    params: MemParams,
    /// The selected LLC model (public: policies inspect occupancy).
    pub llc: Llc,
    /// DRAM bandwidth server (public: experiments read stats).
    pub dram: Dram,
    /// IIO staging buffer (public: HostCC monitors occupancy).
    pub iio: IioBuffer,
}

impl MemoryController {
    /// Build a controller from parameters.
    pub fn new(params: MemParams) -> MemoryController {
        MemoryController {
            llc: Llc::from_params(&params),
            dram: Dram::new(params.dram_bandwidth, params.dram_base_latency),
            iio: IioBuffer::new(params.iio_capacity_bytes),
            params,
        }
    }

    /// The configuration this controller was built with.
    #[inline]
    pub fn params(&self) -> &MemParams {
        &self.params
    }

    /// Stage an inbound DMA write in the IIO buffer. Returns `false` when
    /// the buffer is full (the PCIe TLP cannot be accepted: backpressure).
    pub fn stage(&mut self, bytes: u64) -> bool {
        self.iio.try_push(bytes)
    }

    /// Retire a staged DMA write of `bytes` into buffer `id`, returning the
    /// retire instant and any DDIO evictions.
    ///
    /// With DDIO enabled the data allocates into the LLC partition. When the
    /// partition is *not* overflowing, the write retires at LLC speed; when
    /// it evicts dirty I/O data, the retire is gated on the eviction
    /// writeback draining to DRAM — this is how LLC thrashing backs pressure
    /// into the IIO buffer (and from there into PCIe credits), producing the
    /// HostCC congestion signal *after* misses have already begun (§2.3).
    /// With DDIO disabled the write goes straight to DRAM.
    pub fn retire(&mut self, now: Time, id: BufferId, bytes: u64) -> (Time, Vec<BufferId>) {
        if self.params.ddio_enabled {
            let evicted = self.llc.insert(id, bytes);
            if evicted.is_empty() {
                (now + self.params.llc_hit_latency, evicted)
            } else {
                let mut done = now + self.params.llc_hit_latency;
                for _ in &evicted {
                    done = done.max(self.dram.request(now, bytes));
                }
                (done, evicted)
            }
        } else {
            self.llc.bypass(bytes);
            (self.dram.request(now, bytes), Vec::new())
        }
    }

    /// The retire scheduled by [`MemoryController::retire`] completed: drain
    /// the staged bytes from the IIO buffer.
    pub fn retire_done(&mut self, bytes: u64) {
        self.iio.pop(bytes);
    }

    /// Retire a staged DMA write *without* DDIO allocation: the data goes
    /// straight to DRAM and never occupies the LLC's I/O partition. Used
    /// for slow-path drain completions — cold-path data fetched on demand
    /// and read once, which CEIO deliberately keeps out of the cache so
    /// draining cannot flush fast-path residents (§4.1 Q2).
    pub fn retire_uncached(&mut self, now: Time, bytes: u64) -> Time {
        self.dram.request(now, bytes)
    }

    /// CPU read of an uncached (slow-path) buffer: always served by DRAM,
    /// not counted against the DDIO partition's hit/miss statistics (it
    /// was never a cache resident).
    pub fn read_uncached(&mut self, now: Time, bytes: u64) -> Time {
        self.dram.request(now, bytes)
    }

    /// Convenience for tests and simple callers: stage + retire +
    /// retire-done in one step (no cross-event IIO occupancy).
    pub fn dma_write(&mut self, now: Time, id: BufferId, bytes: u64) -> DmaWriteOutcome {
        if !self.stage(bytes) {
            return DmaWriteOutcome {
                completion: now,
                evicted: Vec::new(),
                stalled: true,
            };
        }
        let (completion, evicted) = self.retire(now, id, bytes);
        self.retire_done(bytes);
        DmaWriteOutcome {
            completion,
            evicted,
            stalled: false,
        }
    }

    /// CPU read of buffer `id` (`bytes` long): LLC hit or DRAM miss fill.
    pub fn cpu_read(&mut self, now: Time, id: BufferId, bytes: u64) -> CpuReadOutcome {
        if self.params.ddio_enabled && self.llc.lookup(id) {
            CpuReadOutcome {
                ready: now + self.params.llc_hit_latency,
                hit: true,
            }
        } else {
            if !self.params.ddio_enabled {
                // Keep miss accounting meaningful with DDIO off.
                self.llc.lookup(id);
            }
            CpuReadOutcome {
                ready: self.dram.request(now, bytes),
                hit: false,
            }
        }
    }

    /// Application memory traffic of `bytes` (e.g. a payload copy): charged
    /// to DRAM bandwidth; returns completion.
    ///
    /// §6.4: copy destinations are usually not LLC-resident, so copies are
    /// modelled as DRAM traffic end-to-end.
    pub fn app_copy(&mut self, now: Time, bytes: u64) -> Time {
        self.dram.request(now, bytes)
    }

    /// The CPU finished consuming buffer `id`: free its LLC residency.
    pub fn consume(&mut self, id: BufferId) {
        self.llc.consume(id);
    }

    /// LLC miss rate observed so far.
    pub fn miss_rate(&self) -> f64 {
        self.llc.stats().miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceio_sim::Duration;

    fn ctrl() -> MemoryController {
        MemoryController::new(MemParams::default())
    }

    #[test]
    fn ddio_write_retires_at_llc_speed() {
        let mut c = ctrl();
        let out = c.dma_write(Time(0), BufferId(1), 2048);
        assert!(!out.stalled);
        assert!(out.evicted.is_empty());
        assert_eq!(out.completion, Time(0) + c.params().llc_hit_latency);
    }

    #[test]
    fn bypass_write_pays_dram() {
        let mut c = MemoryController::new(MemParams {
            ddio_enabled: false,
            ..MemParams::default()
        });
        let out = c.dma_write(Time(0), BufferId(1), 2048);
        assert!(out.completion >= Time(0) + c.params().dram_base_latency);
    }

    #[test]
    fn ddio_disabled_counts_bypasses_and_caches_nothing() {
        let mut c = MemoryController::new(MemParams {
            ddio_enabled: false,
            ..MemParams::default()
        });
        c.dma_write(Time(0), BufferId(1), 2048);
        c.dma_write(Time(1), BufferId(2), 2048);
        assert_eq!(c.llc.stats().bypasses, 2);
        assert_eq!(c.llc.stats().insertions, 0);
        assert_eq!(c.llc.occupancy(), 0);
        // The later CPU read records the compulsory miss.
        let r = c.cpu_read(Time(100), BufferId(1), 2048);
        assert!(!r.hit);
        assert_eq!(c.llc.stats().misses, 1);
    }

    #[test]
    fn read_hits_after_ddio_write() {
        let mut c = ctrl();
        c.dma_write(Time(0), BufferId(1), 2048);
        let r = c.cpu_read(Time(100), BufferId(1), 2048);
        assert!(r.hit);
        assert_eq!(r.ready, Time(100) + c.params().llc_hit_latency);
    }

    #[test]
    fn read_misses_after_eviction_and_pays_dram() {
        let mut c = MemoryController::new(MemParams {
            ddio_bytes: 2048, // single-buffer partition
            ..MemParams::default()
        });
        c.dma_write(Time(0), BufferId(1), 2048);
        let out = c.dma_write(Time(10), BufferId(2), 2048);
        assert_eq!(out.evicted, vec![BufferId(1)]);
        let r = c.cpu_read(Time(100), BufferId(1), 2048);
        assert!(!r.hit);
        assert!(r.ready >= Time(100) + c.params().dram_base_latency);
    }

    #[test]
    fn evictions_consume_dram_bandwidth() {
        let mut c = MemoryController::new(MemParams {
            ddio_bytes: 2048,
            ..MemParams::default()
        });
        c.dma_write(Time(0), BufferId(1), 2048);
        let before = c.dram.stats().bytes_served;
        c.dma_write(Time(0), BufferId(2), 2048); // evicts 1 -> writeback
        assert_eq!(c.dram.stats().bytes_served, before + 2048);
    }

    #[test]
    fn iio_full_stalls_dma() {
        let mut c = MemoryController::new(MemParams {
            iio_capacity_bytes: 1024,
            ..MemParams::default()
        });
        let out = c.dma_write(Time(0), BufferId(1), 2048);
        assert!(out.stalled);
        assert_eq!(c.iio.stats().rejected, 1);
    }

    #[test]
    fn consume_releases_llc_space() {
        let mut c = MemoryController::new(MemParams {
            ddio_bytes: 4096,
            ..MemParams::default()
        });
        c.dma_write(Time(0), BufferId(1), 2048);
        c.dma_write(Time(0), BufferId(2), 2048);
        c.consume(BufferId(1));
        let out = c.dma_write(Time(10), BufferId(3), 2048);
        assert!(
            out.evicted.is_empty(),
            "freed space should absorb the write"
        );
    }

    #[test]
    fn app_copy_contends_with_miss_fills() {
        let mut c = ctrl();
        let t1 = c.app_copy(Time(0), 1_000_000);
        // A miss fill right after the big copy queues behind it.
        let r = c.cpu_read(Time(0), BufferId(99), 2048);
        assert!(!r.hit);
        assert!(r.ready > t1 - Duration::nanos(1));
    }

    #[test]
    fn miss_rate_aggregates() {
        let mut c = ctrl();
        c.dma_write(Time(0), BufferId(1), 2048);
        c.cpu_read(Time(1), BufferId(1), 2048); // hit
        c.cpu_read(Time(2), BufferId(2), 2048); // miss (never written)
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }
}
