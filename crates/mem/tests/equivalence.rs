//! Observational equivalence of the two LLC models at the degenerate
//! geometry.
//!
//! With **1 set**, `ddio_bytes / 64` DDIO ways, the antagonist disabled,
//! and line-multiple buffer sizes, the set-associative model's
//! LRU-within-set over whole buffers degenerates to exactly the pool
//! model's "evict globally oldest until it fits, never the incoming
//! buffer" loop. Any arbitrary insert/lookup/consume trace must therefore
//! produce identical observable behaviour from both models: hit/miss
//! results, eviction sets, occupancy, residency, and the full statistics
//! block. This pins the refactor — the way model is a strict
//! generalisation of the seed pool, not a re-tuning of it.

use ceio_mem::{BufferId, IoLlc, SetAssocLlc, SetAssocParams, LINE_BYTES};
use proptest::prelude::*;

/// One step of a random trace over a small id space.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Lookup(u64),
    Consume(u64),
    Bypass(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Ids collide often (small space) so re-insert/refresh paths are hit;
    // sizes are 1..=8 lines, against a 16-line capacity.
    prop_oneof![
        (0u64..24, 1u64..=8).prop_map(|(id, lines)| Op::Insert(id, lines * LINE_BYTES)),
        (0u64..24).prop_map(Op::Lookup),
        (0u64..24).prop_map(Op::Consume),
        (1u64..=8).prop_map(|lines| Op::Bypass(lines * LINE_BYTES)),
    ]
}

/// Byte-equivalent degenerate geometry: 1 set whose DDIO ways hold exactly
/// `capacity_bytes`, antagonist off.
fn degenerate(capacity_bytes: u64) -> SetAssocLlc {
    SetAssocLlc::new(SetAssocParams {
        sets: 1,
        total_ways: (capacity_bytes / LINE_BYTES) as usize + 2,
        ddio_ways: (capacity_bytes / LINE_BYTES) as usize,
        app_lines_per_insert: 0,
        app_overlap_ways: 0,
    })
}

proptest! {
    /// Arbitrary traces observe no difference between the models.
    #[test]
    fn pool_and_setassoc_agree_on_arbitrary_traces(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let capacity = 16 * LINE_BYTES;
        let mut pool = IoLlc::new(capacity);
        let mut sa = degenerate(capacity);
        prop_assert_eq!(pool.capacity(), sa.capacity());
        for op in &ops {
            match *op {
                Op::Insert(id, bytes) => {
                    let mut ep = pool.insert(BufferId(id), bytes);
                    let mut es = sa.insert(BufferId(id), bytes);
                    // Same victims; order may differ (the pool walks global
                    // LRU order, the way model evicts per line placed).
                    ep.sort();
                    es.sort();
                    prop_assert_eq!(ep, es, "evictions diverge at insert({id}, {bytes})");
                }
                Op::Lookup(id) => {
                    prop_assert_eq!(
                        pool.lookup(BufferId(id)),
                        sa.lookup(BufferId(id)),
                        "hit/miss diverges at lookup({id})"
                    );
                }
                Op::Consume(id) => {
                    pool.consume(BufferId(id));
                    sa.consume(BufferId(id));
                }
                Op::Bypass(bytes) => {
                    pool.bypass(bytes);
                    sa.bypass(bytes);
                }
            }
            prop_assert_eq!(pool.occupancy(), sa.occupancy());
            prop_assert_eq!(pool.resident_count(), sa.resident_count());
        }
        let (p, s) = (pool.stats(), sa.stats());
        prop_assert_eq!(p.insertions, s.insertions);
        prop_assert_eq!(p.hits, s.hits);
        prop_assert_eq!(p.misses, s.misses);
        prop_assert_eq!(p.evictions, s.evictions);
        prop_assert_eq!(p.evicted_bytes, s.evicted_bytes);
        prop_assert_eq!(p.bypasses, s.bypasses);
        prop_assert_eq!(p.over_capacity_events, s.over_capacity_events);
        prop_assert_eq!(p.eviction_age_sum, s.eviction_age_sum);
        prop_assert_eq!(p.app_evictions, 0u64);
        prop_assert_eq!(s.app_evictions, 0u64);
        for id in 0..24 {
            prop_assert_eq!(pool.contains(BufferId(id)), sa.contains(BufferId(id)));
        }
    }

    /// Oversized inserts flag over-capacity identically in both models.
    #[test]
    fn oversized_inserts_agree(extra_lines in 1u64..16) {
        let capacity = 8 * LINE_BYTES;
        let mut pool = IoLlc::new(capacity);
        let mut sa = degenerate(capacity);
        let bytes = capacity + extra_lines * LINE_BYTES;
        prop_assert_eq!(pool.insert(BufferId(1), bytes), sa.insert(BufferId(1), bytes));
        prop_assert_eq!(pool.stats().over_capacity_events, 1u64);
        prop_assert_eq!(sa.stats().over_capacity_events, 1u64);
        prop_assert_eq!(pool.occupancy(), sa.occupancy());
        prop_assert!(pool.contains(BufferId(1)) && sa.contains(BufferId(1)));
    }
}
