//! Property-based tests for the simulation engine primitives.

use ceio_sim::{Bandwidth, Duration, EventQueue, Histogram, Rng, Time};
use proptest::prelude::*;

proptest! {
    /// Histogram quantiles have bounded relative error: for any recorded
    /// value v, a histogram containing only v reports quantiles within 1.6%
    /// (2^-6, one sub-bucket at 7-bit precision).
    #[test]
    fn histogram_single_value_relative_error(v in 1u64..u64::MAX / 2) {
        let mut h = Histogram::new();
        h.record(v);
        let got = h.p50();
        let err = (got as f64 - v as f64).abs() / v as f64;
        prop_assert!(err <= 0.016, "v={v} got={got} err={err}");
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(0u64..10_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantile not monotone at q={q}");
            prop_assert!(x <= h.max());
            prev = x;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// The single-pass batch [`Histogram::quantiles`] is monotone over an
    /// ascending quantile list, bracketed by the histogram max, and agrees
    /// exactly with the per-call [`Histogram::quantile`] scan — the batch
    /// sweep's target-reordering must not change any answer.
    #[test]
    fn histogram_batch_quantiles_monotone(values in prop::collection::vec(0u64..10_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let batch = h.quantiles(&qs);
        prop_assert_eq!(batch.len(), qs.len());
        for w in batch.windows(2) {
            prop_assert!(w[0] <= w[1], "batch quantiles not monotone: {:?}", batch);
        }
        for (q, got) in qs.iter().zip(&batch) {
            prop_assert!(*got <= h.max());
            prop_assert_eq!(*got, h.quantile(*q), "batch disagrees with per-call at q={}", q);
        }
    }

    /// Histogram mean is exact (tracked outside the buckets).
    #[test]
    fn histogram_mean_exact(values in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let expect = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - expect).abs() < 1e-6);
    }

    /// Merging preserves the total count and the max.
    #[test]
    fn histogram_merge_preserves_totals(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let max = ha.max().max(hb.max());
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ha.max(), max);
    }

    /// The event queue is a stable priority queue: pops are sorted by time,
    /// and equal times preserve insertion order.
    #[test]
    fn event_queue_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(Time(t), i);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.at.nanos(), e.event));
        }
        // Sorted by time.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
        prop_assert_eq!(popped.len(), times.len());
    }

    /// Bandwidth transfer times are monotone in bytes and never undershoot
    /// the exact rational time.
    #[test]
    fn bandwidth_monotone_and_conservative(
        gbps in 1u64..1000,
        bytes_a in 1u64..1_000_000,
        bytes_b in 1u64..1_000_000,
    ) {
        let bw = Bandwidth::gbps(gbps);
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(bw.transfer_time(lo) <= bw.transfer_time(hi));
        let exact_ns = lo as f64 * 8.0 / (gbps as f64); // bits / Gbps = ns
        prop_assert!(bw.transfer_time(lo).as_nanos() as f64 >= exact_ns - 1e-9);
    }

    /// Transfer time then bytes_in round-trips within one rate quantum.
    #[test]
    fn bandwidth_roundtrip(gbps in 1u64..1000, bytes in 1u64..10_000_000) {
        let bw = Bandwidth::gbps(gbps);
        let t = bw.transfer_time(bytes);
        let back = bw.bytes_in(t);
        // Ceiling rounding means we may overshoot by at most one ns worth.
        let one_ns_bytes = bw.as_bytes_per_sec() / 1_000_000_000 + 1;
        prop_assert!(back + one_ns_bytes >= bytes, "back={back} bytes={bytes}");
    }

    /// RNG ranges are always within bound, for arbitrary seeds.
    #[test]
    fn rng_range_in_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(r.gen_range(bound) < bound);
        }
    }

    /// Durations add associatively (saturating arithmetic, small values).
    #[test]
    fn duration_add_assoc(a in 0u64..1u64<<40, b in 0u64..1u64<<40, c in 0u64..1u64<<40) {
        let (da, db, dc) = (Duration::nanos(a), Duration::nanos(b), Duration::nanos(c));
        prop_assert_eq!((da + db) + dc, da + (db + dc));
    }
}

/// One step of the queue-equivalence exercise, applied identically to the
/// wheel-backed queue and the heap-backed reference.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule at `now + offset` (offset 0 = same-nanosecond burst).
    Schedule { offset: u64 },
    /// Schedule cancellable at `now + offset`, remembering the token.
    ScheduleCancellable { offset: u64 },
    /// Cancel the `pick % tokens.len()`-th remembered token (possibly
    /// already fired or already cancelled — a cancellation race).
    Cancel { pick: usize },
    /// Pop the next event.
    Pop,
}

/// Offsets biased toward 0 (same-ns FIFO bursts) and small values, with a
/// heavy tail that crosses several wheel levels.
fn offset_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => Just(0u64),
        4 => 1u64..64,
        2 => 64u64..4096,
        1 => 4096u64..(1 << 30),
        1 => (1u64 << 30)..(1 << 45),
    ]
}

fn queue_op_strategy() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        4 => offset_strategy().prop_map(|offset| QueueOp::Schedule { offset }),
        3 => offset_strategy().prop_map(|offset| QueueOp::ScheduleCancellable { offset }),
        2 => any::<usize>().prop_map(|pick| QueueOp::Cancel { pick }),
        3 => Just(QueueOp::Pop),
    ]
}

/// Run `ops` against one queue, returning the observable trace: every popped
/// `(time, payload)` plus every cancel outcome, then a full drain.
fn queue_trace(backend: ceio_sim::QueueBackend, ops: &[QueueOp]) -> Vec<(u64, u64, bool)> {
    let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
    let mut tokens = Vec::new();
    let mut trace = Vec::new();
    let mut next_payload = 0u64;
    for op in ops {
        match op {
            QueueOp::Schedule { offset } => {
                q.schedule_at(q.now() + Duration::nanos(*offset), next_payload);
                next_payload += 1;
            }
            QueueOp::ScheduleCancellable { offset } => {
                tokens.push(
                    q.schedule_cancellable_at(q.now() + Duration::nanos(*offset), next_payload),
                );
                next_payload += 1;
            }
            QueueOp::Cancel { pick } => {
                if !tokens.is_empty() {
                    let tok = tokens[pick % tokens.len()];
                    trace.push((u64::MAX, u64::MAX, q.cancel(tok)));
                }
            }
            QueueOp::Pop => {
                if let Some(e) = q.pop() {
                    trace.push((e.at.0, e.event, true));
                }
            }
        }
    }
    while let Some(e) = q.pop() {
        trace.push((e.at.0, e.event, true));
    }
    assert!(q.is_empty());
    trace
}

proptest! {
    /// The timing wheel and the reference heap produce bit-identical
    /// dispatch traces — same `(time, payload)` pop order, same cancel
    /// outcomes — under arbitrary interleavings of scheduling (including
    /// same-nanosecond FIFO bursts and multi-level offsets), cancellation
    /// races, and pops.
    #[test]
    fn wheel_matches_heap_reference(ops in prop::collection::vec(queue_op_strategy(), 1..120)) {
        let wheel = queue_trace(ceio_sim::QueueBackend::Wheel, &ops);
        let heap = queue_trace(ceio_sim::QueueBackend::Heap, &ops);
        prop_assert_eq!(wheel, heap);
    }

    /// Same-nanosecond bursts pop in exact scheduling order on both
    /// backends, even when split across interleaved future times.
    #[test]
    fn same_ns_bursts_stay_fifo(burst in 2usize..150, t in 0u64..1u64<<40) {
        for backend in [ceio_sim::QueueBackend::Wheel, ceio_sim::QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..burst as u64 {
                q.schedule_at(Time(t), i);
                q.schedule_at(Time(t.saturating_add(i + 1)), burst as u64 + i);
            }
            let mut prev: Option<(u64, u64)> = None;
            let mut same_t = Vec::new();
            while let Some(e) = q.pop() {
                if let Some((pt, _)) = prev {
                    prop_assert!(e.at.0 >= pt, "time went backwards");
                }
                if e.at.0 == t {
                    same_t.push(e.event);
                }
                prev = Some((e.at.0, e.event));
            }
            prop_assert_eq!(&same_t, &(0..burst as u64).collect::<Vec<_>>());
        }
    }
}
