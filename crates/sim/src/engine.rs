//! The simulation run loop.
//!
//! A [`Model`] owns all simulated state and handles one event at a time; the
//! [`Simulation`] drives the future-event list until a horizon, an event
//! budget, or queue exhaustion. Keeping the loop this small pushes all domain
//! logic into the model crates, where it is unit-testable without an engine.

use crate::event::EventQueue;
use crate::time::Time;

/// A discrete-event model: all mutable simulation state plus an event handler.
pub trait Model {
    /// The event payload type dispatched through the queue.
    type Event;

    /// Handle one event at its dispatch time. The model schedules follow-up
    /// events on `queue`; `queue.now()` equals `at` for the duration of the
    /// call.
    fn handle(&mut self, at: Time, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why a [`Simulation::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The horizon was reached; events at or beyond it remain queued.
    ReachedHorizon,
    /// No events remain before the horizon.
    QueueExhausted,
    /// The event budget was consumed before the horizon.
    BudgetExhausted,
}

/// A model plus its future-event list.
///
/// ```
/// use ceio_sim::{Duration, EventQueue, Model, Simulation, Time};
///
/// struct Counter(u32);
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, _at: Time, _ev: (), q: &mut EventQueue<()>) {
///         self.0 += 1;
///         if self.0 < 3 {
///             q.schedule_in(Duration::nanos(10), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter(0));
/// sim.queue.schedule_at(Time::ZERO, ());
/// sim.run_until(Time::MAX, u64::MAX);
/// assert_eq!(sim.model.0, 3);
/// assert_eq!(sim.now(), Time(20));
/// ```
pub struct Simulation<M: Model> {
    /// The domain model (public: experiments read stats out of it directly).
    pub model: M,
    /// The future-event list (public: scenario drivers pre-seed events).
    pub queue: EventQueue<M::Event>,
    events_processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Wrap a model with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            events_processed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Total events dispatched so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Dispatch a single event, if one is pending strictly before `horizon`.
    /// Returns `false` when the queue is empty or the next event is at or
    /// beyond the horizon (the event stays queued and the clock holds).
    ///
    /// Manual steppers pass the same horizon they would give
    /// [`Simulation::run_until`], so the two paths cannot disagree on
    /// whether a boundary event runs; pass [`Time::MAX`] for "next event,
    /// whenever it is".
    pub fn step(&mut self, horizon: Time) -> bool {
        match self.queue.pop_before(horizon) {
            Some(entry) => {
                self.events_processed += 1;
                self.model.handle(entry.at, entry.event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Run until simulated time reaches `horizon` (exclusive), the queue
    /// drains, or `max_events` more events have been dispatched.
    ///
    /// `max_events` is a runaway guard for experiment harnesses; pass
    /// `u64::MAX` for "no budget".
    ///
    /// The hot loop costs a single queue pop per event
    /// ([`EventQueue::pop_before`]) — there is no separate peek-then-pop.
    pub fn run_until(&mut self, horizon: Time, max_events: u64) -> StepOutcome {
        let mut budget = max_events;
        loop {
            if budget == 0 {
                // Out of budget: classify what stopped us without consuming
                // anything, matching the pre-budget checks of the hot loop.
                return match self.queue.peek_time() {
                    None => StepOutcome::QueueExhausted,
                    Some(t) if t >= horizon => StepOutcome::ReachedHorizon,
                    Some(_) => StepOutcome::BudgetExhausted,
                };
            }
            if !self.step(horizon) {
                return if self.queue.is_empty() {
                    StepOutcome::QueueExhausted
                } else {
                    StepOutcome::ReachedHorizon
                };
            }
            budget -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// A model that re-schedules itself `remaining` times at a fixed period,
    /// recording each dispatch.
    struct Ticker {
        period: Duration,
        remaining: u32,
        fired_at: Vec<Time>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, at: Time, _: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(at);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule_in(self.period, ());
            }
        }
    }

    fn ticker_sim(remaining: u32) -> Simulation<Ticker> {
        let mut sim = Simulation::new(Ticker {
            period: Duration::nanos(10),
            remaining,
            fired_at: Vec::new(),
        });
        sim.queue.schedule_at(Time(0), ());
        sim
    }

    #[test]
    fn run_until_queue_exhausted() {
        let mut sim = ticker_sim(4);
        let outcome = sim.run_until(Time::MAX, u64::MAX);
        assert_eq!(outcome, StepOutcome::QueueExhausted);
        assert_eq!(
            sim.model.fired_at,
            vec![Time(0), Time(10), Time(20), Time(30), Time(40)]
        );
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn run_until_horizon_stops_before_later_events() {
        let mut sim = ticker_sim(1000);
        let outcome = sim.run_until(Time(35), u64::MAX);
        assert_eq!(outcome, StepOutcome::ReachedHorizon);
        // Events at 0,10,20,30 dispatched; 40 remains queued.
        assert_eq!(sim.model.fired_at.len(), 4);
        assert_eq!(sim.queue.peek_time(), Some(Time(40)));
    }

    #[test]
    fn run_until_budget_exhausted() {
        let mut sim = ticker_sim(1000);
        let outcome = sim.run_until(Time::MAX, 3);
        assert_eq!(outcome, StepOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut sim = ticker_sim(0);
        assert!(sim.step(Time::MAX));
        assert!(!sim.step(Time::MAX));
    }

    #[test]
    fn step_honors_horizon_like_run_until() {
        let mut stepped = ticker_sim(1000);
        let mut ran = ticker_sim(1000);
        while stepped.step(Time(35)) {}
        ran.run_until(Time(35), u64::MAX);
        // Both paths stop before the boundary event at t=40.
        assert_eq!(stepped.model.fired_at, ran.model.fired_at);
        assert_eq!(stepped.now(), ran.now());
        assert_eq!(stepped.queue.peek_time(), Some(Time(40)));
    }
}
