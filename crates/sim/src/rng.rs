//! Deterministic pseudo-random number generation.
//!
//! All stochastic behaviour in the workspace (packet arrivals, workload key
//! selection, destination-hopping in the flow-scaling experiment) draws from
//! this xoshiro256** generator, seeded per experiment. Two runs with the same
//! seed produce bit-identical traces on every platform, which is what makes
//! the EXPERIMENTS.md numbers regenerable.
//!
//! The implementation is the public-domain xoshiro256** 1.0 by Blackman and
//! Vigna, with SplitMix64 seed expansion as its authors recommend.

/// A seedable xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`. `bound == 0` returns 0.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reachable when bound doesn't divide 2^64.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson inter-arrival times in open-loop traffic generators.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // Guard against ln(0): gen_f64 is in [0,1), so 1-u is in (0,1].
        let u = self.gen_f64();
        -mean * (1.0 - u).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element index of a non-empty slice length.
    #[inline]
    pub fn pick_index(&mut self, len: usize) -> usize {
        self.gen_range(len as u64) as usize
    }

    /// Derive an independent child generator (for per-flow streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
        assert_eq!(r.gen_range(0), 0);
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(4);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.gen_range(10) as usize] += 1;
        }
        for &b in &buckets {
            // Expected 10_000 per bucket; allow 5% deviation.
            assert!((b as i64 - 10_000).abs() < 500, "bucket count {b}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut r = Rng::seed_from_u64(6);
        let n = 200_000;
        let mean = 41.8;
        let sum: f64 = (0..n).map(|_| r.gen_exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.02,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from_u64(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
