//! Measurement primitives: counters, rate meters, EWMAs, time series, and an
//! HDR-style histogram for tail-latency percentiles.
//!
//! Every number in EXPERIMENTS.md flows through these types. The histogram
//! uses log-linear bucketing (like HdrHistogram): values are grouped into
//! buckets whose width doubles every `2^sub_bucket_bits` buckets, giving a
//! bounded relative error of `2^-sub_bucket_bits` at any magnitude — accurate
//! P99.9s over 7 decades of nanosecond latencies in a few KiB of memory.

use crate::time::{Duration, Time};
use serde::Serialize;

/// A monotonically increasing event counter with a delta-reading helper.
#[derive(Debug, Default, Clone, Serialize)]
pub struct Counter {
    total: u64,
    last_read: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` occurrences.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Add one occurrence.
    #[inline]
    pub fn inc(&mut self) {
        self.total += 1;
    }

    /// Lifetime total.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Occurrences since the previous `take_delta` call (windowed reporting).
    pub fn take_delta(&mut self) -> u64 {
        let d = self.total - self.last_read;
        self.last_read = self.total;
        d
    }
}

/// Windowed rate meter: counts occurrences (e.g. bytes or packets) and
/// converts window deltas into rates.
#[derive(Debug, Clone, Serialize)]
pub struct RateMeter {
    counter: Counter,
    window_start: Time,
}

impl RateMeter {
    /// A meter whose first window starts at `start`.
    pub fn new(start: Time) -> RateMeter {
        RateMeter {
            counter: Counter::new(),
            window_start: start,
        }
    }

    /// Record `n` units at the current time.
    #[inline]
    pub fn record(&mut self, n: u64) {
        self.counter.add(n);
    }

    /// Lifetime total units.
    #[inline]
    pub fn total(&self) -> u64 {
        self.counter.total()
    }

    /// Close the window ending at `now`: returns (units, window length) and
    /// starts a new window.
    pub fn close_window(&mut self, now: Time) -> (u64, Duration) {
        let units = self.counter.take_delta();
        let span = now.since(self.window_start);
        self.window_start = now;
        (units, span)
    }

    /// Close the window and return the rate in units per second.
    pub fn rate_per_sec(&mut self, now: Time) -> f64 {
        let (units, span) = self.close_window(now);
        if span.as_nanos() == 0 {
            return 0.0;
        }
        units as f64 / span.as_secs_f64()
    }
}

/// Exponentially weighted moving average with weight `g` (DCTCP-style).
#[derive(Debug, Clone, Serialize)]
pub struct Ewma {
    value: f64,
    gain: f64,
    primed: bool,
}

impl Ewma {
    /// An EWMA with gain `g` in `(0, 1]`; the first observation initializes
    /// the average directly.
    pub fn new(gain: f64) -> Ewma {
        Ewma {
            value: 0.0,
            gain: gain.clamp(f64::MIN_POSITIVE, 1.0),
            primed: false,
        }
    }

    /// Fold in an observation.
    pub fn observe(&mut self, x: f64) {
        if self.primed {
            self.value = (1.0 - self.gain) * self.value + self.gain * x;
        } else {
            self.value = x;
            self.primed = true;
        }
    }

    /// Current average (zero before any observation).
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// A labelled sequence of (time, value) samples — one experiment curve.
#[derive(Debug, Clone, Serialize)]
pub struct TimeSeries {
    /// Curve label as it appears in reports.
    pub name: String,
    /// Samples in chronological order.
    pub points: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// An empty named series.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample.
    pub fn push(&mut self, at: Time, value: f64) {
        self.points.push((at, value));
    }

    /// Mean of all sample values (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Minimum sample value (zero if empty).
    pub fn min(&self) -> f64 {
        let m = self
            .points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }
}

/// Log-linear histogram with bounded relative error, for latency percentiles.
///
/// Values ≥ `2^(sub_bucket_bits+1)` fall into buckets of doubling width; the
/// maximum representable value is `u64::MAX` (clamped into the last bucket).
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    sub_bucket_bits: u32,
    counts: Vec<u64>,
    total: u64,
    max_seen: u64,
    min_seen: u64,
    sum: u128,
}

impl Histogram {
    /// Default precision: 2^-7 < 1% relative error.
    pub fn new() -> Histogram {
        Histogram::with_precision(7)
    }

    /// `sub_bucket_bits` controls relative error (`2^-bits`); 5..=12 sensible.
    pub fn with_precision(sub_bucket_bits: u32) -> Histogram {
        assert!((1..=16).contains(&sub_bucket_bits));
        // Linear region (2^bits buckets) plus tiers bits..63, each
        // contributing 2^(bits-1) buckets, covers the full u64 range.
        let buckets = (1usize << sub_bucket_bits)
            + (64 - sub_bucket_bits as usize) * (1usize << (sub_bucket_bits - 1));
        Histogram {
            sub_bucket_bits,
            counts: vec![0; buckets],
            total: 0,
            max_seen: 0,
            min_seen: u64::MAX,
            sum: 0,
        }
    }

    #[inline]
    fn index_of(&self, value: u64) -> usize {
        let b = self.sub_bucket_bits;
        if value < (1u64 << b) {
            // Linear region: one bucket per value.
            return value as usize;
        }
        // Log region: tier t covers [2^t, 2^(t+1)) with 2^(b-1) buckets of
        // width 2^(t-b+1) each, so relative error stays below 2^-(b-1).
        let tier = 63 - value.leading_zeros(); // tier >= b
        let sub = (value - (1u64 << tier)) >> (tier - b + 1); // [0, 2^(b-1))
        let idx = (1usize << b) + ((tier - b) as usize) * (1usize << (b - 1)) + sub as usize;
        idx.min(self.counts.len() - 1)
    }

    #[inline]
    fn value_of(&self, index: usize) -> u64 {
        let b = self.sub_bucket_bits;
        if index < (1usize << b) {
            return index as u64;
        }
        let past = index - (1usize << b);
        let tier = b + (past / (1usize << (b - 1))) as u32;
        let sub = (past % (1usize << (b - 1))) as u64;
        if tier >= 63 {
            return u64::MAX;
        }
        // Representative value: start of the bucket.
        (1u64 << tier) + (sub << (tier - b + 1))
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max_seen = self.max_seen.max(value);
        self.min_seen = self.min_seen.min(value);
    }

    /// Record a [`Duration`] (convenience for latency recording).
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value (zero if empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Exact minimum recorded value (zero if empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_seen
        }
    }

    /// Exact mean of recorded values (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, within the bucket relative error.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp representative to the true max for tail stability.
                return self.value_of(i).min(self.max_seen);
            }
        }
        self.max_seen
    }

    /// Values at several quantiles (each in `[0, 1]`) in **one pass** over
    /// the buckets, returned in the same order as `qs`.
    ///
    /// [`Histogram::quantile`] scans the bucket array per call; experiment
    /// tables ask for 4–5 quantiles per histogram, so the per-call scans
    /// add up. This walks the counts once regardless of how many
    /// quantiles are requested. An empty histogram yields all zeros.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<u64> {
        let mut out = vec![0u64; qs.len()];
        if self.total == 0 || qs.is_empty() {
            return out;
        }
        // Rank target for each requested quantile, then visit them in
        // ascending-target order during a single bucket sweep.
        let targets: Vec<u64> = qs
            .iter()
            .map(|q| {
                let q = q.clamp(0.0, 1.0);
                ((q * self.total as f64).ceil() as u64).clamp(1, self.total)
            })
            .collect();
        let mut order: Vec<usize> = (0..qs.len()).collect();
        order.sort_by_key(|&i| targets[i]);

        let mut seen = 0u64;
        let mut next = 0usize; // index into `order`
        for (i, &c) in self.counts.iter().enumerate() {
            if next >= order.len() {
                break;
            }
            seen += c;
            while next < order.len() && seen >= targets[order[next]] {
                out[order[next]] = self.value_of(i).min(self.max_seen);
                next += 1;
            }
        }
        // Any remainder (only possible via counting edge cases): the max.
        while next < order.len() {
            out[order[next]] = self.max_seen;
            next += 1;
        }
        out
    }

    /// P50 convenience.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// P99 convenience.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    /// P99.9 convenience.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Sum of all recorded values (u128: immune to u64 overflow even for
    /// nanosecond sums over long runs).
    #[inline]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Merge another histogram of the same precision into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.sub_bucket_bits, other.sub_bucket_bits);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
        self.min_seen = self.min_seen.min(other.min_seen);
    }

    /// Reset all recorded data, keeping the precision.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.max_seen = 0;
        self.min_seen = u64::MAX;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Display for Histogram {
    /// One-line summary: `count=N mean=M p50=A p99=B p999=C max=D`
    /// (a single [`Histogram::quantiles`] sweep; used by `ceio-inspect`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let qs = self.quantiles(&[0.50, 0.99, 0.999]);
        write!(
            f,
            "count={} mean={:.1} p50={} p99={} p999={} max={}",
            self.total,
            self.mean(),
            qs[0],
            qs[1],
            qs[2],
            self.max_seen
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta_reads() {
        let mut c = Counter::new();
        c.add(5);
        c.inc();
        assert_eq!(c.total(), 6);
        assert_eq!(c.take_delta(), 6);
        c.add(4);
        assert_eq!(c.take_delta(), 4);
        assert_eq!(c.take_delta(), 0);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn rate_meter_computes_window_rate() {
        let mut m = RateMeter::new(Time::ZERO);
        m.record(1_000_000);
        // 1e6 units over 1 ms = 1e9 units/sec.
        let r = m.rate_per_sec(Time(1_000_000));
        assert!((r - 1e9).abs() < 1.0, "rate {r}");
        // Next window empty.
        assert_eq!(m.rate_per_sec(Time(2_000_000)), 0.0);
        assert_eq!(m.total(), 1_000_000);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(1.0 / 16.0);
        e.observe(10.0);
        assert_eq!(e.value(), 10.0);
        for _ in 0..500 {
            e.observe(2.0);
        }
        assert!((e.value() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
        assert_eq!(h.p50(), 49);
        assert!((h.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bounded_relative_error() {
        let mut h = Histogram::new();
        // Latencies spanning 100 ns .. 10 ms.
        for i in 1..=100_000u64 {
            h.record(i * 100);
        }
        for &(q, expect) in &[(0.5, 5_000_000u64), (0.99, 9_900_000), (0.999, 9_990_000)] {
            let got = h.quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.02, "q={q}: got {got}, expect {expect}, err {err}");
        }
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [3u64, 70, 9_000, 1_000_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [5u64, 800, 44_000] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn histogram_clear_resets() {
        let mut h = Histogram::new();
        h.record(12345);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn histogram_single_value_quantiles() {
        let mut h = Histogram::new();
        h.record(5_000);
        assert_eq!(h.p50(), h.p999());
        let got = h.p50();
        let err = (got as f64 - 5_000.0).abs() / 5_000.0;
        assert!(err < 0.02, "got {got}");
    }

    #[test]
    fn quantiles_single_pass_matches_per_call() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 7 % 50_000);
        }
        // Unsorted request order exercises the order-index mapping.
        let qs = [0.99, 0.5, 0.999, 0.0, 1.0, 0.9];
        let batch = h.quantiles(&qs);
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, h.quantile(*q), "q={q}");
        }
        assert!(h.quantiles(&[]).is_empty());
        assert_eq!(Histogram::new().quantiles(&[0.5, 0.99]), vec![0, 0]);
    }

    /// Batch quantiles on an empty histogram return a zero per requested
    /// quantile — same shape as the request, never a shorter vector — and
    /// an empty request on a populated histogram returns an empty vector.
    #[test]
    fn quantiles_batch_empty_cases() {
        let empty = Histogram::new();
        assert_eq!(empty.quantiles(&[0.0, 0.5, 1.0]), vec![0, 0, 0]);
        assert!(empty.quantiles(&[]).is_empty());
        let mut h = Histogram::new();
        h.record(42);
        assert!(h.quantiles(&[]).is_empty());
    }

    /// With exactly one recorded sample, every quantile — including the
    /// q=0 and q=1 extremes — reports that sample (the linear region is
    /// exact for small values, so no bucket error applies).
    #[test]
    fn quantiles_batch_single_sample() {
        let mut h = Histogram::new();
        h.record(77);
        let got = h.quantiles(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(got, vec![77; 5]);
    }

    /// q=0 reports the smallest recorded value and q=1 the largest; values
    /// in the linear region make both exact. Out-of-range requests clamp
    /// (q<0 behaves as 0, q>1 as 1) instead of panicking or wrapping.
    #[test]
    fn quantiles_batch_extremes_bracket_min_and_max() {
        let mut h = Histogram::new();
        for v in [9u64, 3, 27] {
            h.record(v);
        }
        assert_eq!(h.quantiles(&[0.0, 1.0]), vec![3, 27]);
        assert_eq!(h.quantiles(&[-0.5, 2.0]), vec![3, 27]);
    }

    #[test]
    fn histogram_sum_and_display() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.sum(), 400);
        let line = format!("{h}");
        assert!(line.contains("count=2"), "{line}");
        assert!(line.contains("mean=200.0"), "{line}");
        assert!(line.contains("max=300"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn timeseries_mean() {
        let mut ts = TimeSeries::new("tput");
        ts.push(Time(0), 10.0);
        ts.push(Time(1), 20.0);
        assert_eq!(ts.mean(), 15.0);
        assert_eq!(TimeSeries::new("x").mean(), 0.0);
    }
}
