//! Deterministic future-event list.
//!
//! Events are keyed by `(time, sequence)`: the sequence number makes
//! simultaneous events pop in insertion order, which is what makes
//! whole-simulation replays bit-identical — two events scheduled for the same
//! nanosecond always dispatch in the order they were scheduled.
//!
//! Internally the queue is split in two:
//!
//! * a **generational slab** holding the event payloads, so the priority
//!   structure only ever moves 24-byte `(time, seq, slot)` keys and so a
//!   scheduled event can be cancelled in O(1) through a [`TimerToken`]
//!   (cancellation frees the payload immediately; the orphaned key is
//!   lazily skipped when it surfaces);
//! * a pluggable **priority backend** ([`QueueBackend`]): the default is a
//!   hierarchical timing wheel (64-slot radix per level, 11 levels covering
//!   the full `u64` nanosecond range) with O(1) amortised push/pop; a binary
//!   heap is kept as the reference implementation, pinned equivalent by
//!   property tests and selectable for control runs.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// An event with its scheduled dispatch time.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Dispatch instant.
    pub at: Time,
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    // Reverse ordering: earliest-first under a max-heap discipline.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle to a cancellable scheduled event.
///
/// Returned by [`EventQueue::schedule_cancellable_at`]; pass it back to
/// [`EventQueue::cancel`] to drop the event in O(1) before it dispatches.
/// Tokens are generational: once the event dispatches (or is cancelled) the
/// token goes stale and further `cancel` calls return `false`, even if the
/// underlying slot has been reused by a newer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerToken {
    idx: u32,
    gen: u32,
}

/// Which priority structure orders the future-event list.
///
/// Both backends produce bit-identical `(time, seq)` pop order (pinned by
/// property tests); they differ only in cost. The wheel is the default; the
/// heap is kept as the slow reference for debugging and as the control arm of
/// the `engine` perf experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timing wheel: O(1) amortised schedule/pop.
    Wheel,
    /// Binary heap: O(log n) schedule/pop (seed-era reference).
    Heap,
}

/// Priority key: everything the backend needs to order an event. The payload
/// stays in the slab; `idx` points at its slot.
#[derive(Debug, Clone, Copy)]
struct Key {
    at: Time,
    seq: u64,
    idx: u32,
}

/// [`Key`] with earliest-first ordering for the reference `BinaryHeap`.
#[derive(Debug, Clone, Copy)]
struct HeapKey(Key);

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed so `LEVELS * LEVEL_BITS >= 64`: the wheel spans the whole
/// `u64` nanosecond timeline with no overflow list.
const LEVELS: usize = 11;

/// Mask of the low `bits` bits, saturating at the full word.
#[inline]
fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Hierarchical timing wheel over absolute nanosecond times.
///
/// Level `l` buckets keys by bits `[6l, 6(l+1))` of their dispatch time.
/// A key lands on the level of its *highest bit differing from the wheel
/// cursor*, so level 0 slots each hold exactly one nanosecond and draining a
/// slot (sorted by `seq`) preserves same-time FIFO order. Popping re-anchors
/// the cursor to the drained window's base before rescanning, so slots whose
/// index is below the old cursor position are still found after a
/// higher-level bucket is redistributed.
#[derive(Debug)]
struct Wheel {
    /// `LEVELS * SLOTS` buckets, row-major by level.
    buckets: Vec<Vec<Key>>,
    /// Per-level slot occupancy bitmap.
    occupied: [u64; LEVELS],
    /// Cursor: all wheel-resident keys have `at.0 > cur`; keys at or before
    /// the cursor live in `ready`.
    cur: u64,
    /// Imminent keys in dispatch order (ascending `(at, seq)`).
    ready: VecDeque<Key>,
}

impl Wheel {
    fn new() -> Self {
        Wheel {
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            cur: 0,
            ready: VecDeque::new(),
        }
    }

    fn push(&mut self, key: Key) {
        let at = key.at.0;
        if at <= self.cur {
            // Already inside the drained window: merge into the sorted ready
            // run. Same-time keys sort after existing ones (their seq is
            // larger), preserving FIFO.
            let pos = self
                .ready
                .partition_point(|k| (k.at, k.seq) <= (key.at, key.seq));
            self.ready.insert(pos, key);
            return;
        }
        let diff = at ^ self.cur;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((at >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.buckets[level * SLOTS + slot].push(key);
        self.occupied[level] |= 1u64 << slot;
    }

    /// Refill `ready` from the wheel until it holds the minimum key (or the
    /// wheel is empty). Amortised O(1): every key cascades down at most
    /// `LEVELS - 1` times over its lifetime.
    fn advance(&mut self) {
        while self.ready.is_empty() {
            if self.occupied[0] != 0 {
                // Lowest occupied level-0 slot is the earliest nanosecond:
                // drain it in seq order.
                let slot = self.occupied[0].trailing_zeros() as usize;
                self.occupied[0] &= !(1u64 << slot);
                let mut batch = std::mem::take(&mut self.buckets[slot]);
                batch.sort_unstable_by_key(|k| k.seq);
                debug_assert!(batch.windows(2).all(|w| w[0].at == w[1].at));
                if let Some(first) = batch.first() {
                    self.cur = first.at.0;
                }
                self.ready.extend(batch.drain(..));
                self.buckets[slot] = batch; // hand the allocation back
                return;
            }
            let Some(level) = (1..LEVELS).find(|&l| self.occupied[l] != 0) else {
                return; // wheel empty
            };
            // Redistribute the earliest occupied bucket one level down,
            // re-anchoring the cursor to the bucket's window base first so
            // the re-pushed keys spread over the full child range.
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.occupied[level] &= !(1u64 << slot);
            let batch = std::mem::take(&mut self.buckets[level * SLOTS + slot]);
            let lb = LEVEL_BITS * level as u32;
            self.cur = (self.cur & !low_mask(lb + LEVEL_BITS)) | ((slot as u64) << lb);
            for key in batch {
                debug_assert!(key.at.0 >= self.cur);
                self.push(key);
            }
        }
    }

    fn peek(&mut self) -> Option<&Key> {
        self.advance();
        self.ready.front()
    }

    fn pop(&mut self) -> Option<Key> {
        self.advance();
        self.ready.pop_front()
    }

    /// Remove every key (in no particular order), for backend conversion.
    fn drain_all(&mut self) -> Vec<Key> {
        let mut out: Vec<Key> = self.ready.drain(..).collect();
        for bucket in &mut self.buckets {
            out.append(bucket);
        }
        self.occupied = [0; LEVELS];
        out
    }
}

/// The pluggable priority structure.
#[derive(Debug)]
enum Backend {
    Wheel(Box<Wheel>),
    Heap(BinaryHeap<HeapKey>),
}

impl Backend {
    fn push(&mut self, key: Key) {
        match self {
            Backend::Wheel(w) => w.push(key),
            Backend::Heap(h) => h.push(HeapKey(key)),
        }
    }

    fn peek(&mut self) -> Option<Key> {
        match self {
            Backend::Wheel(w) => w.peek().copied(),
            Backend::Heap(h) => h.peek().map(|k| k.0),
        }
    }

    fn pop(&mut self) -> Option<Key> {
        match self {
            Backend::Wheel(w) => w.pop(),
            Backend::Heap(h) => h.pop().map(|k| k.0),
        }
    }
}

/// One payload slot of the generational slab.
#[derive(Debug)]
struct Slot<E> {
    /// Bumped on every free; stale [`TimerToken`]s fail the generation check.
    gen: u32,
    /// Seq of the current occupant; orphaned keys fail the seq check.
    seq: u64,
    event: Option<E>,
}

/// The future-event list of a simulation.
///
/// `E` is the model's event payload type. The queue tracks the current
/// simulated time; popping an event advances the clock to its dispatch time.
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    now: Time,
    next_seq: u64,
    scheduled_total: u64,
    dispatched_total: u64,
    cancelled_total: u64,
    live: usize,
    peak_live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero, on the default (timing wheel) backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Wheel)
    }

    /// An empty queue at time zero on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Wheel => Backend::Wheel(Box::new(Wheel::new())),
                QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
            },
            slots: Vec::new(),
            free: Vec::new(),
            now: Time::ZERO,
            next_seq: 0,
            scheduled_total: 0,
            dispatched_total: 0,
            cancelled_total: 0,
            live: 0,
            peak_live: 0,
        }
    }

    /// Which backend orders this queue.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Wheel(_) => QueueBackend::Wheel,
            Backend::Heap(_) => QueueBackend::Heap,
        }
    }

    /// Rebuild the queue on a different backend, preserving every pending
    /// event and the exact `(time, seq)` dispatch order. O(n); intended for
    /// control runs that flip a fully-seeded simulation onto the reference
    /// heap.
    pub fn set_backend(&mut self, backend: QueueBackend) {
        if self.backend() == backend {
            return;
        }
        let keys = match &mut self.backend {
            Backend::Wheel(w) => w.drain_all(),
            Backend::Heap(h) => std::mem::take(h).into_iter().map(|k| k.0).collect(),
        };
        let mut next = match backend {
            QueueBackend::Wheel => {
                let mut w = Wheel::new();
                w.cur = self.now.0;
                Backend::Wheel(Box::new(w))
            }
            QueueBackend::Heap => Backend::Heap(BinaryHeap::with_capacity(keys.len())),
        };
        for key in keys {
            next.push(key);
        }
        self.backend = next;
    }

    /// The current simulated time (the dispatch time of the last popped
    /// event, or zero before the first pop).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    fn alloc(&mut self, seq: u64, event: E) -> u32 {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.seq = seq;
            slot.event = Some(event);
            idx
        } else {
            debug_assert!(self.slots.len() < u32::MAX as usize, "invariant: slab full");
            self.slots.push(Slot {
                gen: 0,
                seq,
                event: Some(event),
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
    }

    fn schedule_key(&mut self, at: Time, event: E) -> Key {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let idx = self.alloc(seq, event);
        let key = Key { at, seq, idx };
        self.backend.push(key);
        key
    }

    /// Schedule `event` at absolute instant `at`.
    ///
    /// Scheduling in the past is a model bug; the event is clamped to `now`
    /// so causality is preserved, and debug builds panic to flag the bug.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        self.schedule_key(at, event);
    }

    /// Schedule `event` after a relative delay from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at `at` and return a [`TimerToken`] that can cancel
    /// it in O(1) any time before it dispatches.
    pub fn schedule_cancellable_at(&mut self, at: Time, event: E) -> TimerToken {
        let key = self.schedule_key(at, event);
        TimerToken {
            idx: key.idx,
            gen: self.slots[key.idx as usize].gen,
        }
    }

    /// Cancellable variant of [`EventQueue::schedule_in`].
    #[inline]
    pub fn schedule_cancellable_in(&mut self, delay: Duration, event: E) -> TimerToken {
        self.schedule_cancellable_at(self.now + delay, event)
    }

    /// Cancel a pending event in O(1). Returns `true` if the event was still
    /// pending (and is now dropped), `false` if it already dispatched, was
    /// already cancelled, or the token is stale. The payload is freed
    /// immediately; the backend's orphaned key is skipped lazily on pop.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        let Some(slot) = self.slots.get_mut(token.idx as usize) else {
            return false;
        };
        if slot.gen != token.gen || slot.event.is_none() {
            return false;
        }
        slot.event = None;
        self.release(token.idx);
        self.cancelled_total += 1;
        true
    }

    /// Whether the key still references a live (uncancelled) payload.
    #[inline]
    fn is_live(&self, key: Key) -> bool {
        let slot = &self.slots[key.idx as usize];
        slot.seq == key.seq && slot.event.is_some()
    }

    /// Take the payload of a known-live key, advancing the clock.
    fn dispatch(&mut self, key: Key) -> EventEntry<E> {
        debug_assert!(key.at >= self.now, "event queue went backwards");
        let event = self.slots[key.idx as usize]
            .event
            .take()
            .expect("invariant: dispatching a live key");
        self.release(key.idx);
        self.now = key.at;
        self.dispatched_total += 1;
        EventEntry {
            at: key.at,
            seq: key.seq,
            event,
        }
    }

    /// Discard cancelled keys at the front, returning the minimum live key
    /// without removing it.
    fn clean_peek(&mut self) -> Option<Key> {
        loop {
            let key = self.backend.peek()?;
            if self.is_live(key) {
                return Some(key);
            }
            self.backend.pop();
        }
    }

    /// Pop the earliest event, advancing the clock to its dispatch time.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        loop {
            let key = self.backend.pop()?;
            if self.is_live(key) {
                return Some(self.dispatch(key));
            }
        }
    }

    /// Pop the earliest event only if it dispatches strictly before
    /// `horizon`. Events at or beyond the horizon stay queued and the clock
    /// does not move. This is the single-pop primitive the run loop uses
    /// instead of a separate peek-then-pop.
    pub fn pop_before(&mut self, horizon: Time) -> Option<EventEntry<E>> {
        let key = self.clean_peek()?;
        if key.at >= horizon {
            return None;
        }
        self.backend.pop();
        Some(self.dispatch(key))
    }

    /// Dispatch time of the next event without popping it.
    ///
    /// Needs `&mut self`: cancelled entries at the front are lazily discarded
    /// so the reported time always belongs to a live event.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.clean_peek().map(|k| k.at)
    }

    /// Number of pending (live, uncancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled (for run diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events dispatched (popped) so far.
    #[inline]
    pub fn dispatched_total(&self) -> u64 {
        self.dispatched_total
    }

    /// Total timers cancelled before dispatch.
    #[inline]
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// High-water mark of pending events over the queue's lifetime.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(30), "c");
        q.schedule_at(Time(10), "a");
        q.schedule_at(Time(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Time(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_dispatch_time() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(42), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time(42));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(100), 1u8);
        q.pop();
        q.schedule_in(Duration::nanos(5), 2u8);
        let e = q.pop().unwrap();
        assert_eq!(e.at, Time(105));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(9), ());
        assert_eq!(q.peek_time(), Some(Time(9)));
        assert_eq!(q.now(), Time::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(10), ());
        q.pop();
        q.schedule_at(Time(5), ());
    }

    #[test]
    fn counters_track_len_and_total() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(Time(1), ());
        q.schedule_at(Time(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    /// Times spanning every wheel level, scheduled shuffled, pop sorted.
    #[test]
    fn cross_level_times_pop_sorted() {
        let times = [
            1u64,
            63,
            64,
            65,
            127,
            128,
            4095,
            4096,
            1 << 18,
            (1 << 18) + 1,
            1 << 30,
            1 << 45,
            (1 << 45) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
        ];
        let mut q = EventQueue::new();
        // Deliberately interleaved insertion order.
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule_at(Time(t), i);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.0)).collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    /// Regression: after a higher-level bucket redistributes, level-0 slots
    /// with indices *below* the old cursor's slot index must still be found
    /// (the cursor re-anchors to the new window base).
    #[test]
    fn redistribution_reaches_low_slot_indices() {
        let mut q = EventQueue::new();
        // 70 -> level-0 slot 6 of window [64,128); 130 -> slot 2 of [128,192).
        q.schedule_at(Time(70), "a");
        q.schedule_at(Time(130), "b");
        assert_eq!(q.pop().map(|e| (e.at, e.event)), Some((Time(70), "a")));
        assert_eq!(q.pop().map(|e| (e.at, e.event)), Some((Time(130), "b")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_drops_pending_event() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(10), "keep");
        let tok = q.schedule_cancellable_at(Time(5), "drop");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancelled_total(), 1);
        // Cancelled event neither dispatches nor advances the clock early.
        let e = q.pop().unwrap();
        assert_eq!((e.at, e.event), (Time(10), "keep"));
        assert!(q.pop().is_none());
        // Double-cancel and post-dispatch cancel are inert.
        assert!(!q.cancel(tok));
    }

    #[test]
    fn cancel_after_dispatch_is_stale() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable_at(Time(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(tok));
        // Slot reuse must not resurrect the old token.
        let _tok2 = q.schedule_cancellable_at(Time(2), ());
        assert!(!q.cancel(tok));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_skips_cancelled_front() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable_at(Time(3), 0);
        q.schedule_at(Time(8), 1);
        assert!(q.cancel(tok));
        assert_eq!(q.peek_time(), Some(Time(8)));
        assert_eq!(q.pop_before(Time(8)), None);
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.pop().map(|e| e.event), Some(1));
    }

    #[test]
    fn pop_before_honors_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(10), "a");
        q.schedule_at(Time(20), "b");
        assert_eq!(q.pop_before(Time(10)), None);
        assert_eq!(q.now(), Time::ZERO);
        let e = q.pop_before(Time(15)).unwrap();
        assert_eq!((e.at, e.event), (Time(10), "a"));
        assert_eq!(q.pop_before(Time(15)), None);
        assert_eq!(q.now(), Time(10));
    }

    #[test]
    fn backend_conversion_preserves_order() {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        assert_eq!(wheel.backend(), QueueBackend::Wheel);
        assert_eq!(heap.backend(), QueueBackend::Heap);
        for q in [&mut wheel, &mut heap] {
            for i in 0..50u64 {
                q.schedule_at(Time((i * 37) % 11), i);
            }
            let tok = q.schedule_cancellable_at(Time(4), 999);
            q.cancel(tok);
        }
        // Flip the wheel-seeded queue onto the heap mid-flight.
        wheel.set_backend(QueueBackend::Heap);
        assert_eq!(wheel.backend(), QueueBackend::Heap);
        loop {
            let a = wheel.pop().map(|e| (e.at, e.event));
            let b = heap.pop().map(|e| (e.at, e.event));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn dispatch_and_peak_counters() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(1), ());
        q.schedule_at(Time(2), ());
        q.schedule_at(Time(3), ());
        assert_eq!(q.peak_pending(), 3);
        q.pop();
        q.pop();
        assert_eq!(q.dispatched_total(), 2);
        assert_eq!(q.peak_pending(), 3);
        q.schedule_at(Time(9), ());
        assert_eq!(q.peak_pending(), 3);
    }
}
