//! Deterministic future-event list.
//!
//! A binary-heap priority queue keyed by `(time, sequence)`. The sequence
//! number makes simultaneous events pop in insertion order, which is what
//! makes whole-simulation replays bit-identical: two events scheduled for the
//! same nanosecond always dispatch in the order they were scheduled.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with its scheduled dispatch time.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Dispatch instant.
    pub at: Time,
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event list of a simulation.
///
/// `E` is the model's event payload type. The queue tracks the current
/// simulated time; popping an event advances the clock to its dispatch time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    now: Time,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The current simulated time (the dispatch time of the last popped
    /// event, or zero before the first pop).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute instant `at`.
    ///
    /// Scheduling in the past is a model bug; the event is clamped to `now`
    /// so causality is preserved, and debug builds panic to flag the bug.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(EventEntry { at, seq, event });
    }

    /// Schedule `event` after a relative delay from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock to its dispatch time.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        Some(entry)
    }

    /// Dispatch time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (for run diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(30), "c");
        q.schedule_at(Time(10), "a");
        q.schedule_at(Time(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(Time(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_dispatch_time() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(42), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time(42));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(100), 1u8);
        q.pop();
        q.schedule_in(Duration::nanos(5), 2u8);
        let e = q.pop().unwrap();
        assert_eq!(e.at, Time(105));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(9), ());
        assert_eq!(q.peek_time(), Some(Time(9)));
        assert_eq!(q.now(), Time::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(Time(10), ());
        q.pop();
        q.schedule_at(Time(5), ());
    }

    #[test]
    fn counters_track_len_and_total() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(Time(1), ());
        q.schedule_at(Time(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
