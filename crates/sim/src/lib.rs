//! # ceio-sim — deterministic discrete-event simulation engine
//!
//! Foundation substrate for the CEIO reproduction. Every other crate in the
//! workspace builds on the primitives defined here:
//!
//! * [`time`] — integer-nanosecond simulated time ([`Time`], [`Duration`]) and
//!   bandwidth/rate conversion helpers ([`Bandwidth`]).
//! * [`event`] — a deterministic future-event list ([`EventQueue`]) with
//!   FIFO tie-breaking for simultaneous events, a hierarchical timing-wheel
//!   backend (binary heap kept as the reference), and O(1) timer
//!   cancellation via [`TimerToken`].
//! * [`engine`] — the [`Model`]/[`Simulation`] run loop.
//! * [`rng`] — a seedable xoshiro256** generator so every experiment is
//!   bit-reproducible from its seed.
//! * [`stats`] — counters, windowed rate meters, EWMAs, time series, and an
//!   HDR-style log-linear histogram used for P50/P99/P99.9 reporting.
//!
//! The engine is intentionally synchronous and single-threaded: the CEIO
//! experiments sweep many configurations, and the harness parallelises across
//! *simulations*, never inside one, which keeps every run deterministic.

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Model, Simulation, StepOutcome};
pub use event::{EventEntry, EventQueue, QueueBackend, TimerToken};
pub use rng::Rng;
pub use stats::{Counter, Ewma, Histogram, RateMeter, TimeSeries};
pub use time::{Bandwidth, Duration, Time};
