//! Simulated time and bandwidth arithmetic.
//!
//! Time is an absolute instant in integer nanoseconds since simulation start;
//! [`Duration`] is a span in the same unit. Integer nanoseconds keep event
//! ordering exact and platform-independent, which the deterministic replay
//! guarantees of the whole workspace rest on.
//!
//! Sub-nanosecond precision matters for serialization delays (a 64 B packet at
//! 200 Gbps serializes in 2.56 ns), so [`Bandwidth`] computes transfer times in
//! picoseconds internally and rounds up: a transfer never completes earlier
//! than physics allows.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute simulated instant, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Time {
    /// The zero instant (simulation start).
    pub const ZERO: Time = Time(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// actually later (callers comparing unordered timestamps get a sane 0).
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// This instant expressed in microseconds as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// The span in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in microseconds as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiply the span by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// Integer division of the span.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, k: u64) -> Duration {
        Duration(self.0 / k.max(1))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A transfer rate, stored as bytes per second.
///
/// Transfer-time computation uses 128-bit picosecond arithmetic and rounds
/// *up*: a byte count never finishes serializing early, so back-to-back
/// transfers can never exceed the configured rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Bandwidth {
    bytes_per_sec: u64,
}

impl Bandwidth {
    /// Construct from bits per second.
    #[inline]
    pub const fn bits_per_sec(bps: u64) -> Bandwidth {
        Bandwidth {
            bytes_per_sec: bps / 8,
        }
    }

    /// Construct from gigabits per second (network-link style units).
    #[inline]
    pub const fn gbps(g: u64) -> Bandwidth {
        Bandwidth {
            bytes_per_sec: g * 1_000_000_000 / 8,
        }
    }

    /// Construct from gigabytes per second (memory-bus style units).
    #[inline]
    pub const fn gibps(g: u64) -> Bandwidth {
        Bandwidth {
            bytes_per_sec: g * 1_000_000_000,
        }
    }

    /// Construct from bytes per second.
    #[inline]
    pub const fn bytes_per_sec(b: u64) -> Bandwidth {
        Bandwidth { bytes_per_sec: b }
    }

    /// The raw rate in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> u64 {
        self.bytes_per_sec
    }

    /// The raw rate in gigabits per second, as a float (reporting only).
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.bytes_per_sec as f64 * 8.0 / 1e9
    }

    /// Time to move `bytes` at this rate, rounded up to the next nanosecond.
    ///
    /// A zero rate yields [`Duration`] of `u64::MAX` (effectively "never") so
    /// paused servers do not divide by zero.
    #[inline]
    pub fn transfer_time(self, bytes: u64) -> Duration {
        if self.bytes_per_sec == 0 {
            return Duration(u64::MAX);
        }
        if bytes == 0 {
            return Duration::ZERO;
        }
        // ns = ceil(bytes * 1e9 / rate); 128-bit to avoid overflow.
        let num = bytes as u128 * 1_000_000_000u128;
        let den = self.bytes_per_sec as u128;
        Duration(num.div_ceil(den) as u64)
    }

    /// Bytes that can move in `d` at this rate (rounded down).
    #[inline]
    pub fn bytes_in(self, d: Duration) -> u64 {
        ((self.bytes_per_sec as u128 * d.0 as u128) / 1_000_000_000u128) as u64
    }

    /// Scale the rate by a rational factor `num/den` (used by pacing and
    /// congestion control). Saturates; a zero denominator is treated as 1.
    #[inline]
    pub fn scale(self, num: u64, den: u64) -> Bandwidth {
        let den = den.max(1);
        Bandwidth {
            bytes_per_sec: ((self.bytes_per_sec as u128 * num as u128) / den as u128) as u64,
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gbps", self.as_gbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::ZERO + Duration::micros(3);
        assert_eq!(t.nanos(), 3_000);
        assert_eq!(t.since(Time::ZERO), Duration::micros(3));
        assert_eq!((t - Duration::micros(3)), Time::ZERO);
    }

    #[test]
    fn since_saturates_for_out_of_order_timestamps() {
        let a = Time(100);
        let b = Time(200);
        assert_eq!(a.since(b), Duration::ZERO);
        assert_eq!(b.since(a), Duration(100));
    }

    #[test]
    fn bandwidth_transfer_time_matches_line_rate_math() {
        // The paper's canonical number: 1024 B packets at 200 Gbps arrive
        // every 41.8 ns (§1). Ceiling rounding gives 41 -> 42.
        let link = Bandwidth::gbps(200);
        let t = link.transfer_time(1024);
        assert!(t.as_nanos() == 41 || t.as_nanos() == 42, "got {t}");
    }

    #[test]
    fn bandwidth_transfer_time_rounds_up() {
        // 1 byte at 8 Gbps = 1 ns exactly; 1 byte at 16 Gbps = 0.5 ns -> 1 ns.
        assert_eq!(Bandwidth::gbps(8).transfer_time(1).as_nanos(), 1);
        assert_eq!(Bandwidth::gbps(16).transfer_time(1).as_nanos(), 1);
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        assert_eq!(
            Bandwidth::bytes_per_sec(0).transfer_time(64).as_nanos(),
            u64::MAX
        );
    }

    #[test]
    fn bytes_in_inverts_transfer_time_approximately() {
        let bw = Bandwidth::gbps(100);
        let d = bw.transfer_time(1_000_000);
        let b = bw.bytes_in(d);
        assert!((1_000_000..=1_000_013).contains(&b), "b = {b}");
    }

    #[test]
    fn scale_applies_rational_factor() {
        let bw = Bandwidth::gbps(200);
        assert_eq!(bw.scale(1, 2).as_bytes_per_sec(), bw.as_bytes_per_sec() / 2);
        assert_eq!(
            bw.scale(3, 4).as_bytes_per_sec(),
            bw.as_bytes_per_sec() / 4 * 3
        );
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(format!("{}", Duration::nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::secs(12)), "12.000s");
    }
}
