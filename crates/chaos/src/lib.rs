//! Deterministic, seeded fault injection for the CEIO data path.
//!
//! The paper's correctness story (§4.1–4.2) silently assumes a lossless
//! control path: every lazy credit release arrives, every DMA completes,
//! and on-NIC DRAM never fills mid-drain. This crate supplies the
//! adversary that breaks those assumptions *reproducibly*: a [`FaultPlan`]
//! names injection sites and per-site probabilities, and every component
//! that wants to misbehave forks a [`FaultInjector`] keyed by a stable tag.
//! Two runs with the same plan (and the same machine seed) inject the
//! exact same faults at the exact same points — chaos schedules are replay
//! artifacts, not noise.
//!
//! Nothing in this crate touches the data path by itself. The consuming
//! crates (`ceio-pcie`, `ceio-nic`, `ceio-host`, `ceio-core`) hold an
//! `Option<FaultInjector>` behind their `chaos` cargo feature, so a build
//! without the feature carries no injector fields and no branches, and an
//! enabled-but-unarmed run costs one pointer-width test per hook — the
//! same zero-overhead contract as the `trace` and `audit` layers.

use ceio_sim::{Duration, Rng};
use std::fmt;

/// A named point on the NIC→LLC path where a fault can be injected.
///
/// Each site maps to one failure mode from the issue's fault model; the
/// per-site probability in a [`FaultPlan`] is evaluated independently at
/// every traversal of the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A lazy credit-release message is lost in flight: the release never
    /// reaches the `CreditManager` (recovered by lease expiry).
    ///
    /// recovery: ceio_credit_lease_reclaims_total
    CreditReleaseLoss,
    /// A lazy credit-release message is delayed by the plan's
    /// `release_delay` before it lands.
    ///
    /// recovery: ceio_credit_stale_releases_total
    CreditReleaseDelay,
    /// A posted DMA write fails at issue (link-level fault; retried with
    /// backoff by the host machine).
    ///
    /// recovery: ceio_recovery_dma_write_retries_total
    DmaWriteFault,
    /// A posted DMA write times out: the issue is accepted but reported
    /// failed after the timeout window.
    ///
    /// recovery: ceio_recovery_dma_backoff_ns_total
    DmaWriteTimeout,
    /// A non-posted DMA read request fails at issue.
    ///
    /// recovery: ceio_recovery_dma_read_retries_total
    DmaReadFault,
    /// A non-posted DMA read request times out.
    ///
    /// recovery: ceio_recovery_dma_backoff_ns_total
    DmaReadTimeout,
    /// On-NIC DRAM rejects a store as if the elastic region were full
    /// (exhaustion mid-drain; triggers degraded mode).
    ///
    /// recovery: ceio_ctl_degraded_entries_total
    OnboardExhaust,
    /// The NIC ARM core stalls for the plan's `arm_stall` before running
    /// the scheduled work.
    ///
    /// recovery: ceio_chaos_arm_injected_stall_ns_total
    ArmStall,
    /// An RMT steering-rule install is delayed by the plan's `rmt_delay`
    /// (the rewrite stays in flight; packets keep taking the old rule).
    ///
    /// recovery: ceio_arm_busy_ns_total
    RmtInstallDelay,
    /// The host consumer pauses for the plan's `consumer_pause` before
    /// its next poll (models an application hiccup / scheduler preemption).
    ///
    /// recovery: ceio_recovery_consumer_pauses_total
    ConsumerPause,
    /// A receive queue wedges for the plan's `queue_stall` (descriptor
    /// pipeline hiccup; the watchdog marks it Suspect and, if it recovers
    /// in time, records a false alarm instead of failing it over).
    ///
    /// recovery: ceio_failover_false_alarms_total
    QueueStall,
    /// A receive queue dies for the plan's `queue_death`: long enough that
    /// the watchdog fails it over (flows re-steered, credits quarantined)
    /// and later walks it back to `Healthy`.
    ///
    /// recovery: ceio_failover_recoveries_total
    QueueDeath,
    /// A link-level flap wedges *every* receive queue for the plan's
    /// `link_flap` — a correlated burst the per-queue watchdogs must not
    /// misread as independent queue deaths.
    ///
    /// recovery: ceio_failover_suspects_total
    LinkFlap,
}

impl FaultSite {
    /// Number of distinct sites (array-index domain).
    pub const COUNT: usize = 13;

    /// Every site, in stable declaration order.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::CreditReleaseLoss,
        FaultSite::CreditReleaseDelay,
        FaultSite::DmaWriteFault,
        FaultSite::DmaWriteTimeout,
        FaultSite::DmaReadFault,
        FaultSite::DmaReadTimeout,
        FaultSite::OnboardExhaust,
        FaultSite::ArmStall,
        FaultSite::RmtInstallDelay,
        FaultSite::ConsumerPause,
        FaultSite::QueueStall,
        FaultSite::QueueDeath,
        FaultSite::LinkFlap,
    ];

    /// Stable dense index (for counter arrays).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultSite::CreditReleaseLoss => 0,
            FaultSite::CreditReleaseDelay => 1,
            FaultSite::DmaWriteFault => 2,
            FaultSite::DmaWriteTimeout => 3,
            FaultSite::DmaReadFault => 4,
            FaultSite::DmaReadTimeout => 5,
            FaultSite::OnboardExhaust => 6,
            FaultSite::ArmStall => 7,
            FaultSite::RmtInstallDelay => 8,
            FaultSite::ConsumerPause => 9,
            FaultSite::QueueStall => 10,
            FaultSite::QueueDeath => 11,
            FaultSite::LinkFlap => 12,
        }
    }

    /// Stable kebab-case name, as used in fault-plan specs and telemetry
    /// labels.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CreditReleaseLoss => "credit-release-loss",
            FaultSite::CreditReleaseDelay => "credit-release-delay",
            FaultSite::DmaWriteFault => "dma-write-fault",
            FaultSite::DmaWriteTimeout => "dma-write-timeout",
            FaultSite::DmaReadFault => "dma-read-fault",
            FaultSite::DmaReadTimeout => "dma-read-timeout",
            FaultSite::OnboardExhaust => "onboard-exhaust",
            FaultSite::ArmStall => "arm-stall",
            FaultSite::RmtInstallDelay => "rmt-install-delay",
            FaultSite::ConsumerPause => "consumer-pause",
            FaultSite::QueueStall => "queue-stall",
            FaultSite::QueueDeath => "queue-death",
            FaultSite::LinkFlap => "link-flap",
        }
    }

    /// Parse a kebab-case site name.
    pub fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete, self-describing fault schedule: per-site probabilities plus
/// the duration knobs the delayed/stalled sites need.
///
/// The plan itself is pure data; determinism comes from
/// [`FaultPlan::injector`], which derives an independent [`Rng`] stream
/// per component tag, so the fault sequence seen by (say) the DMA engine
/// does not depend on how often the RMT fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all injector streams (combined with each component tag).
    pub seed: u64,
    /// Per-site injection probability in `[0, 1]`, indexed by
    /// [`FaultSite::index`].
    pub rates: [f64; FaultSite::COUNT],
    /// How long a delayed credit release is held back.
    pub release_delay: Duration,
    /// How long an ARM-core stall lasts.
    pub arm_stall: Duration,
    /// How long a delayed RMT rule install stays in flight.
    pub rmt_delay: Duration,
    /// How long a paused host consumer sleeps.
    pub consumer_pause: Duration,
    /// Extra latency charged to a timed-out DMA transaction before the
    /// failure is reported.
    pub dma_timeout: Duration,
    /// How long an injected queue stall wedges one receive queue (short
    /// of the watchdog's failure threshold under default settings).
    pub queue_stall: Duration,
    /// How long an injected queue death wedges one receive queue (long
    /// enough to cross the watchdog's failure threshold).
    pub queue_death: Duration,
    /// How long an injected link flap wedges every receive queue.
    pub link_flap: Duration,
    /// Credit-lease time-to-live armed alongside this plan. `None` keeps
    /// leases disabled (lost releases then strand credits — useful for
    /// demonstrating *why* leases exist).
    pub lease_ttl: Option<Duration>,
}

impl FaultPlan {
    /// An empty plan: no sites armed, default duration knobs, leases on
    /// with a conservative TTL.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; FaultSite::COUNT],
            release_delay: Duration::micros(5),
            arm_stall: Duration::micros(2),
            rmt_delay: Duration::micros(3),
            consumer_pause: Duration::micros(10),
            dma_timeout: Duration::micros(1),
            queue_stall: Duration::micros(8),
            queue_death: Duration::micros(120),
            link_flap: Duration::micros(8),
            lease_ttl: Some(Duration::micros(200)),
        }
    }

    /// Builder: set one site's injection probability (clamped to `[0,1]`).
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rates[site.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the lease TTL (`None` disables leases).
    #[must_use]
    pub fn with_lease_ttl(mut self, ttl: Option<Duration>) -> FaultPlan {
        self.lease_ttl = ttl;
        self
    }

    /// The injection probability for a site.
    #[inline]
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// Whether any site is armed.
    pub fn any_armed(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// Names of the canned plans accepted by [`FaultPlan::parse`].
    pub const CANNED: [&'static str; 5] = [
        "smoke",
        "credit-storm",
        "dma-flaky",
        "nic-pressure",
        "queue-flap",
    ];

    /// A canned, named plan (used by the CI chaos-smoke lane and as quick
    /// CLI shorthand). Returns `None` for unknown names.
    pub fn canned(name: &str, seed: u64) -> Option<FaultPlan> {
        let p = FaultPlan::new(seed);
        Some(match name {
            // A little of everything: exercises every recovery path while
            // still letting most traffic through.
            "smoke" => p
                .with_rate(FaultSite::CreditReleaseLoss, 0.05)
                .with_rate(FaultSite::CreditReleaseDelay, 0.05)
                .with_rate(FaultSite::DmaWriteFault, 0.02)
                .with_rate(FaultSite::DmaWriteTimeout, 0.01)
                .with_rate(FaultSite::DmaReadFault, 0.02)
                .with_rate(FaultSite::DmaReadTimeout, 0.01)
                .with_rate(FaultSite::OnboardExhaust, 0.02)
                .with_rate(FaultSite::ArmStall, 0.01)
                .with_rate(FaultSite::RmtInstallDelay, 0.05)
                .with_rate(FaultSite::ConsumerPause, 0.005),
            // Heavy control-plane loss: the lease watchdog carries the run.
            "credit-storm" => p
                .with_rate(FaultSite::CreditReleaseLoss, 0.25)
                .with_rate(FaultSite::CreditReleaseDelay, 0.25),
            // Flaky PCIe link: retry/backoff machinery under sustained load.
            "dma-flaky" => p
                .with_rate(FaultSite::DmaWriteFault, 0.10)
                .with_rate(FaultSite::DmaWriteTimeout, 0.05)
                .with_rate(FaultSite::DmaReadFault, 0.10)
                .with_rate(FaultSite::DmaReadTimeout, 0.05),
            // On-NIC memory pressure: degraded-mode entry/exit hysteresis.
            "nic-pressure" => p
                .with_rate(FaultSite::OnboardExhaust, 0.30)
                .with_rate(FaultSite::ArmStall, 0.05)
                .with_rate(FaultSite::RmtInstallDelay, 0.10),
            // Queue failure domains: stalls trip the watchdog's Suspect
            // state, deaths cross the failover threshold, and rare link
            // flaps wedge every queue at once. Rates are evaluated once
            // per queue per watchdog tick, not per packet.
            "queue-flap" => p
                .with_rate(FaultSite::QueueStall, 0.04)
                .with_rate(FaultSite::QueueDeath, 0.02)
                .with_rate(FaultSite::LinkFlap, 0.005),
            _ => return None,
        })
    }

    /// Parse a plan spec.
    ///
    /// Accepted forms:
    /// - a canned name (`smoke`, `credit-storm`, `dma-flaky`,
    ///   `nic-pressure`);
    /// - a comma-separated list of `key=value` tokens, where `key` is a
    ///   [`FaultSite`] name with a probability value in `[0,1]`, or one of
    ///   the duration knobs `release-delay` / `arm-stall` / `rmt-delay` /
    ///   `consumer-pause` / `dma-timeout` / `queue-stall` / `queue-death` /
    ///   `link-flap` / `lease-ttl` with a value like `500ns`, `20us`, `1ms`
    ///   (`lease-ttl=off` disables leases). For the keys that name both a
    ///   site and a knob (`arm-stall`, `consumer-pause`, `queue-stall`,
    ///   `queue-death`, `link-flap`), a bare number is the injection
    ///   probability and a unit-suffixed duration is the knob.
    ///
    /// Errors carry a human-readable reason (the CLIs exit 2 with it).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty fault-plan spec".to_string());
        }
        if let Some(p) = FaultPlan::canned(spec, seed) {
            return Ok(p);
        }
        let mut plan = FaultPlan::new(seed);
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed fault-plan token {token:?} (want key=value)"))?;
            let (key, value) = (key.trim(), value.trim());
            // Several keys (`arm-stall`, `consumer-pause`, the queue
            // sites) name both a fault site and its duration knob: a bare
            // probability sets the rate, a suffixed duration (`10us`)
            // sets the knob.
            let duration_knob = matches!(
                key,
                "arm-stall" | "consumer-pause" | "queue-stall" | "queue-death" | "link-flap"
            ) && value.parse::<f64>().is_err();
            if let Some(site) = (!duration_knob)
                .then(|| FaultSite::from_name(key))
                .flatten()
            {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("bad probability {value:?} for site {key}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("probability {value} for site {key} not in [0,1]"));
                }
                plan.rates[site.index()] = rate;
            } else {
                match key {
                    "release-delay" => plan.release_delay = parse_duration(value)?,
                    "arm-stall" => plan.arm_stall = parse_duration(value)?,
                    "rmt-delay" => plan.rmt_delay = parse_duration(value)?,
                    "consumer-pause" => plan.consumer_pause = parse_duration(value)?,
                    "dma-timeout" => plan.dma_timeout = parse_duration(value)?,
                    "queue-stall" => plan.queue_stall = parse_duration(value)?,
                    "queue-death" => plan.queue_death = parse_duration(value)?,
                    "link-flap" => plan.link_flap = parse_duration(value)?,
                    "lease-ttl" => {
                        plan.lease_ttl = if value == "off" {
                            None
                        } else {
                            Some(parse_duration(value)?)
                        }
                    }
                    _ => {
                        return Err(format!(
                            "unknown fault-plan key {key:?} (sites: {}; knobs: release-delay, \
                             arm-stall, rmt-delay, consumer-pause, dma-timeout, queue-stall, \
                             queue-death, link-flap, lease-ttl; canned: {})",
                            FaultSite::ALL.map(FaultSite::name).join(", "),
                            FaultPlan::CANNED.join(", "),
                        ))
                    }
                }
            }
        }
        Ok(plan)
    }

    /// Derive the deterministic injector for one component.
    ///
    /// The tag ("dma", "policy", "onboard", …) is folded into the seed via
    /// FNV-1a, so each component draws from an independent stream: adding
    /// or removing traversals in one component never perturbs another's
    /// fault sequence.
    pub fn injector(&self, tag: &str) -> FaultInjector {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        FaultInjector {
            rng: Rng::seed_from_u64(self.seed ^ h),
            plan: self.clone(),
            stats: ChaosStats::default(),
        }
    }
}

/// Parse `123ns` / `45us` / `6ms` / plain nanoseconds.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?} (want e.g. 500ns, 20us, 1ms)"))?;
    Ok(Duration::nanos(n.saturating_mul(mult)))
}

/// Per-site injection counters, kept by every [`FaultInjector`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Faults actually fired, indexed by [`FaultSite::index`].
    pub injected: [u64; FaultSite::COUNT],
}

impl ChaosStats {
    /// Faults fired at one site.
    #[inline]
    pub fn at(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }

    /// Total faults fired across all sites.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Merge another component's counters into this one.
    pub fn absorb(&mut self, other: &ChaosStats) {
        for (a, b) in self.injected.iter_mut().zip(other.injected.iter()) {
            *a += b;
        }
    }
}

/// A per-component fault stream: deterministic Bernoulli draws against the
/// plan's per-site rates, with injection counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng,
    plan: FaultPlan,
    stats: ChaosStats,
}

impl FaultInjector {
    /// Evaluate one traversal of `site`: `true` means the fault fires
    /// (and is counted). Sites with rate 0 never draw from the stream, so
    /// arming new sites does not shift the schedule of already-armed ones
    /// *within a component* only when rates stay fixed; across components
    /// streams are always independent.
    #[inline]
    pub fn fire(&mut self, site: FaultSite) -> bool {
        let rate = self.plan.rates[site.index()];
        if rate <= 0.0 {
            return false;
        }
        let hit = self.rng.gen_bool(rate);
        if hit {
            self.stats.injected[site.index()] += 1;
        }
        hit
    }

    /// Uniform jitter in `[0, bound)` nanoseconds from this component's
    /// stream (used by retry backoff so concurrent retries desynchronize).
    #[inline]
    pub fn jitter(&mut self, bound: Duration) -> Duration {
        Duration::nanos(self.rng.gen_range(bound.as_nanos()))
    }

    /// The plan this injector was derived from.
    #[inline]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    #[inline]
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
            assert_eq!(site.to_string(), site.name());
        }
        assert_eq!(FaultSite::from_name("bogus"), None);
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, site) in FaultSite::ALL.iter().enumerate() {
            assert_eq!(site.index(), i);
        }
    }

    #[test]
    fn parse_canned_and_spec() {
        let p = FaultPlan::parse("smoke", 7).expect("canned");
        assert!(p.any_armed());
        let q = FaultPlan::parse(
            "credit-release-loss=0.5, dma-read-fault=1.0, lease-ttl=100us, rmt-delay=250ns",
            7,
        )
        .expect("spec");
        assert_eq!(q.rate(FaultSite::CreditReleaseLoss), 0.5);
        assert_eq!(q.rate(FaultSite::DmaReadFault), 1.0);
        assert_eq!(q.rate(FaultSite::DmaWriteFault), 0.0);
        assert_eq!(q.lease_ttl, Some(Duration::micros(100)));
        assert_eq!(q.rmt_delay, Duration::nanos(250));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("", 0).is_err());
        assert!(FaultPlan::parse("nonsense", 0).is_err());
        assert!(FaultPlan::parse("credit-release-loss", 0).is_err());
        assert!(FaultPlan::parse("credit-release-loss=1.5", 0).is_err());
        assert!(FaultPlan::parse("credit-release-loss=x", 0).is_err());
        assert!(FaultPlan::parse("lease-ttl=5parsecs", 0).is_err());
        assert!(FaultPlan::parse("unknown-site=0.5", 0).is_err());
    }

    #[test]
    fn lease_ttl_off() {
        let p = FaultPlan::parse("lease-ttl=off", 0).expect("spec");
        assert_eq!(p.lease_ttl, None);
    }

    #[test]
    fn site_knob_homonyms_disambiguate_by_value_shape() {
        // `consumer-pause` / `arm-stall` name both a site (probability)
        // and a duration knob: a bare number is the rate, a suffixed
        // duration the knob.
        let p = FaultPlan::parse("consumer-pause=0.25, arm-stall=0.5", 0).expect("rates");
        assert_eq!(p.rate(FaultSite::ConsumerPause), 0.25);
        assert_eq!(p.rate(FaultSite::ArmStall), 0.5);
        let q = FaultPlan::parse("consumer-pause=10us, arm-stall=250ns", 0).expect("knobs");
        assert_eq!(q.consumer_pause, Duration::micros(10));
        assert_eq!(q.arm_stall, Duration::nanos(250));
        assert_eq!(q.rate(FaultSite::ConsumerPause), 0.0);
        // Still malformed when neither shape fits.
        assert!(FaultPlan::parse("consumer-pause=fast", 0).is_err());
        assert!(FaultPlan::parse("arm-stall=1.5", 0).is_err());
    }

    #[test]
    fn queue_site_homonyms_disambiguate_by_value_shape() {
        let p =
            FaultPlan::parse("queue-stall=0.1, queue-death=0.05, link-flap=1.0", 0).expect("rates");
        assert_eq!(p.rate(FaultSite::QueueStall), 0.1);
        assert_eq!(p.rate(FaultSite::QueueDeath), 0.05);
        assert_eq!(p.rate(FaultSite::LinkFlap), 1.0);
        let q = FaultPlan::parse("queue-stall=5us, queue-death=300us, link-flap=20us", 0)
            .expect("knobs");
        assert_eq!(q.queue_stall, Duration::micros(5));
        assert_eq!(q.queue_death, Duration::micros(300));
        assert_eq!(q.link_flap, Duration::micros(20));
        assert_eq!(q.rate(FaultSite::QueueDeath), 0.0);
        assert!(FaultPlan::parse("queue-death=dead", 0).is_err());
        assert!(FaultPlan::parse("link-flap=7.0", 0).is_err());
    }

    #[test]
    fn queue_flap_plan_arms_only_queue_sites() {
        let p = FaultPlan::canned("queue-flap", 9).expect("canned");
        assert!(p.rate(FaultSite::QueueStall) > 0.0);
        assert!(p.rate(FaultSite::QueueDeath) > 0.0);
        assert!(p.rate(FaultSite::LinkFlap) > 0.0);
        // Every non-queue site stays disarmed: a queue-flap run's DMA and
        // credit schedules are byte-identical to a fault-free run's.
        for site in FaultSite::ALL {
            if !matches!(
                site,
                FaultSite::QueueStall | FaultSite::QueueDeath | FaultSite::LinkFlap
            ) {
                assert_eq!(p.rate(site), 0.0, "{site} must stay disarmed");
            }
        }
    }

    #[test]
    fn every_canned_name_resolves() {
        for name in FaultPlan::CANNED {
            assert!(FaultPlan::canned(name, 1).is_some(), "{name}");
            assert!(FaultPlan::parse(name, 1).is_ok(), "{name}");
        }
        assert!(FaultPlan::canned("not-a-plan", 1).is_none());
    }

    #[test]
    fn injector_streams_are_deterministic_and_independent() {
        let plan = FaultPlan::new(42).with_rate(FaultSite::DmaWriteFault, 0.5);
        let draws = |tag: &str| -> Vec<bool> {
            let mut inj = plan.injector(tag);
            (0..64)
                .map(|_| inj.fire(FaultSite::DmaWriteFault))
                .collect()
        };
        assert_eq!(draws("dma"), draws("dma"), "same tag ⇒ same schedule");
        assert_ne!(draws("dma"), draws("policy"), "tags decorrelate streams");
        let mut inj = plan.injector("dma");
        for _ in 0..64 {
            inj.fire(FaultSite::DmaWriteFault);
        }
        let fired = inj.stats().at(FaultSite::DmaWriteFault);
        assert!(fired > 0 && fired < 64, "rate 0.5 fires sometimes: {fired}");
        assert_eq!(inj.stats().total(), fired);
    }

    #[test]
    fn zero_rate_site_never_draws_or_fires() {
        let plan = FaultPlan::new(1);
        let mut inj = plan.injector("x");
        for site in FaultSite::ALL {
            for _ in 0..32 {
                assert!(!inj.fire(site));
            }
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = ChaosStats::default();
        let mut b = ChaosStats::default();
        a.injected[0] = 3;
        b.injected[0] = 4;
        b.injected[9] = 1;
        a.absorb(&b);
        assert_eq!(a.at(FaultSite::CreditReleaseLoss), 7);
        assert_eq!(a.at(FaultSite::ConsumerPause), 1);
        assert_eq!(a.total(), 8);
    }
}
