//! Property-based tests of the network substrate.

use ceio_net::generator::Pacing;
use ceio_net::ingress::{IngressLink, IngressOutcome};
use ceio_net::{Dctcp, FlowClass, FlowSpec, NetParams, TrafficGen};
use ceio_sim::{Bandwidth, Duration, Rng, Time};
use proptest::prelude::*;

/// Feedback events fed to a DCTCP controller.
#[derive(Debug, Clone, Copy)]
enum Feedback {
    Ack(bool),
    Loss,
    Tick,
}

fn feedback() -> impl Strategy<Value = Feedback> {
    prop_oneof![
        6 => any::<bool>().prop_map(Feedback::Ack),
        1 => Just(Feedback::Loss),
        2 => Just(Feedback::Tick),
    ]
}

proptest! {
    /// DCTCP's rate always stays within [min floor, demand] and alpha in
    /// [0, 1], for any feedback sequence.
    #[test]
    fn dctcp_rate_bounded(
        demand_gbps in 1u64..200,
        events in prop::collection::vec(feedback(), 1..500),
    ) {
        let demand = Bandwidth::gbps(demand_gbps);
        let mut cca = Dctcp::new(demand, Duration::micros(20));
        let mut t = Time::ZERO;
        for ev in events {
            t += Duration::micros(3);
            match ev {
                Feedback::Ack(m) => cca.on_feedback(t, m),
                Feedback::Loss => cca.on_loss(t),
                Feedback::Tick => cca.tick(t),
            }
            prop_assert!(cca.rate() <= demand, "rate above demand");
            prop_assert!(
                cca.rate().as_bytes_per_sec() > 0,
                "rate collapsed to zero without a pause"
            );
            prop_assert!((0.0..=1.0).contains(&cca.alpha()));
        }
    }

    /// set_demand(0) pauses; restoring demand resumes exactly at it.
    #[test]
    fn dctcp_pause_resume(demand_gbps in 1u64..200) {
        let demand = Bandwidth::gbps(demand_gbps);
        let mut cca = Dctcp::new(demand, Duration::micros(20));
        cca.set_demand(Bandwidth::bytes_per_sec(0));
        prop_assert!(cca.paused());
        prop_assert_eq!(cca.rate().as_bytes_per_sec(), 0);
        cca.set_demand(demand);
        prop_assert!(!cca.paused());
        prop_assert_eq!(cca.rate().as_bytes_per_sec(), demand.as_bytes_per_sec());
    }

    /// The generator's message framing is exact: for msg_packets = k, the
    /// sequence numbers cycle 0..k with msg_last on k-1, and msg_ids are
    /// consecutive.
    #[test]
    fn generator_message_framing(
        k in 1u32..100,
        pkt_bytes in 64u64..2048,
        n_msgs in 1u64..20,
    ) {
        let spec = FlowSpec::new(7, FlowClass::CpuBypass, pkt_bytes, k, Bandwidth::gbps(10));
        let mut g = TrafficGen::new(spec, Pacing::Cbr, Rng::seed_from_u64(1), 7);
        for msg in 0..n_msgs {
            for seq in 0..k {
                let p = g.emit(Time(msg * 1000 + seq as u64));
                prop_assert_eq!(p.msg_id, msg);
                prop_assert_eq!(p.msg_seq, seq);
                prop_assert_eq!(p.msg_last, seq == k - 1);
                prop_assert_eq!(p.bytes, pkt_bytes);
            }
        }
        prop_assert_eq!(g.emitted(), n_msgs * k as u64);
    }

    /// Ingress conservation and causality: every offer is either delivered
    /// or dropped; arrivals are monotone non-decreasing in offer order and
    /// never earlier than base delay + serialization.
    #[test]
    fn ingress_conserves_and_orders(
        offers in prop::collection::vec((0u64..100, 64u64..9000), 1..300),
    ) {
        let params = NetParams::default();
        let base = params.base_delay;
        let mut link = IngressLink::new(params);
        let mut t = Time::ZERO;
        let mut last_arrival = Time::ZERO;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for (gap, bytes) in offers.iter().copied() {
            t += Duration::nanos(gap);
            match link.offer(t, bytes) {
                IngressOutcome::Delivered { arrival, .. } => {
                    prop_assert!(arrival >= t + base, "arrival violates base delay");
                    prop_assert!(arrival >= last_arrival, "link reordered packets");
                    last_arrival = arrival;
                    delivered += 1;
                }
                IngressOutcome::Dropped => dropped += 1,
            }
        }
        prop_assert_eq!(delivered + dropped, offers.len() as u64);
        prop_assert_eq!(link.stats().admitted, delivered);
        prop_assert_eq!(link.stats().dropped, dropped);
    }

    /// Scenario builders produce chronologically sorted events with unique
    /// flow ids across starts.
    #[test]
    fn scenario_builders_sorted_unique(
        phases in 1u32..5,
        phase_us in 100u64..5000,
    ) {
        use ceio_net::{Scenario, ScenarioEvent};
        let s = Scenario::dynamic_distribution(
            8, 2, phases, Duration::micros(phase_us), 512, 2048, 64, Bandwidth::gbps(200),
        );
        prop_assert!(s.events.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut started: Vec<u32> = s
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                ScenarioEvent::Start(f) => Some(f.id.0),
                _ => None,
            })
            .collect();
        let n = started.len();
        started.sort_unstable();
        started.dedup();
        prop_assert_eq!(started.len(), n, "duplicate flow id started");
    }
}
