//! Per-flow paced traffic generation.
//!
//! Each flow has one generator that emits packets at the flow's current
//! DCTCP rate, segmenting messages into packets and flagging message tails.
//! Pacing is deterministic CBR with optional exponential (Poisson) jitter —
//! open-loop, as in the paper's saturating client setup (§6.1).

use crate::flow::FlowSpec;
use crate::packet::{Packet, PacketId};
use ceio_sim::{Bandwidth, Duration, Rng, Time};

/// Pacing discipline for a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Constant bit rate: packets exactly `bytes/rate` apart.
    Cbr,
    /// Poisson arrivals with mean inter-arrival `bytes/rate`.
    Poisson,
}

/// A per-flow traffic generator.
#[derive(Debug)]
pub struct TrafficGen {
    spec: FlowSpec,
    pacing: Pacing,
    rng: Rng,
    next_packet_id: u64,
    msg_id: u64,
    msg_seq: u32,
    emitted: u64,
}

impl TrafficGen {
    /// A generator for `spec`, drawing jitter from `rng`.
    ///
    /// `id_base` partitions the global packet-id space between flows
    /// (each generator may emit up to 2^32 packets).
    pub fn new(spec: FlowSpec, pacing: Pacing, rng: Rng, id_base: u64) -> TrafficGen {
        TrafficGen {
            spec,
            pacing,
            rng,
            next_packet_id: id_base << 32,
            msg_id: 0,
            msg_seq: 0,
            emitted: 0,
        }
    }

    /// The flow specification this generator follows.
    #[inline]
    pub fn spec(&self) -> &FlowSpec {
        &self.spec
    }

    /// Packets emitted so far.
    #[inline]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Inter-packet gap at the given sending rate.
    pub fn gap(&self, rate: Bandwidth) -> Duration {
        rate.transfer_time(self.spec.packet_bytes)
    }

    /// Instant of the next emission after `now` at `rate`.
    pub fn next_emission(&mut self, now: Time, rate: Bandwidth) -> Time {
        let base = self.gap(rate);
        match self.pacing {
            Pacing::Cbr => now + base,
            Pacing::Poisson => {
                let jittered = self.rng.gen_exp(base.as_nanos() as f64).round() as u64;
                now + Duration::nanos(jittered.max(1))
            }
        }
    }

    /// Emit the next packet at `sent_at`.
    pub fn emit(&mut self, sent_at: Time) -> Packet {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        self.emitted += 1;

        let msg_id = self.msg_id;
        let msg_seq = self.msg_seq;
        let msg_last = self.msg_seq + 1 >= self.spec.msg_packets.max(1);
        if msg_last {
            self.msg_id += 1;
            self.msg_seq = 0;
        } else {
            self.msg_seq += 1;
        }

        Packet {
            id,
            flow: self.spec.id,
            bytes: self.spec.packet_bytes,
            msg_id,
            msg_seq,
            msg_last,
            sent_at,
            arrived_nic: Time::MAX,
            ecn: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowClass;

    fn gen(msg_packets: u32, pacing: Pacing) -> TrafficGen {
        let spec = FlowSpec::new(
            3,
            FlowClass::CpuInvolved,
            1024,
            msg_packets,
            Bandwidth::gbps(25),
        );
        TrafficGen::new(spec, pacing, Rng::seed_from_u64(1), 3)
    }

    #[test]
    fn cbr_gap_is_exact() {
        let mut g = gen(1, Pacing::Cbr);
        let next = g.next_emission(Time(0), Bandwidth::gbps(8));
        // 1024 B at 1 GB/s = 1024 ns.
        assert_eq!(next, Time(1024));
    }

    #[test]
    fn message_segmentation_flags_tail() {
        let mut g = gen(4, Pacing::Cbr);
        let flags: Vec<bool> = (0..8).map(|i| g.emit(Time(i)).msg_last).collect();
        assert_eq!(
            flags,
            vec![false, false, false, true, false, false, false, true]
        );
        let p = g.emit(Time(9));
        assert_eq!(p.msg_id, 2);
        assert_eq!(p.msg_seq, 0);
    }

    #[test]
    fn single_packet_messages_always_tail() {
        let mut g = gen(1, Pacing::Cbr);
        for i in 0..5 {
            let p = g.emit(Time(i));
            assert!(p.msg_last);
            assert_eq!(p.msg_id, i);
        }
    }

    #[test]
    fn packet_ids_unique_and_namespaced() {
        let mut a = gen(1, Pacing::Cbr);
        let spec_b = FlowSpec::new(4, FlowClass::CpuBypass, 1024, 1, Bandwidth::gbps(25));
        let mut b = TrafficGen::new(spec_b, Pacing::Cbr, Rng::seed_from_u64(2), 4);
        let pa = a.emit(Time(0));
        let pb = b.emit(Time(0));
        assert_ne!(pa.id, pb.id);
        assert_eq!(pa.id.0 >> 32, 3);
        assert_eq!(pb.id.0 >> 32, 4);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut g = gen(1, Pacing::Poisson);
        let rate = Bandwidth::gbps(8); // 1024 ns mean gap
        let n = 50_000;
        let mut now = Time(0);
        let mut total = 0u64;
        for _ in 0..n {
            let next = g.next_emission(now, rate);
            total += next.since(now).as_nanos();
            now = next;
        }
        let mean = total as f64 / n as f64;
        assert!((mean - 1024.0).abs() < 20.0, "mean gap {mean}");
    }

    #[test]
    fn zero_msg_packets_behaves_as_one() {
        let mut g = gen(0, Pacing::Cbr);
        assert!(g.emit(Time(0)).msg_last);
    }
}
