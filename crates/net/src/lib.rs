//! # ceio-net — network substrate
//!
//! Everything on the wire side of the NIC:
//!
//! * [`packet`] / [`flow`] — packet descriptors and flow specifications.
//!   Flows are classified as **CPU-involved** (DDIO → CPU polling, e.g. RPC)
//!   or **CPU-bypass** (RDMA-style, huge messages, completion-signalled),
//!   the two I/O flow types of §2.1.
//! * [`dctcp`] — a rate-based DCTCP congestion controller (§2.3 uses DCTCP
//!   as the base network rate control). ECN-fraction EWMA → multiplicative
//!   decrease; additive increase otherwise; sharp cut on loss.
//! * [`generator`] — per-flow paced traffic generators that segment
//!   messages into MTU-sized packets and flag message tails (the
//!   RDMA-write-with-immediate analogue CEIO's lazy credit release keys on).
//! * [`ingress`] — the shared 200 Gbps link all senders serialize through
//!   before the receiver NIC, plus base network delay.
//! * [`scenario`] — time-scripted flow churn: the dynamic flow-distribution
//!   and network-burst scenarios of §2.3/§6.2.

#![warn(missing_docs)]

pub mod dctcp;
pub mod flow;
pub mod generator;
pub mod ingress;
pub mod packet;
pub mod params;
pub mod scenario;

pub use dctcp::Dctcp;
pub use flow::{FlowClass, FlowId, FlowSpec};
pub use generator::TrafficGen;
pub use ingress::IngressLink;
pub use packet::{Packet, PacketId};
pub use params::NetParams;
pub use scenario::{Scenario, ScenarioEvent};
