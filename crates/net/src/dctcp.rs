//! Rate-based DCTCP congestion controller.
//!
//! The paper uses DCTCP as the base network rate control (§2.3) and the
//! baselines' pathologies are expressed through it: ShRing triggers it
//! *unnecessarily* (fixed ring fills ⇒ marks/drops), HostCC triggers it
//! *late* (signal fires after misses), and CEIO triggers it only when the
//! slow path's production rate exceeds consumption (§4.1 Q2).
//!
//! The model is the standard rate-based DCTCP translation: per-RTT window,
//! mark fraction F, gain g = 1/16, `alpha ← (1-g)alpha + gF`, rate
//! `← rate·(1-alpha/2)` when any marks were seen, additive increase toward
//! the demanded rate otherwise, and a multiplicative cut on packet loss.

use ceio_sim::{Bandwidth, Duration, Time};
use serde::Serialize;

/// Controller statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct DctcpStats {
    /// Multiplicative-decrease events driven by ECN.
    pub ecn_reductions: u64,
    /// Loss-driven rate cuts.
    pub loss_cuts: u64,
    /// Windows with additive increase.
    pub increases: u64,
}

/// Per-flow DCTCP state.
#[derive(Debug, Clone)]
pub struct Dctcp {
    rate: Bandwidth,
    demand: Bandwidth,
    min_rate: Bandwidth,
    alpha: f64,
    gain: f64,
    window: Duration,
    window_end: Time,
    acked: u64,
    marked: u64,
    loss_in_window: bool,
    additive_step: Bandwidth,
    stats: DctcpStats,
}

impl Dctcp {
    /// A controller starting at the demanded rate.
    ///
    /// `window` should be the flow's RTT; `demand` is the open-loop offered
    /// load that additive increase converges back to.
    pub fn new(demand: Bandwidth, window: Duration) -> Dctcp {
        let min_rate = Bandwidth::bytes_per_sec((demand.as_bytes_per_sec() / 100).max(1_000_000));
        Dctcp {
            rate: demand,
            demand,
            min_rate,
            alpha: 0.0,
            gain: 1.0 / 16.0,
            window,
            window_end: Time::ZERO + window,
            acked: 0,
            marked: 0,
            loss_in_window: false,
            additive_step: Bandwidth::bytes_per_sec((demand.as_bytes_per_sec() / 10).max(1)),
            stats: DctcpStats::default(),
        }
    }

    /// Current sending rate.
    #[inline]
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Current alpha (congestion estimate).
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Retarget the demanded rate in place. A zero demand pauses the flow
    /// (rate drops to zero immediately); restoring a non-zero demand
    /// restarts at that demand — a destination hop is a fresh stream, not a
    /// congestion event.
    pub fn set_demand(&mut self, demand: Bandwidth) {
        self.demand = demand;
        self.additive_step = Bandwidth::bytes_per_sec((demand.as_bytes_per_sec() / 10).max(1));
        self.min_rate = Bandwidth::bytes_per_sec((demand.as_bytes_per_sec() / 100).max(1_000_000));
        if demand.as_bytes_per_sec() == 0 {
            self.rate = Bandwidth::bytes_per_sec(0);
        } else {
            self.rate = demand;
            self.alpha = 0.0;
        }
    }

    /// Whether the flow is currently paused (zero demand).
    pub fn paused(&self) -> bool {
        self.demand.as_bytes_per_sec() == 0
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &DctcpStats {
        &self.stats
    }

    /// Record delivery feedback for one packet (ECN-echo from the receiver).
    /// Advances the per-window update when the window has elapsed.
    pub fn on_feedback(&mut self, now: Time, ecn_marked: bool) {
        self.acked += 1;
        if ecn_marked {
            self.marked += 1;
        }
        self.maybe_update(now);
    }

    /// Record a packet loss (drop at the receiver, e.g. ShRing full).
    pub fn on_loss(&mut self, now: Time) {
        self.loss_in_window = true;
        self.maybe_update(now);
    }

    /// Force a window rollover if due (call occasionally even without
    /// feedback so idle flows recover their rate).
    pub fn tick(&mut self, now: Time) {
        self.maybe_update(now);
    }

    fn maybe_update(&mut self, now: Time) {
        while now >= self.window_end {
            self.apply_window();
            self.window_end += Duration::nanos(self.window.as_nanos());
        }
    }

    fn apply_window(&mut self) {
        let frac = if self.acked == 0 {
            0.0
        } else {
            self.marked as f64 / self.acked as f64
        };
        self.alpha = (1.0 - self.gain) * self.alpha + self.gain * frac;

        if self.loss_in_window {
            // Loss: multiplicative decrease. At 200 Gbps with ~20 us RTTs
            // the effective per-loss-event cut of a windowed transport is
            // mild (one congestion event per RTT, many packets in flight),
            // so a rate-based translation uses 0.7x rather than halving.
            self.rate = self.rate.scale(7, 10).max(self.min_rate);
            self.stats.loss_cuts += 1;
        } else if self.marked > 0 {
            // DCTCP multiplicative decrease proportional to alpha/2.
            let cut = (self.alpha / 2.0 * 1_000_000.0) as u64;
            self.rate = self
                .rate
                .scale(1_000_000 - cut.min(999_999), 1_000_000)
                .max(self.min_rate);
            self.stats.ecn_reductions += 1;
        } else if self.acked > 0 && self.rate < self.demand {
            // Additive increase toward demand.
            let next = Bandwidth::bytes_per_sec(
                (self.rate.as_bytes_per_sec() + self.additive_step.as_bytes_per_sec())
                    .min(self.demand.as_bytes_per_sec()),
            );
            self.rate = next;
            self.stats.increases += 1;
        }
        self.acked = 0;
        self.marked = 0;
        self.loss_in_window = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cca() -> Dctcp {
        Dctcp::new(Bandwidth::gbps(25), Duration::micros(20))
    }

    fn advance_windows(c: &mut Dctcp, windows: u64, per_window: impl Fn(&mut Dctcp, Time)) {
        for w in 0..windows {
            let t = Time((w + 1) * 20_000);
            per_window(c, t);
            c.tick(t);
        }
    }

    #[test]
    fn no_marks_keeps_rate_at_demand() {
        let mut c = cca();
        advance_windows(&mut c, 10, |c, t| {
            for _ in 0..100 {
                c.on_feedback(t - Duration::nanos(1), false);
            }
        });
        assert_eq!(
            c.rate().as_bytes_per_sec(),
            Bandwidth::gbps(25).as_bytes_per_sec()
        );
    }

    #[test]
    fn sustained_marks_reduce_rate() {
        let mut c = cca();
        advance_windows(&mut c, 20, |c, t| {
            for _ in 0..100 {
                c.on_feedback(t - Duration::nanos(1), true);
            }
        });
        assert!(c.rate() < Bandwidth::gbps(25));
        assert!(
            c.alpha() > 0.5,
            "alpha should converge up, got {}",
            c.alpha()
        );
        assert!(c.stats().ecn_reductions > 0);
    }

    #[test]
    fn rate_recovers_after_congestion_clears() {
        let mut c = cca();
        advance_windows(&mut c, 10, |c, t| {
            for _ in 0..100 {
                c.on_feedback(t - Duration::nanos(1), true);
            }
        });
        let low = c.rate();
        // 200 clean windows recover toward demand (alpha decays too).
        for w in 10..210 {
            let t = Time((w + 1) * 20_000);
            for _ in 0..100 {
                c.on_feedback(t - Duration::nanos(1), false);
            }
            c.tick(t);
        }
        assert!(c.rate() > low);
        assert_eq!(
            c.rate().as_bytes_per_sec(),
            Bandwidth::gbps(25).as_bytes_per_sec()
        );
    }

    #[test]
    fn loss_cuts_rate_multiplicatively() {
        let mut c = cca();
        c.on_loss(Time(1));
        c.tick(Time(20_001));
        assert_eq!(
            c.rate().as_bytes_per_sec(),
            Bandwidth::gbps(25).as_bytes_per_sec() / 10 * 7
        );
        assert_eq!(c.stats().loss_cuts, 1);
    }

    #[test]
    fn rate_never_below_floor() {
        let mut c = cca();
        for w in 0..100 {
            c.on_loss(Time(w * 20_000 + 1));
            c.tick(Time((w + 1) * 20_000));
        }
        assert!(c.rate().as_bytes_per_sec() >= 1_000_000 / 8 * 8 / 100);
        assert!(c.rate().as_bytes_per_sec() > 0);
    }

    #[test]
    fn partial_marking_gives_partial_cut() {
        // 50% marks for a few windows: alpha ~ climbing toward 0.5; cut is
        // gentler than halving.
        let mut c = cca();
        let before = c.rate().as_bytes_per_sec();
        advance_windows(&mut c, 1, |c, t| {
            for i in 0..100 {
                c.on_feedback(t - Duration::nanos(1), i % 2 == 0);
            }
        });
        let after = c.rate().as_bytes_per_sec();
        assert!(after < before);
        assert!(
            after > before / 2,
            "first-window cut should be mild (alpha small)"
        );
    }
}
