//! The shared receiver link.
//!
//! All senders' packets serialize through the receiver's 200 Gbps port
//! before reaching the NIC. This is what caps aggregate ingress at line
//! rate and creates queueing during bursts. A bounded port queue models
//! the switch's egress buffer toward the receiver; overflow there is a
//! network drop (distinct from host-side drops).

use crate::params::NetParams;
use ceio_sim::{Duration, Time};
use serde::Serialize;

/// Ingress link statistics.
#[derive(Debug, Default, Clone, Serialize)]
pub struct IngressStats {
    /// Packets admitted to the port queue.
    pub admitted: u64,
    /// Packets dropped at the port queue (switch buffer overflow).
    pub dropped: u64,
    /// Wire bytes delivered.
    pub bytes: u64,
    /// Packets ECN-marked by the port (queue above marking threshold).
    pub ecn_marked: u64,
}

/// The shared link into the receiver NIC.
#[derive(Debug)]
pub struct IngressLink {
    params: NetParams,
    busy_until: Time,
    /// Queue capacity expressed as serialization backlog.
    max_backlog: Duration,
    /// ECN marking threshold expressed as backlog (DCTCP-style shallow K).
    mark_threshold: Duration,
    stats: IngressStats,
}

/// Outcome of offering one packet to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressOutcome {
    /// Packet will arrive at the NIC at the given instant; `marked` is the
    /// ECN congestion-experienced bit.
    Delivered {
        /// Arrival instant at the receiver NIC.
        arrival: Time,
        /// ECN mark applied by the port.
        marked: bool,
    },
    /// Switch buffer overflow: the packet never reaches the NIC.
    Dropped,
}

impl IngressLink {
    /// A link with default buffering: 100 µs of backlog capacity and a
    /// DCTCP-style shallow marking threshold of 8 µs (~65 KB at 200 Gbps,
    /// around the K=65 packets guidance for DCTCP at high speed).
    pub fn new(params: NetParams) -> IngressLink {
        IngressLink {
            params,
            busy_until: Time::ZERO,
            max_backlog: Duration::micros(100),
            mark_threshold: Duration::micros(8),
            stats: IngressStats::default(),
        }
    }

    /// Override buffer capacity and marking threshold (tests/scenarios).
    pub fn with_queue(mut self, max_backlog: Duration, mark_threshold: Duration) -> IngressLink {
        self.max_backlog = max_backlog;
        self.mark_threshold = mark_threshold;
        self
    }

    /// The network parameters of this link.
    #[inline]
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Offer a packet of `bytes` emitted by a sender at `sent_at`.
    pub fn offer(&mut self, sent_at: Time, bytes: u64) -> IngressOutcome {
        // Sender-side propagation to the port.
        let at_port = sent_at + self.params.base_delay;
        let backlog = self.busy_until.since(at_port);
        if backlog > self.max_backlog {
            self.stats.dropped += 1;
            return IngressOutcome::Dropped;
        }
        let marked = backlog > self.mark_threshold;
        if marked {
            self.stats.ecn_marked += 1;
        }
        let wire = bytes + self.params.wire_overhead;
        let start = self.busy_until.max(at_port);
        self.busy_until = start + self.params.link_bandwidth.transfer_time(wire);
        self.stats.admitted += 1;
        self.stats.bytes += wire;
        IngressOutcome::Delivered {
            arrival: self.busy_until,
            marked,
        }
    }

    /// Current serialization backlog relative to `now`.
    pub fn backlog(&self, now: Time) -> Duration {
        self.busy_until.since(now)
    }

    /// Read-only statistics.
    #[inline]
    pub fn stats(&self) -> &IngressStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> IngressLink {
        IngressLink::new(NetParams::default())
    }

    #[test]
    fn delivery_includes_delay_and_serialization() {
        let mut l = link();
        match l.offer(Time(0), 1024) {
            IngressOutcome::Delivered { arrival, marked } => {
                // base_delay 2 µs + (1024+24) B at 200 Gbps ≈ 42 ns.
                assert!(arrival >= Time(2_000));
                assert!(arrival <= Time(2_100), "{arrival}");
                assert!(!marked);
            }
            IngressOutcome::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn aggregate_rate_capped_at_line_rate() {
        let mut l = link();
        // Offer 2x line rate for 100 µs: deliveries spread to line rate.
        let mut last_arrival = Time::ZERO;
        let gap = 20; // 1024 B every 20 ns = ~400 Gbps offered
        for i in 0..2_000u64 {
            if let IngressOutcome::Delivered { arrival, .. } = l.offer(Time(i * gap), 1024) {
                last_arrival = last_arrival.max(arrival);
            }
        }
        let delivered = l.stats().admitted;
        let span = last_arrival.since(Time(2_000)); // first arrival epoch
        let rate_bps = l.stats().bytes as f64 * 8.0 / span.as_secs_f64();
        assert!(rate_bps <= 201e9, "rate {rate_bps}");
        assert!(delivered > 0);
    }

    #[test]
    fn overload_marks_then_drops() {
        let mut l = link();
        let mut marked = 0;
        let mut dropped = 0;
        // Sustained 4x overload.
        for i in 0..100_000u64 {
            match l.offer(Time(i * 10), 1024) {
                IngressOutcome::Delivered { marked: m, .. } => {
                    if m {
                        marked += 1;
                    }
                }
                IngressOutcome::Dropped => dropped += 1,
            }
        }
        assert!(marked > 0, "should ECN-mark under overload");
        assert!(
            dropped > 0,
            "should eventually drop under sustained overload"
        );
        assert_eq!(l.stats().dropped, dropped);
    }

    #[test]
    fn no_marks_below_threshold() {
        let mut l = link();
        // Offer at half line rate: no queue, no marks.
        for i in 0..10_000u64 {
            l.offer(Time(i * 100), 1024);
        }
        assert_eq!(l.stats().ecn_marked, 0);
    }
}
